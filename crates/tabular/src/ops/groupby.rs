//! Hash group-by with aggregates (the paper's `groupby` task, figures 8
//! and 23).

use crate::agg::AggKind;
use crate::column::Column;
use crate::datatype::DataType;
use crate::error::{Result, TabularError};
use crate::row::Row;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// One aggregate in a `groupby` task: `operator` applied to `apply_on`,
/// emitted as `out_field`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateSpec {
    /// Aggregate operator (`operator: sum`).
    pub operator: AggKind,
    /// Input column (`apply_on: noOfCheckins`). Ignored for `CountAll`.
    pub apply_on: String,
    /// Output column name (`out_field: total_checkins`).
    pub out_field: String,
}

impl AggregateSpec {
    /// Convenience constructor.
    pub fn new(
        operator: AggKind,
        apply_on: impl Into<String>,
        out_field: impl Into<String>,
    ) -> Self {
        AggregateSpec {
            operator,
            apply_on: apply_on.into(),
            out_field: out_field.into(),
        }
    }
}

/// Full `groupby` task configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupBy {
    /// Grouping key columns (`groupby: [project, year]`).
    pub keys: Vec<String>,
    /// Aggregates; when empty a bare `count` column is produced, matching
    /// figure 23 where `players_count` groups by `[date, player]` and emits
    /// `count`.
    pub aggregates: Vec<AggregateSpec>,
    /// When true, order output rows by the aggregate value descending
    /// (`orderby_aggregates: true` in appendix A.2).
    pub orderby_aggregates: bool,
}

impl GroupBy {
    /// Group by keys with a default count aggregate.
    pub fn counting(keys: &[impl AsRef<str>]) -> Self {
        GroupBy {
            keys: keys.iter().map(|k| k.as_ref().to_string()).collect(),
            aggregates: Vec::new(),
            orderby_aggregates: false,
        }
    }

    /// Group by keys with explicit aggregates.
    pub fn with_aggregates(keys: &[impl AsRef<str>], aggregates: Vec<AggregateSpec>) -> Self {
        GroupBy {
            keys: keys.iter().map(|k| k.as_ref().to_string()).collect(),
            aggregates,
            orderby_aggregates: false,
        }
    }

    /// Effective aggregate list (the bare-count default when none given).
    pub fn effective_aggregates(&self) -> Vec<AggregateSpec> {
        if self.aggregates.is_empty() {
            vec![AggregateSpec::new(AggKind::CountAll, "", "count")]
        } else {
            self.aggregates.clone()
        }
    }

    /// Output schema for a given input schema: key columns (original types)
    /// followed by one column per aggregate.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema> {
        let mut fields = Vec::new();
        for k in &self.keys {
            fields.push(input.field(k)?.clone());
        }
        for a in self.effective_aggregates() {
            let in_ty = if a.operator == AggKind::CountAll {
                DataType::Null
            } else {
                input.field(&a.apply_on)?.data_type()
            };
            fields.push(Field::new(&a.out_field, a.operator.output_type(in_ty)));
        }
        Schema::new(fields)
    }
}

/// Execute a group-by. Output group order follows first occurrence of each
/// key in the input (deterministic), unless `orderby_aggregates` sorts by
/// the first aggregate descending.
pub fn groupby(table: &Table, cfg: &GroupBy) -> Result<Table> {
    if let Some(fast) = try_groupby_fast(table, cfg)? {
        return Ok(fast);
    }
    groupby_generic(table, cfg)
}

/// Specialized kernel for the overwhelmingly common shape in the paper's
/// pipelines: one string key, aggregates that are `sum`/`count`/`count_all`
/// over integer columns. Avoids per-row `Row`/`Value` allocation — the
/// generic path's dominant cost. Returns `Ok(None)` when the shape doesn't
/// match (the generic path takes over).
fn try_groupby_fast(table: &Table, cfg: &GroupBy) -> Result<Option<Table>> {
    use crate::column::Column as C;
    if cfg.keys.len() != 1 {
        return Ok(None);
    }
    let aggs = cfg.effective_aggregates();
    let key_col = table.column(&cfg.keys[0])?;
    let C::Utf8 {
        data: key_data,
        validity: key_validity,
    } = key_col.as_ref()
    else {
        return Ok(None);
    };
    if key_validity.count_ones() != key_data.len() {
        return Ok(None); // null keys: generic path handles the grouping
    }

    // Resolve aggregate inputs: each must be CountAll, or Sum/Count over a
    // null-free Int64 column.
    enum FastAgg<'a> {
        Sum(&'a [i64]),
        // Count over a null-free column degenerates to CountAll, but keeping
        // the variant distinct documents which flow-file spelling produced it.
        Count,
        CountAll,
    }
    let mut fast_aggs: Vec<FastAgg<'_>> = Vec::with_capacity(aggs.len());
    for a in &aggs {
        match a.operator {
            AggKind::CountAll => fast_aggs.push(FastAgg::CountAll),
            AggKind::Sum | AggKind::Count => {
                let col = table.column(&a.apply_on)?;
                let C::Int64 { data, validity } = col.as_ref() else {
                    return Ok(None);
                };
                if validity.count_ones() != data.len() {
                    return Ok(None);
                }
                fast_aggs.push(match a.operator {
                    AggKind::Sum => FastAgg::Sum(data),
                    _ => FastAgg::Count,
                });
            }
            _ => return Ok(None),
        }
    }

    let mut index: HashMap<&str, usize> = HashMap::with_capacity(1024);
    let mut keys: Vec<&str> = Vec::new();
    let mut acc: Vec<Vec<i64>> = vec![Vec::new(); fast_aggs.len()];
    for (i, key) in key_data.iter().enumerate() {
        let gid = match index.get(key.as_str()) {
            Some(&g) => g,
            None => {
                let g = keys.len();
                index.insert(key.as_str(), g);
                keys.push(key.as_str());
                for a in acc.iter_mut() {
                    a.push(0);
                }
                g
            }
        };
        for (ai, fa) in fast_aggs.iter().enumerate() {
            acc[ai][gid] += match fa {
                FastAgg::Sum(data) => data[i],
                FastAgg::Count | FastAgg::CountAll => 1,
            };
        }
        let _ = i;
    }

    let mut order: Vec<usize> = (0..keys.len()).collect();
    if cfg.orderby_aggregates && !acc.is_empty() {
        order.sort_by(|&a, &b| acc[0][b].cmp(&acc[0][a]));
    }

    let key_out = Column::utf8(order.iter().map(|&g| keys[g].to_string()));
    let mut columns = vec![key_out];
    for a in &acc {
        columns.push(Column::int(order.iter().map(|&g| a[g])));
    }
    let mut fields = vec![table.schema().field(&cfg.keys[0])?.clone()];
    for a in &aggs {
        fields.push(Field::new(&a.out_field, DataType::Int64));
    }
    Ok(Some(Table::new(Schema::new(fields)?, columns)?))
}

fn groupby_generic(table: &Table, cfg: &GroupBy) -> Result<Table> {
    let mut partial = GroupByPartial::new(cfg.clone());
    partial.update(table)?;
    partial.into_table()
}

/// Mergeable group-by state: the group index and accumulators of a
/// partial scan. One partial per partition (or per micro-batch stream),
/// merged **in partition order** so first-seen group order — and with it
/// order-sensitive aggregates like `first`/`collect` — match a single
/// pass over the concatenated input exactly. Both the batch kernel
/// ([`groupby`]'s generic path) and the scatter/gather and streaming
/// contexts finish through this one materialisation, which is what pins
/// their outputs byte-identical.
#[derive(Debug, Clone)]
pub struct GroupByPartial {
    cfg: GroupBy,
    /// Captured from the first batch; output schema derives from it.
    input_schema: Option<Schema>,
    groups: HashMap<Row, usize>,
    key_rows: Vec<Row>,
    accs: Vec<Vec<crate::agg::Accumulator>>,
}

impl GroupByPartial {
    /// Empty state for a group-by configuration.
    pub fn new(cfg: GroupBy) -> GroupByPartial {
        GroupByPartial {
            cfg,
            input_schema: None,
            groups: HashMap::new(),
            key_rows: Vec::new(),
            accs: Vec::new(),
        }
    }

    /// The configuration this partial accumulates for.
    pub fn config(&self) -> &GroupBy {
        &self.cfg
    }

    /// Distinct groups seen so far.
    pub fn num_groups(&self) -> usize {
        self.key_rows.len()
    }

    /// True before the first [`GroupByPartial::update`].
    pub fn is_empty_state(&self) -> bool {
        self.input_schema.is_none()
    }

    /// Fold one batch of input rows into the state.
    pub fn update(&mut self, batch: &Table) -> Result<()> {
        if self.input_schema.is_none() {
            self.input_schema = Some(batch.schema().clone());
        }
        let aggs = self.cfg.effective_aggregates();
        // Resolve columns up front.
        let key_cols: Vec<_> = self
            .cfg
            .keys
            .iter()
            .map(|k| batch.column(k).cloned())
            .collect::<Result<Vec<_>>>()?;
        let agg_cols: Vec<Option<_>> = aggs
            .iter()
            .map(|a| {
                if a.operator == AggKind::CountAll {
                    Ok(None)
                } else {
                    batch.column(&a.apply_on).cloned().map(Some)
                }
            })
            .collect::<Result<Vec<_>>>()?;

        for i in 0..batch.num_rows() {
            let key = Row(key_cols.iter().map(|c| c.value(i)).collect());
            let gid = *self.groups.entry(key.clone()).or_insert_with(|| {
                self.key_rows.push(key.clone());
                self.accs
                    .push(aggs.iter().map(|a| a.operator.accumulator()).collect());
                self.key_rows.len() - 1
            });
            for (ai, col) in agg_cols.iter().enumerate() {
                let v = match col {
                    Some(c) => c.value(i),
                    None => Value::Null, // CountAll ignores the value
                };
                self.accs[gid][ai].update(&v)?;
            }
        }
        Ok(())
    }

    /// Fold another partial into this one. `other` must cover rows that
    /// come after this partial's rows: groups first seen in `other` are
    /// appended in `other`'s order, reproducing global first-seen order.
    pub fn merge(&mut self, other: GroupByPartial) -> Result<()> {
        if self.cfg != other.cfg {
            return Err(TabularError::InvalidOperation(
                "group-by partial merge with mismatched configurations".into(),
            ));
        }
        if self.input_schema.is_none() {
            self.input_schema = other.input_schema;
        }
        let aggs = self.cfg.effective_aggregates();
        for (key, accs) in other.key_rows.into_iter().zip(other.accs) {
            let gid = *self.groups.entry(key.clone()).or_insert_with(|| {
                self.key_rows.push(key.clone());
                self.accs
                    .push(aggs.iter().map(|a| a.operator.accumulator()).collect());
                self.key_rows.len() - 1
            });
            for (ai, acc) in accs.into_iter().enumerate() {
                self.accs[gid][ai].merge(acc)?;
            }
        }
        Ok(())
    }

    /// Finish *clones* of the accumulators, leaving the running state
    /// intact — the streaming context snapshots per tick.
    pub fn snapshot(&self) -> Result<Table> {
        let finished: Vec<Vec<Value>> = self
            .accs
            .iter()
            .map(|group| group.iter().map(|a| a.clone().finish()).collect())
            .collect();
        self.materialize(finished)
    }

    /// Finish the state into the output table.
    pub fn into_table(mut self) -> Result<Table> {
        let finished: Vec<Vec<Value>> = std::mem::take(&mut self.accs)
            .into_iter()
            .map(|group| group.into_iter().map(|a| a.finish()).collect())
            .collect();
        self.materialize(finished)
    }

    /// Materialise output columns (shared by snapshot and finish).
    fn materialize(&self, mut finished: Vec<Vec<Value>>) -> Result<Table> {
        let Some(input_schema) = self.input_schema.as_ref() else {
            return Err(TabularError::InvalidOperation(
                "group-by finish before any input batch".into(),
            ));
        };
        let cfg = &self.cfg;
        let aggs = cfg.effective_aggregates();
        let n_groups = self.key_rows.len();
        let mut out_values: Vec<Vec<Value>> =
            vec![Vec::with_capacity(n_groups); cfg.keys.len() + aggs.len()];

        // Optional ordering by first aggregate, descending.
        let mut order: Vec<usize> = (0..n_groups).collect();
        if cfg.orderby_aggregates && !finished.is_empty() {
            order.sort_by(|&a, &b| finished[b][0].cmp(&finished[a][0]));
        }

        for &g in &order {
            for (ci, v) in self.key_rows[g].iter().enumerate() {
                out_values[ci].push(v.clone());
            }
            for (ai, v) in finished[g].drain(..).enumerate() {
                out_values[cfg.keys.len() + ai].push(v);
            }
        }

        let schema = cfg.output_schema(input_schema)?;
        let columns: Vec<Column> = out_values
            .iter()
            .zip(schema.fields())
            .map(|(vals, f)| {
                // Honour the declared output type where possible; fall back to
                // inference for heterogenous results.
                let col = Column::from_values(vals);
                col.cast(f.data_type()).unwrap_or(col)
            })
            .collect();
        // Schema types may have been adjusted by fallback; rebuild from columns.
        let fields: Vec<Field> = schema
            .fields()
            .iter()
            .zip(&columns)
            .map(|(f, c)| {
                if c.data_type() == DataType::Null {
                    f.clone()
                } else {
                    f.retyped(c.data_type())
                }
            })
            .collect();
        Table::new(Schema::new(fields)?, columns)
    }
}

/// Accumulate one table into a fresh partial (the scatter side of a
/// partitioned group-by).
pub fn groupby_partial(table: &Table, cfg: &GroupBy) -> Result<GroupByPartial> {
    let mut partial = GroupByPartial::new(cfg.clone());
    partial.update(table)?;
    Ok(partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn svn_jira() -> Table {
        Table::from_rows(
            &["project", "year", "noOfBugs", "noOfCheckins"],
            &[
                row!["pig", 2013i64, 5i64, 100i64],
                row!["pig", 2013i64, 3i64, 50i64],
                row!["pig", 2014i64, 7i64, 80i64],
                row!["hive", 2013i64, 2i64, 30i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_figure8_composite_key_sums() {
        // figure 8: groupby [project, year] with sum aggregates.
        let cfg = GroupBy::with_aggregates(
            &["project", "year"],
            vec![
                AggregateSpec::new(AggKind::Sum, "noOfCheckins", "total_checkins"),
                AggregateSpec::new(AggKind::Sum, "noOfBugs", "total_jira"),
            ],
        );
        let out = groupby(&svn_jira(), &cfg).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(
            out.schema().names(),
            vec!["project", "year", "total_checkins", "total_jira"]
        );
        // First-seen order: (pig,2013), (pig,2014), (hive,2013)
        assert_eq!(out.value(0, "total_checkins").unwrap(), Value::Int(150));
        assert_eq!(out.value(0, "total_jira").unwrap(), Value::Int(8));
        assert_eq!(out.value(2, "total_checkins").unwrap(), Value::Int(30));
    }

    #[test]
    fn paper_figure23_bare_count_default() {
        // figure 23: groupby [date, player] with no aggregates -> count.
        let t = Table::from_rows(
            &["date", "player"],
            &[
                row!["d1", "dhoni"],
                row!["d1", "dhoni"],
                row!["d1", "kohli"],
                row!["d2", "dhoni"],
            ],
        )
        .unwrap();
        let out = groupby(&t, &GroupBy::counting(&["date", "player"])).unwrap();
        assert_eq!(out.schema().names(), vec!["date", "player", "count"]);
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "count").unwrap(), Value::Int(2));
    }

    #[test]
    fn orderby_aggregates_sorts_descending() {
        let t = Table::from_rows(
            &["word"],
            &[
                row!["a"],
                row!["b"],
                row!["b"],
                row!["b"],
                row!["c"],
                row!["c"],
            ],
        )
        .unwrap();
        let mut cfg = GroupBy::counting(&["word"]);
        cfg.orderby_aggregates = true;
        let out = groupby(&t, &cfg).unwrap();
        let counts: Vec<i64> = (0..3)
            .map(|i| out.value(i, "count").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(counts, vec![3, 2, 1]);
    }

    #[test]
    fn null_keys_group_together() {
        let t = Table::from_rows(
            &["k", "v"],
            &[
                row![Value::Null, 1i64],
                row![Value::Null, 2i64],
                row!["x", 3i64],
            ],
        )
        .unwrap();
        let cfg =
            GroupBy::with_aggregates(&["k"], vec![AggregateSpec::new(AggKind::Sum, "v", "s")]);
        let out = groupby(&t, &cfg).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "s").unwrap(), Value::Int(3));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let t = Table::from_rows(&["k", "v"], &[]).unwrap();
        let out = groupby(&t, &GroupBy::counting(&["k"])).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.schema().names(), vec!["k", "count"]);
    }

    #[test]
    fn missing_key_column_errors() {
        assert!(groupby(&svn_jira(), &GroupBy::counting(&["nope"])).is_err());
        let cfg = GroupBy::with_aggregates(
            &["project"],
            vec![AggregateSpec::new(AggKind::Sum, "nope", "s")],
        );
        assert!(groupby(&svn_jira(), &cfg).is_err());
    }

    #[test]
    fn avg_produces_float() {
        let cfg = GroupBy::with_aggregates(
            &["project"],
            vec![AggregateSpec::new(AggKind::Avg, "noOfBugs", "avg_bugs")],
        );
        let out = groupby(&svn_jira(), &cfg).unwrap();
        assert_eq!(
            out.schema().field("avg_bugs").unwrap().data_type(),
            DataType::Float64
        );
        assert_eq!(out.value(0, "avg_bugs").unwrap(), Value::Float(5.0));
    }

    #[test]
    fn fast_path_matches_generic_path() {
        // The single-key/int-sum specialization must be invisible: same
        // rows, same order, same schema as the generic kernel.
        let rows: Vec<Row> = (0..500)
            .map(|i| crate::row![format!("k{}", i % 37), (i % 11) as i64, (i % 7) as i64])
            .collect();
        let t = Table::from_rows(&["key", "a", "b"], &rows).unwrap();
        for orderby in [false, true] {
            let mut cfg = GroupBy::with_aggregates(
                &["key"],
                vec![
                    AggregateSpec::new(AggKind::Sum, "a", "sum_a"),
                    AggregateSpec::new(AggKind::Count, "b", "n_b"),
                    AggregateSpec::new(AggKind::CountAll, "", "n"),
                ],
            );
            cfg.orderby_aggregates = orderby;
            let fast = try_groupby_fast(&t, &cfg).unwrap().expect("shape matches");
            let generic = groupby_generic(&t, &cfg).unwrap();
            assert_eq!(fast, generic, "orderby={orderby}");
            assert!(fast.schema().same_shape(generic.schema()));
        }
    }

    #[test]
    fn fast_path_declines_unsupported_shapes() {
        let t =
            Table::from_rows(&["k", "v"], &[crate::row!["a", 1.5], crate::row!["b", 2.5]]).unwrap();
        // Float aggregate column: decline.
        let cfg =
            GroupBy::with_aggregates(&["k"], vec![AggregateSpec::new(AggKind::Sum, "v", "s")]);
        assert!(try_groupby_fast(&t, &cfg).unwrap().is_none());
        // Multi-key: decline.
        let cfg = GroupBy::counting(&["k", "v"]);
        assert!(try_groupby_fast(&t, &cfg).unwrap().is_none());
        // Avg: decline.
        let cfg =
            GroupBy::with_aggregates(&["k"], vec![AggregateSpec::new(AggKind::Avg, "v", "m")]);
        assert!(try_groupby_fast(&t, &cfg).unwrap().is_none());
        // Null keys: decline (generic path groups them).
        let t = Table::from_rows(&["k", "v"], &[crate::row![Value::Null, 1i64]]).unwrap();
        let cfg = GroupBy::counting(&["k"]);
        assert!(try_groupby_fast(&t, &cfg).unwrap().is_none());
    }

    #[test]
    fn merged_partials_match_whole_table_groupby() {
        // Partition the input at every split point, accumulate each slice
        // into its own partial, merge in partition order, and require the
        // finished table to equal the single-pass group-by byte for byte —
        // including first-seen group order and orderby_aggregates ties.
        let rows: Vec<Row> = (0..120)
            .map(|i| {
                let v = if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Int((i % 9) as i64)
                };
                crate::row![format!("k{}", i % 17), v, (i % 5) as f64]
            })
            .collect();
        let t = Table::from_rows(&["key", "a", "f"], &rows).unwrap();
        for orderby in [false, true] {
            let mut cfg = GroupBy::with_aggregates(
                &["key"],
                vec![
                    AggregateSpec::new(AggKind::Sum, "a", "sum_a"),
                    AggregateSpec::new(AggKind::Avg, "a", "avg_a"),
                    AggregateSpec::new(AggKind::Min, "f", "min_f"),
                    AggregateSpec::new(AggKind::Max, "f", "max_f"),
                    AggregateSpec::new(AggKind::First, "key", "first_k"),
                    AggregateSpec::new(AggKind::Last, "key", "last_k"),
                    AggregateSpec::new(AggKind::CountDistinct, "a", "nd_a"),
                    AggregateSpec::new(AggKind::Collect, "a", "c_a"),
                ],
            );
            cfg.orderby_aggregates = orderby;
            let whole = groupby(&t, &cfg).unwrap();
            for splits in [vec![0], vec![40, 80], vec![1, 2, 119], vec![60]] {
                let mut bounds = vec![0];
                bounds.extend(&splits);
                bounds.push(t.num_rows());
                let mut merged = GroupByPartial::new(cfg.clone());
                for w in bounds.windows(2) {
                    let slice = t.slice(w[0], w[1] - w[0]);
                    merged
                        .merge(groupby_partial(&slice, &cfg).unwrap())
                        .unwrap();
                }
                let out = merged.into_table().unwrap();
                assert_eq!(out, whole, "orderby={orderby} splits={splits:?}");
                assert!(out.schema().same_shape(whole.schema()));
            }
        }
    }

    #[test]
    fn partial_merge_rejects_mismatched_configs() {
        let mut a = GroupByPartial::new(GroupBy::counting(&["k"]));
        let b = GroupByPartial::new(GroupBy::counting(&["other"]));
        assert!(a.merge(b).is_err());
        // Finishing a never-updated partial has no schema to derive from.
        assert!(GroupByPartial::new(GroupBy::counting(&["k"]))
            .into_table()
            .is_err());
    }

    #[test]
    fn reduces_columns() {
        // §3.3: group operations reduce columns.
        let out = groupby(&svn_jira(), &GroupBy::counting(&["project"])).unwrap();
        assert_eq!(out.schema().len(), 2);
        assert!(out.schema().len() < svn_jira().schema().len());
    }
}
