//! Multi-key stable sort.

use crate::error::Result;
use crate::table::Table;
use std::cmp::Ordering;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortOrder {
    /// Ascending (default).
    #[default]
    Asc,
    /// Descending.
    Desc,
}

impl SortOrder {
    /// Parse `ASC` / `DESC` (case-insensitive).
    pub fn parse(s: &str) -> Option<SortOrder> {
        match s.to_ascii_lowercase().as_str() {
            "asc" | "ascending" => Some(SortOrder::Asc),
            "desc" | "descending" => Some(SortOrder::Desc),
            _ => None,
        }
    }
}

/// One sort key: column plus direction. The flow-file spelling is
/// `orderby_column: [count DESC]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Column name.
    pub column: String,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            order: SortOrder::Asc,
        }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            order: SortOrder::Desc,
        }
    }

    /// Parse `"count DESC"` / `"count"` flow-file forms.
    pub fn parse(s: &str) -> Option<SortKey> {
        let mut parts = s.split_whitespace();
        let column = parts.next()?.to_string();
        let order = match parts.next() {
            Some(tok) => SortOrder::parse(tok)?,
            None => SortOrder::Asc,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(SortKey { column, order })
    }
}

/// Stable multi-key sort; equal keys keep input order.
pub fn sort(table: &Table, keys: &[SortKey]) -> Result<Table> {
    let cols: Vec<_> = keys
        .iter()
        .map(|k| table.column(&k.column).cloned())
        .collect::<Result<Vec<_>>>()?;
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    indices.sort_by(|&a, &b| {
        for (key, col) in keys.iter().zip(&cols) {
            let ord = col.value(a).cmp(&col.value(b));
            let ord = match key.order {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    Ok(table.take(&indices))
}

/// The first `n` rows of [`sort`] without materialising the full order:
/// a bounded selection over (keys, original index) — the index tiebreak
/// makes the order total, so the output equals `sort(table, keys).limit(n)`
/// byte for byte (stable sort ties resolve to the lower index). Cost is one
/// tail comparison per losing row instead of `O(rows log rows)`, which is
/// what lets a partitioned top-n ship `n` rows per shard to the gather
/// stage rather than a whole sorted slice.
pub fn sort_limit(table: &Table, keys: &[SortKey], n: usize) -> Result<Table> {
    let cols: Vec<_> = keys
        .iter()
        .map(|k| table.column(&k.column).cloned())
        .collect::<Result<Vec<_>>>()?;
    if n == 0 {
        return Ok(table.limit(0));
    }
    if n >= table.num_rows() {
        return sort(table, keys);
    }
    let cmp = |a: usize, b: usize| -> Ordering {
        for (key, col) in keys.iter().zip(&cols) {
            let ord = col.value(a).cmp(&col.value(b));
            let ord = match key.order {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b)
    };
    // Current best n indices in sorted order; most rows lose against the
    // running worst in one comparison.
    let mut best: Vec<usize> = Vec::with_capacity(n + 1);
    for i in 0..table.num_rows() {
        if best.len() == n && cmp(i, best[n - 1]) != Ordering::Less {
            continue;
        }
        let pos = best.partition_point(|&j| cmp(j, i) == Ordering::Less);
        best.insert(pos, i);
        if best.len() > n {
            best.pop();
        }
    }
    Ok(table.take(&best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::Value;

    fn t() -> Table {
        Table::from_rows(
            &["team", "pts"],
            &[
                row!["MI", 3i64],
                row!["CSK", 5i64],
                row!["MI", 1i64],
                row!["CSK", 5i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_key_desc() {
        let out = sort(&t(), &[SortKey::desc("pts")]).unwrap();
        let pts: Vec<i64> = (0..4)
            .map(|i| out.value(i, "pts").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(pts, vec![5, 5, 3, 1]);
    }

    #[test]
    fn multi_key_and_stability() {
        let out = sort(&t(), &[SortKey::asc("team"), SortKey::desc("pts")]).unwrap();
        let rows: Vec<(String, i64)> = (0..4)
            .map(|i| {
                (
                    out.value(i, "team").unwrap().to_string(),
                    out.value(i, "pts").unwrap().as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            rows,
            vec![
                ("CSK".into(), 5),
                ("CSK".into(), 5),
                ("MI".into(), 3),
                ("MI".into(), 1)
            ]
        );
    }

    #[test]
    fn nulls_sort_first_ascending() {
        let t = Table::from_rows(&["x"], &[row![2i64], row![Value::Null], row![1i64]]).unwrap();
        let out = sort(&t, &[SortKey::asc("x")]).unwrap();
        assert!(out.value(0, "x").unwrap().is_null());
    }

    #[test]
    fn parse_key_forms() {
        assert_eq!(SortKey::parse("count DESC"), Some(SortKey::desc("count")));
        assert_eq!(SortKey::parse("count desc"), Some(SortKey::desc("count")));
        assert_eq!(SortKey::parse("name"), Some(SortKey::asc("name")));
        assert_eq!(SortKey::parse("a b c"), None);
        assert_eq!(SortKey::parse("a sideways"), None);
    }

    #[test]
    fn missing_column_errors() {
        assert!(sort(&t(), &[SortKey::asc("nope")]).is_err());
        assert!(sort_limit(&t(), &[SortKey::asc("nope")], 2).is_err());
    }

    #[test]
    fn sort_limit_matches_sort_then_limit() {
        // Heavy ties + nulls: the bounded selection must reproduce the
        // stable sort's head exactly, for every n and direction.
        let rows: Vec<crate::row::Row> = (0..200)
            .map(|i| {
                let v = if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Int(((i * 7) % 13) as i64)
                };
                row![v, format!("t{}", i % 5)]
            })
            .collect();
        let table = Table::from_rows(&["x", "tag"], &rows).unwrap();
        let key_sets = [
            vec![SortKey::asc("x")],
            vec![SortKey::desc("x")],
            vec![SortKey::asc("tag"), SortKey::desc("x")],
        ];
        for keys in &key_sets {
            let full = sort(&table, keys).unwrap();
            for n in [0, 1, 7, 50, 200, 500] {
                let bounded = sort_limit(&table, keys, n).unwrap();
                assert_eq!(bounded, full.limit(n), "keys={keys:?} n={n}");
            }
        }
    }
}
