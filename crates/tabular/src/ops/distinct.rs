//! Distinct rows (deduplication), optionally on a key subset.

use crate::error::Result;
use crate::row::Row;
use crate::table::Table;
use std::collections::HashSet;

/// Keep the first occurrence of each distinct key. With an empty `columns`
/// list the whole row is the key. Output preserves all columns and input
/// order of first occurrences.
pub fn distinct(table: &Table, columns: &[impl AsRef<str>]) -> Result<Table> {
    let key_cols: Vec<_> = if columns.is_empty() {
        table.columns().to_vec()
    } else {
        columns
            .iter()
            .map(|c| table.column(c.as_ref()).cloned())
            .collect::<Result<Vec<_>>>()?
    };
    let mut seen: HashSet<Row> = HashSet::new();
    let mut keep = Vec::new();
    for i in 0..table.num_rows() {
        let key = Row(key_cols.iter().map(|c| c.value(i)).collect());
        if seen.insert(key) {
            keep.push(i);
        }
    }
    Ok(table.take(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::Value;

    fn t() -> Table {
        Table::from_rows(
            &["team", "city"],
            &[
                row!["CSK", "Chennai"],
                row!["MI", "Mumbai"],
                row!["CSK", "Chennai"],
                row!["CSK", "Pune"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn whole_row_distinct() {
        let out = distinct(&t(), &[] as &[&str]).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn key_subset_distinct_keeps_first() {
        let out = distinct(&t(), &["team"]).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "city").unwrap(), Value::Str("Chennai".into()));
    }

    #[test]
    fn nulls_are_one_key() {
        let t =
            Table::from_rows(&["x"], &[row![Value::Null], row![Value::Null], row![1i64]]).unwrap();
        assert_eq!(distinct(&t, &[] as &[&str]).unwrap().num_rows(), 2);
    }

    #[test]
    fn missing_column_errors() {
        assert!(distinct(&t(), &["nope"]).is_err());
    }
}
