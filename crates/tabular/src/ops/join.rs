//! Hash joins (the paper's `join` task, appendix A.1).
//!
//! A flow-file join names its inputs and keys (`left: players_tweets by
//! player`, `right: team_players by player`), a condition (`join_condition:
//! left outer`) and a projection that both selects and renames output
//! columns (`players_tweets_date: date`).

use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::row::Row;
use crate::schema::{Field, Schema};
use crate::table::Table;
use std::collections::HashMap;

/// Join condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinCondition {
    /// Inner join: matched pairs only.
    #[default]
    Inner,
    /// All left rows; unmatched right side nulls.
    LeftOuter,
    /// All right rows; unmatched left side nulls.
    RightOuter,
    /// All rows from both sides.
    FullOuter,
}

impl JoinCondition {
    /// Parse the (case-insensitive) flow-file spelling: `inner`,
    /// `left outer` / `LEFT_OUTER`, etc.
    pub fn parse(s: &str) -> Option<JoinCondition> {
        let norm: String = s
            .to_ascii_lowercase()
            .replace(['_', '-'], " ")
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        Some(match norm.as_str() {
            "inner" => JoinCondition::Inner,
            "left outer" | "left" => JoinCondition::LeftOuter,
            "right outer" | "right" => JoinCondition::RightOuter,
            "full outer" | "full" | "outer" => JoinCondition::FullOuter,
            _ => return None,
        })
    }

    /// Canonical spelling.
    pub fn name(self) -> &'static str {
        match self {
            JoinCondition::Inner => "inner",
            JoinCondition::LeftOuter => "left outer",
            JoinCondition::RightOuter => "right outer",
            JoinCondition::FullOuter => "full outer",
        }
    }
}

/// One projected output column: which side, source column, output name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectSpec {
    /// `true` = from the left input, `false` = right.
    pub from_left: bool,
    /// Column name on that side.
    pub column: String,
    /// Output column name.
    pub rename: String,
}

impl ProjectSpec {
    /// Project a left column.
    pub fn left(column: impl Into<String>, rename: impl Into<String>) -> Self {
        ProjectSpec {
            from_left: true,
            column: column.into(),
            rename: rename.into(),
        }
    }

    /// Project a right column.
    pub fn right(column: impl Into<String>, rename: impl Into<String>) -> Self {
        ProjectSpec {
            from_left: false,
            column: column.into(),
            rename: rename.into(),
        }
    }
}

/// Full join task configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Left key columns.
    pub left_keys: Vec<String>,
    /// Right key columns (same arity as left).
    pub right_keys: Vec<String>,
    /// Join condition.
    pub condition: JoinCondition,
    /// Output projection. Empty = all left columns then all right columns
    /// (right columns suffixed `_right` on name clashes).
    pub projection: Vec<ProjectSpec>,
}

/// Resolve a projected column name, falling back to a unique
/// case-insensitive match. The paper's own appendix A.1 listing writes
/// `dim_teams_Team: team` against a `team` column — the platform the paper
/// describes evidently tolerated case slips in projections, so this
/// reproduction does too (exact matches always win).
fn resolve_column<'s>(schema: &'s Schema, name: &str) -> Result<&'s str> {
    if schema.contains(name) {
        return Ok(schema.field(name)?.name());
    }
    let mut matches = schema
        .fields()
        .iter()
        .filter(|f| f.name().eq_ignore_ascii_case(name));
    match (matches.next(), matches.next()) {
        (Some(f), None) => Ok(f.name()),
        _ => Err(TabularError::column_not_found(name, &schema.names())),
    }
}

impl JoinSpec {
    /// Equi-join on identically named keys with default projection.
    pub fn on(keys: &[impl AsRef<str>], condition: JoinCondition) -> Self {
        let keys: Vec<String> = keys.iter().map(|k| k.as_ref().to_string()).collect();
        JoinSpec {
            left_keys: keys.clone(),
            right_keys: keys,
            condition,
            projection: Vec::new(),
        }
    }

    /// Output schema given the input schemas.
    pub fn output_schema(&self, left: &Schema, right: &Schema) -> Result<Schema> {
        if self.left_keys.len() != self.right_keys.len() {
            return Err(TabularError::InvalidOperation(format!(
                "join key arity mismatch: {} vs {}",
                self.left_keys.len(),
                self.right_keys.len()
            )));
        }
        left.require(&self.left_keys)?;
        right.require(&self.right_keys)?;
        let mut fields = Vec::new();
        if self.projection.is_empty() {
            for f in left.fields() {
                fields.push(f.clone());
            }
            for f in right.fields() {
                if left.contains(f.name()) {
                    fields.push(f.renamed(format!("{}_right", f.name())));
                } else {
                    fields.push(f.clone());
                }
            }
        } else {
            for p in &self.projection {
                let side = if p.from_left { left } else { right };
                let resolved = resolve_column(side, &p.column)?.to_string();
                fields.push(side.field(&resolved)?.renamed(&p.rename));
            }
        }
        Schema::new(fields)
    }
}

/// Execute a hash join. The smaller-side build is on the right; output
/// order is left-row order (then unmatched right rows for right/full outer),
/// deterministic for testing.
pub fn join(left: &Table, right: &Table, spec: &JoinSpec) -> Result<Table> {
    let schema = spec.output_schema(left.schema(), right.schema())?;

    let lkeys: Vec<_> = spec
        .left_keys
        .iter()
        .map(|k| left.column(k).cloned())
        .collect::<Result<Vec<_>>>()?;
    let rkeys: Vec<_> = spec
        .right_keys
        .iter()
        .map(|k| right.column(k).cloned())
        .collect::<Result<Vec<_>>>()?;

    // Build side: right.
    let mut build: HashMap<Row, Vec<usize>> = HashMap::new();
    for i in 0..right.num_rows() {
        let key = Row(rkeys.iter().map(|c| c.value(i)).collect());
        // SQL semantics: null keys never match.
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        build.entry(key).or_default().push(i);
    }

    // Probe side: left.
    let mut left_idx: Vec<Option<usize>> = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    let mut right_matched = vec![false; right.num_rows()];

    for i in 0..left.num_rows() {
        let key = Row(lkeys.iter().map(|c| c.value(i)).collect());
        let matches = if key.iter().any(|v| v.is_null()) {
            None
        } else {
            build.get(&key)
        };
        match matches {
            Some(ms) => {
                for &m in ms {
                    left_idx.push(Some(i));
                    right_idx.push(Some(m));
                    right_matched[m] = true;
                }
            }
            None => {
                if matches!(
                    spec.condition,
                    JoinCondition::LeftOuter | JoinCondition::FullOuter
                ) {
                    left_idx.push(Some(i));
                    right_idx.push(None);
                }
            }
        }
    }
    if matches!(
        spec.condition,
        JoinCondition::RightOuter | JoinCondition::FullOuter
    ) {
        for (m, &matched) in right_matched.iter().enumerate() {
            if !matched {
                left_idx.push(None);
                right_idx.push(Some(m));
            }
        }
    }

    // Materialise the projected columns.
    let projections: Vec<(bool, String)> = if spec.projection.is_empty() {
        left.schema()
            .names()
            .iter()
            .map(|n| (true, n.to_string()))
            .chain(
                right
                    .schema()
                    .names()
                    .iter()
                    .map(|n| (false, n.to_string())),
            )
            .collect()
    } else {
        spec.projection
            .iter()
            .map(|p| {
                let side = if p.from_left {
                    left.schema()
                } else {
                    right.schema()
                };
                Ok((p.from_left, resolve_column(side, &p.column)?.to_string()))
            })
            .collect::<Result<Vec<_>>>()?
    };

    let mut columns: Vec<Column> = Vec::with_capacity(projections.len());
    for (from_left, col_name) in &projections {
        let (table_side, idx) = if *from_left {
            (left, &left_idx)
        } else {
            (right, &right_idx)
        };
        columns.push(table_side.column(col_name)?.take_opt(idx));
    }
    // Outer joins introduce nulls; the schema's types still hold, but a
    // column that came out all-null degrades to Null type — retype fields
    // from the actual columns to keep the table constructor's invariant.
    let fields: Vec<Field> = schema
        .fields()
        .iter()
        .zip(&columns)
        .map(|(f, c)| {
            if c.data_type() == crate::datatype::DataType::Null {
                f.clone()
            } else {
                f.retyped(c.data_type())
            }
        })
        .collect();
    Table::new(Schema::new(fields)?, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::Value;

    fn players_tweets() -> Table {
        Table::from_rows(
            &["date", "player", "count"],
            &[
                row!["d1", "dhoni", 10i64],
                row!["d1", "kohli", 7i64],
                row!["d2", "dhoni", 4i64],
                row!["d2", "unknown", 1i64],
            ],
        )
        .unwrap()
    }

    fn team_players() -> Table {
        Table::from_rows(
            &["player", "team", "team_fullName"],
            &[
                row!["dhoni", "CSK", "Chennai Super Kings"],
                row!["kohli", "RCB", "Royal Challengers Bangalore"],
                row!["rohit", "MI", "Mumbai Indians"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_join_player_team_left_outer() {
        // appendix A.1 join_player_team: left outer with rename projection.
        let spec = JoinSpec {
            left_keys: vec!["player".into()],
            right_keys: vec!["player".into()],
            condition: JoinCondition::LeftOuter,
            projection: vec![
                ProjectSpec::left("date", "date"),
                ProjectSpec::left("player", "player"),
                ProjectSpec::left("count", "noOfTweets"),
                ProjectSpec::right("team", "team"),
                ProjectSpec::right("team_fullName", "team_fullName"),
            ],
        };
        let out = join(&players_tweets(), &team_players(), &spec).unwrap();
        assert_eq!(
            out.schema().names(),
            vec!["date", "player", "noOfTweets", "team", "team_fullName"]
        );
        assert_eq!(out.num_rows(), 4, "all left rows survive");
        assert_eq!(out.value(0, "team").unwrap(), Value::Str("CSK".into()));
        assert!(
            out.value(3, "team").unwrap().is_null(),
            "unmatched left row"
        );
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let spec = JoinSpec::on(&["player"], JoinCondition::Inner);
        let out = join(&players_tweets(), &team_players(), &spec).unwrap();
        assert_eq!(out.num_rows(), 3);
        // Default projection suffixes the clashing right key.
        assert!(out.schema().contains("player_right"));
    }

    #[test]
    fn right_and_full_outer() {
        let spec = JoinSpec::on(&["player"], JoinCondition::RightOuter);
        let out = join(&players_tweets(), &team_players(), &spec).unwrap();
        // matched: dhoni×2, kohli×1 = 3 rows; unmatched right: rohit = 1.
        assert_eq!(out.num_rows(), 4);

        let spec = JoinSpec::on(&["player"], JoinCondition::FullOuter);
        let out = join(&players_tweets(), &team_players(), &spec).unwrap();
        // 3 matched + 1 unmatched left + 1 unmatched right.
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn one_to_many_fanout() {
        let left = Table::from_rows(&["k"], &[row!["a"]]).unwrap();
        let right = Table::from_rows(
            &["k", "v"],
            &[row!["a", 1i64], row!["a", 2i64], row!["a", 3i64]],
        )
        .unwrap();
        let out = join(&left, &right, &JoinSpec::on(&["k"], JoinCondition::Inner)).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn null_keys_never_match() {
        let left = Table::from_rows(&["k"], &[row![Value::Null], row!["a"]]).unwrap();
        let right = Table::from_rows(&["k"], &[row![Value::Null], row!["a"]]).unwrap();
        let out = join(&left, &right, &JoinSpec::on(&["k"], JoinCondition::Inner)).unwrap();
        assert_eq!(out.num_rows(), 1);
        let out = join(
            &left,
            &right,
            &JoinSpec::on(&["k"], JoinCondition::FullOuter),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3, "null rows preserved on both sides");
    }

    #[test]
    fn composite_keys() {
        let left = Table::from_rows(
            &["a", "b", "x"],
            &[row!["1", "1", 10i64], row!["1", "2", 20i64]],
        )
        .unwrap();
        let right = Table::from_rows(&["a", "b", "y"], &[row!["1", "2", 99i64]]).unwrap();
        let mut spec = JoinSpec::on(&["a", "b"], JoinCondition::Inner);
        spec.projection = vec![ProjectSpec::left("x", "x"), ProjectSpec::right("y", "y")];
        let out = join(&left, &right, &spec).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "x").unwrap(), Value::Int(20));
    }

    #[test]
    fn condition_parsing() {
        assert_eq!(
            JoinCondition::parse("left outer"),
            Some(JoinCondition::LeftOuter)
        );
        assert_eq!(
            JoinCondition::parse("LEFT_OUTER"),
            Some(JoinCondition::LeftOuter)
        );
        assert_eq!(
            JoinCondition::parse("LEFT OUTER"),
            Some(JoinCondition::LeftOuter)
        );
        assert_eq!(JoinCondition::parse("inner"), Some(JoinCondition::Inner));
        assert_eq!(JoinCondition::parse("full"), Some(JoinCondition::FullOuter));
        assert_eq!(JoinCondition::parse("sideways"), None);
    }

    #[test]
    fn bad_config_errors() {
        let spec = JoinSpec {
            left_keys: vec!["a".into(), "b".into()],
            right_keys: vec!["a".into()],
            condition: JoinCondition::Inner,
            projection: vec![],
        };
        assert!(join(&players_tweets(), &team_players(), &spec).is_err());
        let spec = JoinSpec::on(&["missing"], JoinCondition::Inner);
        assert!(join(&players_tweets(), &team_players(), &spec).is_err());
    }

    #[test]
    fn adds_columns() {
        // §3.3: join operations add columns.
        let spec = JoinSpec::on(&["player"], JoinCondition::Inner);
        let out = join(&players_tweets(), &team_players(), &spec).unwrap();
        assert!(out.schema().len() > players_tweets().schema().len());
    }
}
