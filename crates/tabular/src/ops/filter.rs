//! Filter kernels: expression filters (`filter_expression: rating < 3`)
//! and value-set filters (the interaction-flow form configured with
//! `filter_by` / `filter_source` / `filter_val`, figure 15).

use crate::bitmap::Bitmap;
use crate::error::Result;
use crate::expr::Expr;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashSet;

/// Filter rows where `expr` evaluates to true. Column-preserving.
pub fn filter_by_expr(table: &Table, expr: &Expr) -> Result<Table> {
    let mask = expr.eval_mask(table)?;
    Ok(table.filter(&mask))
}

/// Configuration for filtering by allowed value sets on one or more columns.
///
/// In interaction flows the allowed values come from another widget's
/// selection (e.g. keep rows whose `team` is among the teams selected in the
/// `teams` list widget). Multiple columns AND together. An empty allowed set
/// for a column is treated as "no constraint" — matching the dashboards'
/// behaviour where an empty selection shows everything.
#[derive(Debug, Clone, Default)]
pub struct FilterByValues {
    /// `(column, allowed values)` pairs.
    pub constraints: Vec<(String, Vec<Value>)>,
}

impl FilterByValues {
    /// Single-column constraint.
    pub fn single(column: impl Into<String>, allowed: Vec<Value>) -> Self {
        FilterByValues {
            constraints: vec![(column.into(), allowed)],
        }
    }

    /// Add a constraint.
    pub fn and(mut self, column: impl Into<String>, allowed: Vec<Value>) -> Self {
        self.constraints.push((column.into(), allowed));
        self
    }

    /// A range constraint `[lo, hi]` on a column, as produced by slider
    /// widgets (`ipl_duration` date slider). Encoded as a two-element
    /// allowed list interpreted by [`filter_by_values`] as inclusive bounds.
    pub fn range(column: impl Into<String>, lo: Value, hi: Value) -> RangeFilter {
        RangeFilter {
            column: column.into(),
            lo,
            hi,
        }
    }
}

/// Inclusive range filter used by slider widgets.
#[derive(Debug, Clone)]
pub struct RangeFilter {
    /// Column to constrain.
    pub column: String,
    /// Inclusive lower bound.
    pub lo: Value,
    /// Inclusive upper bound.
    pub hi: Value,
}

/// Apply a range filter.
pub fn filter_by_range(table: &Table, range: &RangeFilter) -> Result<Table> {
    let col = table.column(&range.column)?;
    let n = table.num_rows();
    let mut mask = Bitmap::new_cleared(n);
    for i in 0..n {
        let v = col.value(i);
        if !v.is_null() && v >= range.lo && v <= range.hi {
            mask.set(i);
        }
    }
    Ok(table.filter(&mask))
}

/// Apply value-set constraints; all constraints AND together.
pub fn filter_by_values(table: &Table, spec: &FilterByValues) -> Result<Table> {
    let n = table.num_rows();
    let mut mask = Bitmap::new_set(n);
    for (column, allowed) in &spec.constraints {
        if allowed.is_empty() {
            continue; // empty selection = no constraint
        }
        let col = table.column(column)?;
        let set: HashSet<&Value> = allowed.iter().collect();
        let mut m = Bitmap::new_cleared(n);
        for i in 0..n {
            if set.contains(&col.value(i)) {
                m.set(i);
            }
        }
        mask = mask.and(&m);
    }
    Ok(table.filter(&mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_expr;
    use crate::row;

    fn t() -> Table {
        Table::from_rows(
            &["team", "date", "n"],
            &[
                row!["CSK", "2013-05-02", 10i64],
                row!["MI", "2013-05-02", 20i64],
                row!["CSK", "2013-05-03", 30i64],
                row!["RCB", "2013-05-04", 40i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn expr_filter_preserves_columns() {
        let out = filter_by_expr(&t(), &parse_expr("n > 15").unwrap()).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().names(), vec!["team", "date", "n"]);
    }

    #[test]
    fn value_set_filter() {
        let spec = FilterByValues::single("team", vec!["CSK".into(), "MI".into()]);
        let out = filter_by_values(&t(), &spec).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn multi_column_constraints_and_together() {
        let spec = FilterByValues::single("team", vec!["CSK".into()])
            .and("date", vec!["2013-05-03".into()]);
        let out = filter_by_values(&t(), &spec).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(30));
    }

    #[test]
    fn empty_selection_means_no_constraint() {
        let spec = FilterByValues::single("team", vec![]);
        let out = filter_by_values(&t(), &spec).unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn range_filter_inclusive() {
        let r = FilterByValues::range("date", "2013-05-02".into(), "2013-05-03".into());
        let out = filter_by_range(&t(), &r).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn missing_column_errors() {
        let spec = FilterByValues::single("nope", vec!["x".into()]);
        assert!(filter_by_values(&t(), &spec).is_err());
    }

    #[test]
    fn nulls_never_match_ranges() {
        let t = Table::from_rows(&["d"], &[row!["2013-01-01"], row![Value::Null]]).unwrap();
        let r = FilterByValues::range("d", "2000-01-01".into(), "2020-01-01".into());
        assert_eq!(filter_by_range(&t, &r).unwrap().num_rows(), 1);
    }
}
