//! Map operators: per-row column transformations (§4.2 task category 1,
//! "transforming a column value into another value").
//!
//! Four built-in operators cover the paper's pipelines:
//!
//! * [`map_date`] — parse+reformat dates (`operator: date`, figure 21);
//! * [`map_extract`] — dictionary extraction of canonical names
//!   (`operator: extract` with `dict: players.txt`);
//! * [`map_extract_location`] — gazetteer state extraction
//!   (`operator: extract_location`, `country: IND`);
//! * [`map_extract_words`] — word extraction for tag clouds
//!   (`operator: extract_words`). This one is row-expanding: one input row
//!   produces one output row per extracted word.
//!
//! All operators *add* an output column (or replace an existing one), never
//! mutate the input column — matching the paper's examples where `postedTime`
//! remains alongside the normalised `date`.

use crate::column::ColumnBuilder;
use crate::datatype::DataType;
use crate::datefmt::{reformat, DatePattern};
use crate::error::{Result, TabularError};
use crate::table::Table;
use crate::text::{extract_words, ExtractDict, Gazetteer};

/// Configuration of a `date` map operator.
#[derive(Debug, Clone)]
pub struct DateMap {
    /// Column holding the raw date text (`transform:`).
    pub input_column: String,
    /// Java-style input pattern (`input_format:`).
    pub input_format: String,
    /// Java-style output pattern (`output_format:`).
    pub output_format: String,
    /// Output column name (`output:`).
    pub output_column: String,
    /// When true, unparseable inputs become null instead of failing the
    /// whole flow. Dirty real-world data (§5.2.2 observation 4) makes this
    /// the default.
    pub lenient: bool,
}

/// Apply a [`DateMap`].
pub fn map_date(table: &Table, cfg: &DateMap) -> Result<Table> {
    let input = table.column(&cfg.input_column)?;
    let in_pat = DatePattern::compile(&cfg.input_format)?;
    let out_pat = DatePattern::compile(&cfg.output_format)?;
    let mut b = ColumnBuilder::with_capacity(DataType::Utf8, table.num_rows());
    for i in 0..table.num_rows() {
        match input.str_at(i) {
            Some(s) => match reformat(s, &in_pat, &out_pat) {
                Ok(out) => b.push_str(out),
                Err(e) if cfg.lenient => {
                    let _ = e;
                    b.push_null();
                }
                Err(e) => return Err(e),
            },
            None => {
                let v = input.value(i);
                // Nulls always pass through as null; non-text cells only
                // survive in lenient mode.
                if v.is_null() || cfg.lenient {
                    b.push_null();
                } else {
                    return Err(TabularError::TypeMismatch {
                        expected: "utf8 date text".into(),
                        actual: v.data_type().to_string(),
                        context: format!("date map on '{}'", cfg.input_column),
                    });
                }
            }
        }
    }
    table.with_column(&cfg.output_column, b.finish())
}

/// Configuration of an `extract` map operator.
#[derive(Debug, Clone)]
pub struct ExtractMap {
    /// Column holding the text to scan (`transform:`).
    pub input_column: String,
    /// Dictionary of surface forms to canonical names (`dict:`).
    pub dict: ExtractDict,
    /// Output column (`output:`).
    pub output_column: String,
    /// When true, emit one row per extracted entity (a tweet mentioning two
    /// players counts for both); when false, keep the first match only.
    pub explode: bool,
}

/// Apply an [`ExtractMap`]. With `explode` the kernel is row-expanding and
/// drops rows with no matches; without it rows are preserved and misses are
/// null.
pub fn map_extract(table: &Table, cfg: &ExtractMap) -> Result<Table> {
    let input = table.column(&cfg.input_column)?;
    if cfg.explode {
        let mut indices: Vec<usize> = Vec::new();
        let mut values: Vec<String> = Vec::new();
        for i in 0..table.num_rows() {
            if let Some(text) = input.str_at(i) {
                for name in cfg.dict.extract_all(text) {
                    indices.push(i);
                    values.push(name.to_string());
                }
            }
        }
        let base = table.take(&indices);
        let mut b = ColumnBuilder::with_capacity(DataType::Utf8, values.len());
        for v in values {
            b.push_str(v);
        }
        base.with_column(&cfg.output_column, b.finish())
    } else {
        let mut b = ColumnBuilder::with_capacity(DataType::Utf8, table.num_rows());
        for i in 0..table.num_rows() {
            match input.str_at(i).and_then(|t| cfg.dict.extract_first(t)) {
                Some(name) => b.push_str(name),
                None => b.push_null(),
            }
        }
        table.with_column(&cfg.output_column, b.finish())
    }
}

/// Configuration of an `extract_location` map operator.
#[derive(Debug, Clone)]
pub struct LocationMap {
    /// Column holding the free-form location (`transform:`).
    pub input_column: String,
    /// Gazetteer to match against.
    pub gazetteer: Gazetteer,
    /// Country filter (`country: IND`).
    pub country: String,
    /// Output column (`output: state`).
    pub output_column: String,
}

/// Apply a [`LocationMap`]; unresolvable locations become null.
pub fn map_extract_location(table: &Table, cfg: &LocationMap) -> Result<Table> {
    let input = table.column(&cfg.input_column)?;
    let mut b = ColumnBuilder::with_capacity(DataType::Utf8, table.num_rows());
    for i in 0..table.num_rows() {
        match input
            .str_at(i)
            .and_then(|loc| cfg.gazetteer.extract_state(loc, &cfg.country))
        {
            Some(state) => b.push_str(state),
            None => b.push_null(),
        }
    }
    table.with_column(&cfg.output_column, b.finish())
}

/// Configuration of an `extract_words` map operator.
#[derive(Debug, Clone)]
pub struct WordsMap {
    /// Column holding the text (`transform: body`).
    pub input_column: String,
    /// Output column (`output: word`).
    pub output_column: String,
    /// Minimum word length kept (default 3).
    pub min_len: usize,
}

/// Apply a [`WordsMap`]: row-expanding, one output row per content word.
pub fn map_extract_words(table: &Table, cfg: &WordsMap) -> Result<Table> {
    let input = table.column(&cfg.input_column)?;
    let mut indices: Vec<usize> = Vec::new();
    let mut words: Vec<String> = Vec::new();
    for i in 0..table.num_rows() {
        if let Some(text) = input.str_at(i) {
            for w in extract_words(text, cfg.min_len) {
                indices.push(i);
                words.push(w);
            }
        }
    }
    let base = table.take(&indices);
    let mut b = ColumnBuilder::with_capacity(DataType::Utf8, words.len());
    for w in words {
        b.push_str(w);
    }
    base.with_column(&cfg.output_column, b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::Value;

    fn tweets() -> Table {
        Table::from_rows(
            &["postedTime", "body", "displayName"],
            &[
                row![
                    "Thu May 02 19:30:05 +0530 2013",
                    "What a six by dhoni! csk all the way",
                    "Chennai, India"
                ],
                row![
                    "Fri May 03 10:00:00 +0530 2013",
                    "kohli and dhoni both brilliant tonight",
                    "Bangalore"
                ],
                row![
                    "Fri May 03 12:00:00 +0530 2013",
                    "weather is nice",
                    "London"
                ],
            ],
        )
        .unwrap()
    }

    fn players() -> ExtractDict {
        ExtractDict::parse("dhoni => MS Dhoni\nkohli => Virat Kohli")
    }

    #[test]
    fn date_map_normalises() {
        let out = map_date(
            &tweets(),
            &DateMap {
                input_column: "postedTime".into(),
                input_format: "E MMM dd HH:mm:ss Z yyyy".into(),
                output_format: "yyyy-MM-dd".into(),
                output_column: "date".into(),
                lenient: false,
            },
        )
        .unwrap();
        assert_eq!(
            out.value(0, "date").unwrap(),
            Value::Str("2013-05-02".into())
        );
        assert_eq!(
            out.value(1, "date").unwrap(),
            Value::Str("2013-05-03".into())
        );
        // Input column is preserved alongside.
        assert!(out.schema().contains("postedTime"));
    }

    #[test]
    fn date_map_lenient_nulls_bad_rows() {
        let t = Table::from_rows(&["d"], &[row!["2013-05-02"], row!["garbage"]]).unwrap();
        let cfg = DateMap {
            input_column: "d".into(),
            input_format: "yyyy-MM-dd".into(),
            output_format: "yyyy/MM/dd".into(),
            output_column: "out".into(),
            lenient: true,
        };
        let out = map_date(&t, &cfg).unwrap();
        assert_eq!(
            out.value(0, "out").unwrap(),
            Value::Str("2013/05/02".into())
        );
        assert!(out.value(1, "out").unwrap().is_null());
        // Strict mode errors instead.
        let strict = DateMap {
            lenient: false,
            ..cfg
        };
        assert!(map_date(&t, &strict).is_err());
    }

    #[test]
    fn extract_explode_multiplies_rows() {
        let out = map_extract(
            &tweets(),
            &ExtractMap {
                input_column: "body".into(),
                dict: players(),
                output_column: "player".into(),
                explode: true,
            },
        )
        .unwrap();
        // tweet0: dhoni; tweet1: kohli + dhoni; tweet2: none
        assert_eq!(out.num_rows(), 3);
        let players: Vec<String> = (0..3)
            .map(|i| out.value(i, "player").unwrap().to_string())
            .collect();
        assert_eq!(players, vec!["MS Dhoni", "Virat Kohli", "MS Dhoni"]);
    }

    #[test]
    fn extract_first_preserves_rows() {
        let out = map_extract(
            &tweets(),
            &ExtractMap {
                input_column: "body".into(),
                dict: players(),
                output_column: "player".into(),
                explode: false,
            },
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert!(out.value(2, "player").unwrap().is_null());
    }

    #[test]
    fn location_extraction() {
        let out = map_extract_location(
            &tweets(),
            &LocationMap {
                input_column: "displayName".into(),
                gazetteer: Gazetteer::india_default(),
                country: "IND".into(),
                output_column: "state".into(),
            },
        )
        .unwrap();
        assert_eq!(
            out.value(0, "state").unwrap(),
            Value::Str("Tamil Nadu".into())
        );
        assert_eq!(
            out.value(1, "state").unwrap(),
            Value::Str("Karnataka".into())
        );
        assert!(out.value(2, "state").unwrap().is_null());
    }

    #[test]
    fn words_extraction_expands_and_filters() {
        let t = Table::from_rows(&["body"], &[row!["The csk won the game"]]).unwrap();
        let out = map_extract_words(
            &t,
            &WordsMap {
                input_column: "body".into(),
                output_column: "word".into(),
                min_len: 3,
            },
        )
        .unwrap();
        let words: Vec<String> = (0..out.num_rows())
            .map(|i| out.value(i, "word").unwrap().to_string())
            .collect();
        assert_eq!(words, vec!["csk", "won", "game"]);
    }

    #[test]
    fn output_column_can_replace_existing() {
        let t = Table::from_rows(&["d"], &[row!["2013-05-02"]]).unwrap();
        let out = map_date(
            &t,
            &DateMap {
                input_column: "d".into(),
                input_format: "yyyy-MM-dd".into(),
                output_format: "dd/MM/yyyy".into(),
                output_column: "d".into(),
                lenient: false,
            },
        )
        .unwrap();
        assert_eq!(out.schema().len(), 1);
        assert_eq!(out.value(0, "d").unwrap(), Value::Str("02/05/2013".into()));
    }

    #[test]
    fn missing_input_column_errors() {
        let cfg = WordsMap {
            input_column: "nope".into(),
            output_column: "w".into(),
            min_len: 3,
        };
        assert!(map_extract_words(&tweets(), &cfg).is_err());
    }
}
