//! Operator kernels.
//!
//! Each kernel is a pure function `&Table -> Table` (or `(&Table, &Table) ->
//! Table` for joins) with a config struct mirroring the corresponding task
//! type in the flow-file language. Task transformations "can add columns
//! (e.g. join), reduce columns (e.g. group) or preserve columns (e.g.
//! filter)" (§3.3) — the kernel signatures encode exactly those shapes.

pub mod distinct;
pub mod filter;
pub mod groupby;
pub mod join;
pub mod map;
pub mod sort;
pub mod topn;
pub mod union;

pub use distinct::distinct;
pub use filter::{filter_by_expr, filter_by_values, FilterByValues};
pub use groupby::{groupby, groupby_partial, AggregateSpec, GroupBy, GroupByPartial};
pub use join::{join, JoinCondition, JoinSpec, ProjectSpec};
pub use map::{
    map_date, map_extract, map_extract_location, map_extract_words, DateMap, ExtractMap,
    LocationMap, WordsMap,
};
pub use sort::{sort, sort_limit, SortKey, SortOrder};
pub use topn::{topn, TopN};
pub use union::union_all;
