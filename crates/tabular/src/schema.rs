//! Schemas: ordered, named, typed column lists.
//!
//! In the flow-file language the user declares data-object schemas as bare
//! column-name lists (§3.2 figure 5); types are inferred at load time. Tasks
//! are *context-typed* (§3.3): a task config names columns it consumes and
//! is valid only against schemas that contain them. [`Schema`] is the
//! structure that validation is performed against all the way up the stack.

use crate::datatype::DataType;
use crate::error::{Result, TabularError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    name: String,
    data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column logical type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Copy of this field with a different name (used by join projection
    /// renames such as `players_tweets_date: date`).
    pub fn renamed(&self, name: impl Into<String>) -> Field {
        Field::new(name, self.data_type)
    }

    /// Copy of this field with a different type.
    pub fn retyped(&self, data_type: DataType) -> Field {
        Field::new(self.name.clone(), data_type)
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.data_type)
    }
}

/// An ordered collection of uniquely named fields.
///
/// Cheap to clone (callers typically wrap it in [`SchemaRef`]); name lookup
/// is O(1) via an internal index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    index: HashMap<String, usize>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut index = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if index.insert(f.name.clone(), i).is_some() {
                return Err(TabularError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields, index })
    }

    /// Empty schema.
    pub fn empty() -> Self {
        Schema {
            fields: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Convenience constructor from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate names — intended for statically known schemas in
    /// tests and generators.
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("duplicate column in static schema")
    }

    /// Schema with every column typed `Utf8` — what a bare flow-file column
    /// list like `[project, question, answer, tags]` denotes before type
    /// inference.
    pub fn all_utf8(names: &[impl AsRef<str>]) -> Result<Self> {
        Schema::new(
            names
                .iter()
                .map(|n| Field::new(n.as_ref(), DataType::Utf8))
                .collect(),
        )
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| TabularError::column_not_found(name, &self.names()))
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// Field by position.
    pub fn field_at(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// True when the schema has a column of the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Verify every name in `required` is present; the error message names
    /// the first missing column.
    pub fn require(&self, required: &[impl AsRef<str>]) -> Result<()> {
        for r in required {
            self.index_of(r.as_ref())?;
        }
        Ok(())
    }

    /// New schema with `field` appended, rejecting duplicates.
    pub fn with_field(&self, field: Field) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema::new(fields)
    }

    /// New schema with `field` appended, replacing an existing same-named
    /// column in place (the behaviour of map operators whose `output`
    /// column already exists).
    pub fn upsert_field(&self, field: Field) -> Schema {
        let mut fields = self.fields.clone();
        match self.index.get(&field.name) {
            Some(&i) => fields[i] = field,
            None => fields.push(field),
        }
        Schema::new(fields).expect("upsert cannot introduce duplicates")
    }

    /// Projection onto a subset of columns, in the requested order.
    pub fn project(&self, names: &[impl AsRef<str>]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            fields.push(self.field(n.as_ref())?.clone());
        }
        Schema::new(fields)
    }

    /// True when `other` has identical names and types in the same order.
    pub fn same_shape(&self, other: &Schema) -> bool {
        self.fields == other.fields
    }

    /// Unify this schema with another having the same column names in the
    /// same order, widening types per [`DataType::unify_lossy`]. Used by
    /// `union` and multi-chunk readers.
    pub fn unify(&self, other: &Schema) -> Result<Schema> {
        if self.len() != other.len() {
            return Err(TabularError::LengthMismatch {
                left: self.len(),
                right: other.len(),
                context: "schema unify".into(),
            });
        }
        let mut fields = Vec::with_capacity(self.len());
        for (a, b) in self.fields.iter().zip(other.fields.iter()) {
            if a.name != b.name {
                return Err(TabularError::InvalidOperation(format!(
                    "schema unify: column name mismatch '{}' vs '{}'",
                    a.name, b.name
                )));
            }
            fields.push(Field::new(
                a.name.clone(),
                a.data_type.unify_lossy(b.data_type),
            ));
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ])
        .unwrap_err();
        assert!(matches!(err, TabularError::DuplicateColumn(_)));
    }

    #[test]
    fn lookup_and_projection() {
        let s = Schema::of(&[
            ("project", DataType::Utf8),
            ("year", DataType::Int64),
            ("total_wt", DataType::Float64),
        ]);
        assert_eq!(s.index_of("year").unwrap(), 1);
        assert!(s.contains("total_wt"));
        assert!(s.index_of("nope").is_err());
        let p = s.project(&["total_wt", "project"]).unwrap();
        assert_eq!(p.names(), vec!["total_wt", "project"]);
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let s = Schema::of(&[("a", DataType::Int64)]);
        assert!(s.require(&["a"]).is_ok());
        let err = s.require(&["a", "b"]).unwrap_err();
        assert!(err.to_string().contains("'b'"));
    }

    #[test]
    fn upsert_replaces_in_place() {
        let s = Schema::of(&[("a", DataType::Utf8), ("b", DataType::Utf8)]);
        let s2 = s.upsert_field(Field::new("a", DataType::Int64));
        assert_eq!(s2.names(), vec!["a", "b"]);
        assert_eq!(s2.field("a").unwrap().data_type(), DataType::Int64);
        let s3 = s.upsert_field(Field::new("c", DataType::Bool));
        assert_eq!(s3.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn unify_widens() {
        let a = Schema::of(&[("x", DataType::Int64), ("y", DataType::Null)]);
        let b = Schema::of(&[("x", DataType::Float64), ("y", DataType::Utf8)]);
        let u = a.unify(&b).unwrap();
        assert_eq!(u.field("x").unwrap().data_type(), DataType::Float64);
        assert_eq!(u.field("y").unwrap().data_type(), DataType::Utf8);
        let c = Schema::of(&[("z", DataType::Int64), ("y", DataType::Utf8)]);
        assert!(a.unify(&c).is_err(), "name mismatch");
    }

    #[test]
    fn all_utf8_matches_flowfile_declaration() {
        let s = Schema::all_utf8(&["project", "question", "answer", "tags"]).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.fields().iter().all(|f| f.data_type() == DataType::Utf8));
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::of(&[("a", DataType::Int64)]);
        assert_eq!(s.to_string(), "[a: int64]");
    }
}
