//! Compact binary record format (the platform's Avro stand-in).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "SIR1" (4 bytes)
//! ncols   u32
//! per column: name_len u32, name bytes, type tag u8
//! nrows   u64
//! per row, per column: presence u8 (0 = null, 1 = value), then the value:
//!   bool   -> u8
//!   int64  -> i64
//!   float64-> f64 bits
//!   utf8   -> len u32 + bytes
//!   date   -> i32
//! ```
//!
//! The format preserves schema and nulls exactly, so round-trips are
//! lossless — the property the platform needs to pass intermediate data
//! objects between flows without reinference.

use crate::column::{Column, ColumnBuilder};
use crate::datatype::DataType;
use crate::error::{Result, TabularError};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::Value;

const MAGIC: &[u8; 4] = b"SIR1";

fn err(msg: impl Into<String>) -> TabularError {
    TabularError::Format {
        format: "record",
        message: msg.into(),
    }
}

fn type_tag(t: DataType) -> u8 {
    match t {
        DataType::Null => 0,
        DataType::Bool => 1,
        DataType::Int64 => 2,
        DataType::Float64 => 3,
        DataType::Utf8 => 4,
        DataType::Date => 5,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Null,
        1 => DataType::Bool,
        2 => DataType::Int64,
        3 => DataType::Float64,
        4 => DataType::Utf8,
        5 => DataType::Date,
        t => return Err(err(format!("unknown type tag {t}"))),
    })
}

/// Serialise a table to the binary record format.
pub fn write_records(table: &Table) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + table.approx_bytes());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(table.num_columns() as u32).to_le_bytes());
    for f in table.schema().fields() {
        out.extend_from_slice(&(f.name().len() as u32).to_le_bytes());
        out.extend_from_slice(f.name().as_bytes());
        out.push(type_tag(f.data_type()));
    }
    out.extend_from_slice(&(table.num_rows() as u64).to_le_bytes());
    for i in 0..table.num_rows() {
        for c in table.columns() {
            let v = c.value(i);
            if v.is_null() {
                out.push(0);
                continue;
            }
            out.push(1);
            match v {
                Value::Bool(b) => out.push(b as u8),
                Value::Int(x) => out.extend_from_slice(&x.to_le_bytes()),
                Value::Float(x) => out.extend_from_slice(&x.to_bits().to_le_bytes()),
                Value::Str(s) => {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                Value::Date(d) => out.extend_from_slice(&d.to_le_bytes()),
                Value::Null => unreachable!(),
            }
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(err("truncated input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| err("invalid utf-8 in string"))
    }
}

/// Deserialise a table from the binary record format.
pub fn read_records(buf: &[u8]) -> Result<Table> {
    let mut r = Reader { buf, pos: 0 };
    if r.bytes(4)? != MAGIC {
        return Err(err("bad magic (not a SIR1 record payload)"));
    }
    let ncols = r.u32()? as usize;
    if ncols > 1_000_000 {
        return Err(err("implausible column count"));
    }
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = r.str()?;
        let ty = tag_type(r.u8()?)?;
        fields.push(Field::new(name, ty));
    }
    let nrows = r.u64()? as usize;
    let mut builders: Vec<ColumnBuilder> = fields
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.data_type(), nrows))
        .collect();
    for _ in 0..nrows {
        for (f, b) in fields.iter().zip(&mut builders) {
            let present = r.u8()?;
            if present == 0 {
                b.push_null();
                continue;
            }
            if present != 1 {
                return Err(err(format!("bad presence byte {present}")));
            }
            let v = match f.data_type() {
                DataType::Bool => Value::Bool(r.u8()? != 0),
                DataType::Int64 => Value::Int(r.i64()?),
                DataType::Float64 => Value::Float(f64::from_bits(r.u64()?)),
                DataType::Utf8 => Value::Str(r.str()?),
                DataType::Date => Value::Date(r.i32()?),
                DataType::Null => return Err(err("non-null cell in null-typed column")),
            };
            b.push_coerced(&v)?;
        }
    }
    if r.pos != buf.len() {
        return Err(err("trailing bytes after last row"));
    }
    let columns: Vec<Column> = builders.into_iter().map(ColumnBuilder::finish).collect();
    Table::new(Schema::new(fields)?, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Table {
        Table::from_rows(
            &["name", "n", "score", "flag"],
            &[
                row!["pig", 1i64, 0.5, true],
                row![Value::Null, 2i64, Value::Null, false],
                row!["hive", Value::Null, 1.25, Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_schema_and_nulls() {
        let t = sample();
        let bytes = write_records(&t);
        let back = read_records(&bytes).unwrap();
        assert_eq!(t, back);
        assert!(t.schema().same_shape(back.schema()));
    }

    #[test]
    fn roundtrip_empty_table() {
        let t = Table::from_rows(&["a"], &[]).unwrap();
        let back = read_records(&write_records(&t)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.schema().names(), vec!["a"]);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read_records(b"NOPE").is_err());
        assert!(read_records(b"").is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = write_records(&sample());
        for cut in [4, 8, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(read_records(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = write_records(&sample());
        bytes.push(0xFF);
        assert!(read_records(&bytes).is_err());
    }

    #[test]
    fn float_bits_exact() {
        let t = Table::from_rows(
            &["f"],
            &[row![f64::MAX], row![f64::MIN_POSITIVE], row![-0.0]],
        )
        .unwrap();
        let back = read_records(&write_records(&t)).unwrap();
        for i in 0..3 {
            let a = t.value(i, "f").unwrap().as_float().unwrap();
            let b = back.value(i, "f").unwrap().as_float().unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
