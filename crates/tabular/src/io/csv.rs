//! CSV reader/writer with RFC-4180 quoting and configurable separator
//! (the data section's `separator: ','` parameter, figure 4).

use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// CSV parse/serialise options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Whether the first record is a header row (default true). When false
    /// the caller must pass explicit column names.
    pub has_header: bool,
    /// Explicit column names overriding/replacing the header — the flow
    /// file's schema declaration (`stack_summary: [project, question, ...]`)
    /// takes precedence over whatever the file says.
    pub column_names: Option<Vec<String>>,
    /// Infer cell types (default true); when false all columns are Utf8.
    pub infer_types: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            has_header: true,
            column_names: None,
            infer_types: true,
        }
    }
}

/// Split CSV content into records of raw string fields.
fn parse_records(content: &str, sep: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = content.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        // Quote inside unquoted field: keep literal.
                        field.push('"');
                    }
                }
                c if c == sep => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(TabularError::Format {
            format: "csv",
            message: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    // Drop fully empty trailing records (files ending in blank lines).
    while records
        .last()
        .is_some_and(|r| r.len() == 1 && r[0].is_empty())
    {
        records.pop();
    }
    Ok(records)
}

/// Read CSV text into a table.
pub fn read_csv(content: &str, opts: &CsvOptions) -> Result<Table> {
    let mut records = parse_records(content, opts.separator)?;
    let names: Vec<String> = match (&opts.column_names, opts.has_header) {
        (Some(names), true) => {
            if !records.is_empty() {
                records.remove(0);
            }
            names.clone()
        }
        (Some(names), false) => names.clone(),
        (None, true) => {
            if records.is_empty() {
                return Err(TabularError::Format {
                    format: "csv",
                    message: "empty input with no explicit column names".into(),
                });
            }
            records
                .remove(0)
                .into_iter()
                .map(|s| s.trim().to_string())
                .collect()
        }
        (None, false) => {
            let width = records.first().map_or(0, |r| r.len());
            (0..width).map(|i| format!("col{i}")).collect()
        }
    };

    let width = names.len();
    for (li, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(TabularError::Format {
                format: "csv",
                message: format!(
                    "record {} has {} fields, expected {width}",
                    li + if opts.has_header { 2 } else { 1 },
                    r.len()
                ),
            });
        }
    }

    let mut columns = Vec::with_capacity(width);
    let mut fields = Vec::with_capacity(width);
    for ci in 0..width {
        let vals: Vec<Value> = records
            .iter()
            .map(|r| {
                if opts.infer_types {
                    Value::infer(&r[ci])
                } else if r[ci].is_empty() {
                    Value::Null
                } else {
                    Value::Str(r[ci].clone())
                }
            })
            .collect();
        let col = Column::from_values(&vals);
        fields.push(crate::schema::Field::new(&names[ci], col.data_type()));
        columns.push(col);
    }
    Table::new(Schema::new(fields)?, columns)
}

fn needs_quoting(s: &str, sep: char) -> bool {
    s.contains(sep) || s.contains('"') || s.contains('\n') || s.contains('\r')
}

/// Serialise a table to CSV text with a header row.
pub fn write_csv(table: &Table, sep: char) -> String {
    let mut out = String::new();
    let quote = |s: &str| -> String {
        if needs_quoting(s, sep) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let header: Vec<String> = table.schema().names().iter().map(|n| quote(n)).collect();
    out.push_str(&header.join(&sep.to_string()));
    out.push('\n');
    for i in 0..table.num_rows() {
        let row: Vec<String> = table
            .columns()
            .iter()
            .map(|c| quote(&c.value(i).to_string()))
            .collect();
        out.push_str(&row.join(&sep.to_string()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    #[test]
    fn basic_read_with_header_and_inference() {
        let t = read_csv(
            "project,year,stars\npig,2013,4.5\nhive,2014,3\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.schema().names(), vec!["project", "year", "stars"]);
        assert_eq!(
            t.schema().field("year").unwrap().data_type(),
            DataType::Int64
        );
        assert_eq!(
            t.schema().field("stars").unwrap().data_type(),
            DataType::Float64
        );
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn explicit_names_override_header() {
        let opts = CsvOptions {
            column_names: Some(vec!["a".into(), "b".into()]),
            ..Default::default()
        };
        let t = read_csv("x,y\n1,2\n", &opts).unwrap();
        assert_eq!(t.schema().names(), vec!["a", "b"]);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn headerless_with_names() {
        let opts = CsvOptions {
            has_header: false,
            column_names: Some(vec!["a".into(), "b".into()]),
            ..Default::default()
        };
        let t = read_csv("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn quoting_and_escapes() {
        let t = read_csv(
            "text,n\n\"hello, world\",1\n\"say \"\"hi\"\"\",2\n\"multi\nline\",3\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(0, "text").unwrap().to_string(), "hello, world");
        assert_eq!(t.value(1, "text").unwrap().to_string(), "say \"hi\"");
        assert_eq!(t.value(2, "text").unwrap().to_string(), "multi\nline");
    }

    #[test]
    fn custom_separator() {
        let opts = CsvOptions {
            separator: '|',
            ..Default::default()
        };
        let t = read_csv("a|b\n1|2\n", &opts).unwrap();
        assert_eq!(t.schema().names(), vec!["a", "b"]);
    }

    #[test]
    fn empty_cells_are_null() {
        let t = read_csv("a,b\n1,\n,2\n", &CsvOptions::default()).unwrap();
        assert!(t.value(0, "b").unwrap().is_null());
        assert!(t.value(1, "a").unwrap().is_null());
    }

    #[test]
    fn crlf_and_trailing_newlines() {
        let t = read_csv("a,b\r\n1,2\r\n\n", &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn ragged_record_errors_with_line() {
        let err = read_csv("a,b\n1,2,3\n", &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("record 2"));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(read_csv("a\n\"oops\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn roundtrip_via_writer() {
        let src = "text,n\n\"a,b\",1\nplain,2\n";
        let t = read_csv(src, &CsvOptions::default()).unwrap();
        let written = write_csv(&t, ',');
        let t2 = read_csv(&written, &CsvOptions::default()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn no_inference_keeps_strings() {
        let opts = CsvOptions {
            infer_types: false,
            ..Default::default()
        };
        let t = read_csv("a\n42\n", &opts).unwrap();
        assert_eq!(t.schema().field("a").unwrap().data_type(), DataType::Utf8);
    }
}
