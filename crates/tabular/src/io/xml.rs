//! Minimal XML record reader.
//!
//! Maps documents of the common "repeated record element" shape to rows:
//!
//! ```xml
//! <projects>
//!   <project><name>pig</name><year>2013</year></project>
//!   <project><name>hive</name><year>2014</year></project>
//! </projects>
//! ```
//!
//! Each occurrence of `record_element` becomes a row; its child elements'
//! text contents become cells, and attributes on the record element become
//! cells too (attributes win on name clash, matching common export tools).
//! Supports entities (`&amp;` etc.), comments, CDATA, self-closing tags and
//! an XML declaration — enough for the platform's `format: 'xml'` payloads.

use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;

fn err(msg: impl Into<String>) -> TabularError {
    TabularError::Format {
        format: "xml",
        message: msg.into(),
    }
}

fn decode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        if let Some(semi) = rest.find(';') {
            let entity = &rest[1..semi];
            let decoded = match entity {
                "amp" => Some('&'),
                "lt" => Some('<'),
                "gt" => Some('>'),
                "quot" => Some('"'),
                "apos" => Some('\''),
                e if e.starts_with("#x") || e.starts_with("#X") => u32::from_str_radix(&e[2..], 16)
                    .ok()
                    .and_then(char::from_u32),
                e if e.starts_with('#') => e[1..].parse::<u32>().ok().and_then(char::from_u32),
                _ => None,
            };
            match decoded {
                Some(c) => {
                    out.push(c);
                    rest = &rest[semi + 1..];
                }
                None => {
                    out.push('&');
                    rest = &rest[1..];
                }
            }
        } else {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

/// One parsed element: name, attributes, children, text.
#[derive(Debug, Clone)]
struct Element {
    name: String,
    attrs: BTreeMap<String, String>,
    children: Vec<Element>,
    text: String,
}

struct XmlParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_misc(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if trimmed.starts_with("<?") {
                match trimmed.find("?>") {
                    Some(end) => self.pos += end + 2,
                    None => {
                        self.pos = self.src.len();
                        return;
                    }
                }
            } else if trimmed.starts_with("<!--") {
                match trimmed.find("-->") {
                    Some(end) => self.pos += end + 3,
                    None => {
                        self.pos = self.src.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_element(&mut self) -> Result<Element> {
        self.skip_misc();
        if !self.rest().starts_with('<') {
            return Err(err(format!("expected '<' at offset {}", self.pos)));
        }
        self.pos += 1;
        // Tag name.
        let name_end = self
            .rest()
            .find(|c: char| c.is_whitespace() || c == '>' || c == '/')
            .ok_or_else(|| err("unterminated start tag"))?;
        let name = self.rest()[..name_end].to_string();
        if name.is_empty() {
            return Err(err(format!("empty tag name at offset {}", self.pos)));
        }
        self.pos += name_end;

        // Attributes.
        let mut attrs = BTreeMap::new();
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if trimmed.starts_with("/>") {
                self.pos += 2;
                return Ok(Element {
                    name,
                    attrs,
                    children: Vec::new(),
                    text: String::new(),
                });
            }
            if trimmed.starts_with('>') {
                self.pos += 1;
                break;
            }
            // attr="value"
            let eq = trimmed
                .find('=')
                .ok_or_else(|| err("malformed attribute"))?;
            let attr_name = trimmed[..eq].trim().to_string();
            let after = &trimmed[eq + 1..];
            let quote = after
                .chars()
                .next()
                .filter(|c| *c == '"' || *c == '\'')
                .ok_or_else(|| err("attribute value must be quoted"))?;
            let vstart = 1;
            let vend = after[vstart..]
                .find(quote)
                .ok_or_else(|| err("unterminated attribute value"))?;
            let value = decode_entities(&after[vstart..vstart + vend]);
            attrs.insert(attr_name, value);
            self.pos += eq + 1 + vstart + vend + 1;
        }

        // Content: text, children, CDATA, comments, until </name>.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            let rest = self.rest();
            if rest.is_empty() {
                return Err(err(format!("unterminated element <{name}>")));
            }
            if let Some(next_lt) = rest.find('<') {
                text.push_str(&decode_entities(&rest[..next_lt]));
                self.pos += next_lt;
                let rest = self.rest();
                if rest.starts_with("</") {
                    let end = rest.find('>').ok_or_else(|| err("unterminated end tag"))?;
                    let closing = rest[2..end].trim();
                    if closing != name {
                        return Err(err(format!(
                            "mismatched end tag: expected </{name}>, got </{closing}>"
                        )));
                    }
                    self.pos += end + 1;
                    return Ok(Element {
                        name,
                        attrs,
                        children,
                        text: text.trim().to_string(),
                    });
                } else if rest.starts_with("<!--") {
                    let end = rest
                        .find("-->")
                        .ok_or_else(|| err("unterminated comment"))?;
                    self.pos += end + 3;
                } else if rest.starts_with("<![CDATA[") {
                    let end = rest.find("]]>").ok_or_else(|| err("unterminated CDATA"))?;
                    text.push_str(&rest[9..end]);
                    self.pos += end + 3;
                } else {
                    children.push(self.parse_element()?);
                }
            } else {
                return Err(err(format!("unterminated element <{name}>")));
            }
        }
    }
}

/// Parse an XML document and extract rows from every occurrence of
/// `record_element` anywhere under the root.
pub fn read_xml_records(content: &str, record_element: &str) -> Result<Table> {
    let mut parser = XmlParser {
        src: content,
        pos: 0,
    };
    let root = parser.parse_element()?;
    parser.skip_misc();
    if parser.pos != parser.src.len() {
        return Err(err("trailing content after root element"));
    }

    let mut records: Vec<&Element> = Vec::new();
    collect_records(&root, record_element, &mut records);

    // Column order: first-seen order across all records.
    let mut names: Vec<String> = Vec::new();
    let mut rows: Vec<BTreeMap<&str, Value>> = Vec::with_capacity(records.len());
    for rec in &records {
        let mut cells: BTreeMap<&str, Value> = BTreeMap::new();
        for child in &rec.children {
            if !names.iter().any(|n| n == &child.name) {
                names.push(child.name.clone());
            }
            cells.insert(child.name.as_str(), Value::infer(&child.text));
        }
        for (k, v) in &rec.attrs {
            if !names.iter().any(|n| n == k) {
                names.push(k.clone());
            }
            cells.insert(k.as_str(), Value::infer(v));
        }
        rows.push(cells);
    }

    let mut fields = Vec::with_capacity(names.len());
    let mut columns = Vec::with_capacity(names.len());
    for name in &names {
        let vals: Vec<Value> = rows
            .iter()
            .map(|r| r.get(name.as_str()).cloned().unwrap_or(Value::Null))
            .collect();
        let col = Column::from_values(&vals);
        fields.push(Field::new(name, col.data_type()));
        columns.push(col);
    }
    Table::new(Schema::new(fields)?, columns)
}

fn collect_records<'e>(el: &'e Element, name: &str, out: &mut Vec<&'e Element>) {
    if el.name == name {
        out.push(el);
        return; // do not recurse into a record looking for nested records
    }
    for c in &el.children {
        collect_records(c, name, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    const DOC: &str = r#"<?xml version="1.0"?>
<projects>
  <!-- apache projects -->
  <project id="1"><name>pig</name><year>2013</year></project>
  <project id="2"><name>hive &amp; hcat</name><year>2014</year></project>
  <project id="3"><name><![CDATA[a <raw> name]]></name><year>2015</year></project>
</projects>"#;

    #[test]
    fn reads_records_with_children_and_attrs() {
        let t = read_xml_records(DOC, "project").unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.schema().names(), vec!["name", "year", "id"]);
        assert_eq!(t.value(0, "name").unwrap().to_string(), "pig");
        assert_eq!(t.value(1, "name").unwrap().to_string(), "hive & hcat");
        assert_eq!(t.value(2, "name").unwrap().to_string(), "a <raw> name");
        assert_eq!(
            t.schema().field("year").unwrap().data_type(),
            DataType::Int64
        );
        assert_eq!(t.value(0, "id").unwrap(), Value::Int(1));
    }

    #[test]
    fn missing_fields_are_null() {
        let doc = "<r><row><a>1</a><b>2</b></row><row><a>3</a></row></r>";
        let t = read_xml_records(doc, "row").unwrap();
        assert!(t.value(1, "b").unwrap().is_null());
    }

    #[test]
    fn self_closing_and_empty() {
        let doc = "<r><row a='1'/><row a='2'/></r>";
        let t = read_xml_records(doc, "row").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, "a").unwrap(), Value::Int(2));
    }

    #[test]
    fn no_matching_records_gives_empty_table() {
        let t = read_xml_records("<root><x>1</x></root>", "nothing").unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }

    #[test]
    fn numeric_character_entities() {
        let doc = "<r><row><t>caf&#233; &#x263A;</t></row></r>";
        let t = read_xml_records(doc, "row").unwrap();
        assert_eq!(t.value(0, "t").unwrap().to_string(), "café ☺");
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "<a><b></a>",
            "<a>",
            "<a></a><b></b>",
            "<a attr=oops></a>",
            "not xml",
        ] {
            assert!(read_xml_records(bad, "r").is_err(), "{bad}");
        }
    }
}
