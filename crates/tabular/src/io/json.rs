//! JSON parser and the `=>` path-mapping used by data sections.
//!
//! Figure 6 of the paper maps JSON paths in an API payload to columns
//! (`question => title`); figure 18 maps tweet document paths
//! (`location => user.location`). [`PathMapping`] implements that notation
//! over a hand-written recursive-descent JSON parser.

use crate::column::Column;
use crate::error::{Result, TabularError};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; integral values render without `.0`).
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object (order-preserving via BTreeMap for deterministic output).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Navigate a dotted path (`user.location`). Array hops index with
    /// numeric segments (`items.0.name`).
    pub fn path(&self, path: &str) -> Option<&JsonValue> {
        let mut cur = self;
        for seg in path.split('.') {
            match cur {
                JsonValue::Object(map) => cur = map.get(seg)?,
                JsonValue::Array(items) => {
                    let idx: usize = seg.parse().ok()?;
                    cur = items.get(idx)?;
                }
                _ => return None,
            }
        }
        Some(cur)
    }

    /// Convert a scalar JSON value to a tabular [`Value`]; containers
    /// stringify to their JSON text.
    pub fn to_value(&self) -> Value {
        match self {
            JsonValue::Null => Value::Null,
            JsonValue::Bool(b) => Value::Bool(*b),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 9.2e18 {
                    Value::Int(*n as i64)
                } else {
                    Value::Float(*n)
                }
            }
            JsonValue::String(s) => Value::Str(s.clone()),
            other => Value::Str(other.to_string()),
        }
    }

    /// Member access helper.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array items, or empty.
    pub fn items(&self) -> &[JsonValue] {
        match self {
            JsonValue::Array(v) => v.as_slice(),
            _ => &[],
        }
    }

    /// String payload if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 9.2e18 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write!(f, "{}", quote_json(s)),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", quote_json(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// JSON-escape and quote a string.
pub fn quote_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> TabularError {
        TabularError::Format {
            format: "json",
            message: format!("{msg} at offset {}", self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(JsonValue::String(self.parse_string()?)),
            b't' => self.parse_lit("true", JsonValue::Bool(true)),
            b'f' => self.parse_lit("false", JsonValue::Bool(false)),
            b'n' => self.parse_lit("null", JsonValue::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected {lit})")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    let hex2 = std::str::from_utf8(
                                        &self.bytes[self.pos + 2..self.pos + 6],
                                    )
                                    .map_err(|_| self.err("bad surrogate"))?;
                                    let lo = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// Parse a complete JSON document.
pub fn parse_json(text: &str) -> Result<JsonValue> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// The `=>` mapping from a data section: output column name to JSON path.
///
/// ```text
/// ipl_tweets: [
///   postedTime => created_at,
///   body       => text,
///   location   => user.location,
/// ]
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathMapping {
    /// `(column, path)` pairs in declaration order.
    pub entries: Vec<(String, String)>,
}

impl PathMapping {
    /// Build from pairs.
    pub fn new(entries: Vec<(String, String)>) -> Self {
        PathMapping { entries }
    }

    /// Column names in order.
    pub fn columns(&self) -> Vec<&str> {
        self.entries.iter().map(|(c, _)| c.as_str()).collect()
    }
}

/// Read a stream of JSON records into a table using a path mapping.
///
/// Accepts three layouts, matching what real feeds provide:
/// 1. a JSON array of objects;
/// 2. newline-delimited JSON (one object per line — the Gnip tweet shape);
/// 3. an object with an `items` array (the Stack Exchange API shape).
pub fn read_json_records(text: &str, mapping: &PathMapping) -> Result<Table> {
    let trimmed = text.trim();
    let docs: Vec<JsonValue> = if trimmed.starts_with('[') {
        match parse_json(trimmed)? {
            JsonValue::Array(items) => items,
            _ => unreachable!(),
        }
    } else if trimmed.starts_with('{') && !trimmed.contains('\n') {
        let doc = parse_json(trimmed)?;
        match doc.get("items") {
            Some(JsonValue::Array(items)) => items.clone(),
            _ => vec![doc],
        }
    } else {
        // NDJSON. A single '{'-starting multi-line doc with items also
        // lands here if pretty-printed; handle that by trying whole-text
        // parse first.
        if trimmed.starts_with('{') {
            if let Ok(doc) = parse_json(trimmed) {
                match doc.get("items") {
                    Some(JsonValue::Array(items)) => items.clone(),
                    _ => vec![doc],
                }
            } else {
                parse_ndjson(trimmed)?
            }
        } else {
            parse_ndjson(trimmed)?
        }
    };

    let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(docs.len()); mapping.entries.len()];
    for doc in &docs {
        for (ci, (_, path)) in mapping.entries.iter().enumerate() {
            let v = doc.path(path).map(|j| j.to_value()).unwrap_or(Value::Null);
            columns[ci].push(v);
        }
    }
    let mut fields = Vec::with_capacity(mapping.entries.len());
    let mut cols = Vec::with_capacity(mapping.entries.len());
    for ((name, _), vals) in mapping.entries.iter().zip(&columns) {
        let col = Column::from_values(vals);
        fields.push(Field::new(name, col.data_type()));
        cols.push(col);
    }
    Table::new(Schema::new(fields)?, cols)
}

fn parse_ndjson(text: &str) -> Result<Vec<JsonValue>> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(parse_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_containers_escapes() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-2.5e2").unwrap(), JsonValue::Number(-250.0));
        assert_eq!(
            parse_json(r#""a\nbA""#).unwrap(),
            JsonValue::String("a\nbA".into())
        );
        let v = parse_json(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.path("a.1.b").unwrap().as_str(), Some("x"));
        assert_eq!(v.path("c"), Some(&JsonValue::Null));
        assert_eq!(v.path("a.5"), None);
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse_json(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn display_roundtrips() {
        let src = r#"{"b":[1,2.5,"x"],"a":{"nested":true}}"#;
        let v = parse_json(src).unwrap();
        let printed = v.to_string();
        assert_eq!(parse_json(&printed).unwrap(), v);
    }

    #[test]
    fn tweet_path_mapping() {
        // The figure-18 shape: map tweet document paths to columns.
        let mapping = PathMapping::new(vec![
            ("postedTime".into(), "created_at".into()),
            ("body".into(), "text".into()),
            ("location".into(), "user.location".into()),
        ]);
        let ndjson = concat!(
            r#"{"created_at": "Thu May 02 19:30:05 +0530 2013", "text": "six!", "user": {"location": "Chennai"}}"#,
            "\n",
            r#"{"created_at": "Thu May 02 19:31:00 +0530 2013", "text": "four", "user": {}}"#,
            "\n"
        );
        let t = read_json_records(ndjson, &mapping).unwrap();
        assert_eq!(t.schema().names(), vec!["postedTime", "body", "location"]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, "location").unwrap().to_string(), "Chennai");
        assert!(
            t.value(1, "location").unwrap().is_null(),
            "missing path is null"
        );
    }

    #[test]
    fn array_and_items_layouts() {
        let mapping = PathMapping::new(vec![("q".into(), "title".into())]);
        let t = read_json_records(r#"[{"title": "a"}, {"title": "b"}]"#, &mapping).unwrap();
        assert_eq!(t.num_rows(), 2);
        // Stack Exchange API shape (figure 6).
        let t = read_json_records(
            r#"{"items": [{"title": "q1"}, {"title": "q2"}, {"title": "q3"}]}"#,
            &mapping,
        )
        .unwrap();
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn numbers_become_ints_when_integral() {
        let mapping = PathMapping::new(vec![("n".into(), "n".into())]);
        let t = read_json_records(r#"[{"n": 3}, {"n": 4}]"#, &mapping).unwrap();
        assert_eq!(
            t.schema().field("n").unwrap().data_type(),
            crate::datatype::DataType::Int64
        );
    }

    #[test]
    fn containers_stringify() {
        let mapping = PathMapping::new(vec![("tags".into(), "tags".into())]);
        let t = read_json_records(r#"[{"tags": ["a", "b"]}]"#, &mapping).unwrap();
        assert_eq!(t.value(0, "tags").unwrap().to_string(), r#"["a","b"]"#);
    }
}
