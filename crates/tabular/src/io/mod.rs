//! Payload format readers and writers.
//!
//! The platform "recognizes popular data payload formats such as CSV, AVRO,
//! XML and JSON documents" (§3.2). Each submodule implements one format
//! from scratch:
//!
//! * [`csv`] — RFC-4180-style CSV with quoting, configurable separator.
//! * [`json`] — a full JSON parser plus the `=>` path-mapping used by data
//!   sections (`location => user.location`).
//! * [`xml`] — a small well-formed-subset XML reader mapping repeated
//!   record elements to rows.
//! * [`record`] — a compact length-prefixed binary row format standing in
//!   for Avro (schema header + typed cells), with full round-tripping.

pub mod csv;
pub mod json;
pub mod record;
pub mod xml;

pub use csv::{read_csv, write_csv, CsvOptions};
pub use json::{parse_json, read_json_records, JsonValue, PathMapping};
pub use record::{read_records, write_records};
pub use xml::read_xml_records;
