//! # shareinsights-sync
//!
//! Poison-free [`Mutex`] and [`RwLock`] wrappers over `std::sync`,
//! API-compatible with the subset of `parking_lot` this workspace uses
//! (`lock`/`read`/`write` returning guards directly, `into_inner` without a
//! `Result`). The build environment has no network access to crates.io, so
//! the workspace maps the `parking_lot` dependency name onto this crate;
//! a panic while holding a lock here simply clears the poison flag instead
//! of propagating it, which matches parking_lot's semantics closely enough
//! for our executors and registries.

use std::sync::PoisonError;

/// Mutex guard type (std's; poison already recovered by [`Mutex::lock`]).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A readers-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
        let mut m = Mutex::new(5);
        *m.get_mut() = 6;
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);

        let l = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
    }
}
