//! Shared bench fixtures: workload generators and pipeline builders used
//! across the per-figure bench targets.

use shareinsights_connectors::Catalog;
use shareinsights_engine::compile::{compile, CompileEnv, CompiledPipeline};
use shareinsights_engine::exec::ExecContext;
use shareinsights_engine::optimizer::OptimizerConfig;
use shareinsights_engine::TaskRegistry;
use shareinsights_flowfile::parse_flow_file;
use shareinsights_tabular::{Row, Table};

/// A synthetic fact table: `key` in [0, cardinality), `v` numeric, `tag`
/// short text.
pub fn fact_table(rows: usize, cardinality: usize, seed: u64) -> Table {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let out: Vec<Row> = (0..rows)
        .map(|_| {
            let k = rng.random_range(0..cardinality);
            Row(vec![
                format!("k{k}").into(),
                shareinsights_tabular::Value::Int(rng.random_range(0..1000)),
                format!("tag{}", k % 17).into(),
            ])
        })
        .collect();
    Table::from_rows(&["key", "v", "tag"], &out).expect("rectangular")
}

/// Compile a flow-file source with the given optimizer configuration.
pub fn compile_src(src: &str, optimizer: OptimizerConfig) -> CompiledPipeline {
    let ff = parse_flow_file("bench", src).expect("valid flow file");
    let reg = TaskRegistry::new();
    let mut env = CompileEnv::bare(&reg);
    env.optimizer = optimizer;
    compile(&ff, &env).expect("compiles")
}

/// An execution context with one injected table named `data`.
pub fn ctx_with(table: Table) -> ExecContext {
    ExecContext::new(Catalog::new()).with_table("data", table)
}

/// The standard filter→groupby pipeline used by several benches.
pub const FILTER_GROUP_SRC: &str = r#"
D:
  data: [key, v, tag]
T:
  keep:
    type: filter_by
    filter_expression: v > 500
  agg:
    type: groupby
    groupby: [key]
    aggregates:
    - operator: sum
      apply_on: v
      out_field: total
F:
  +D.out: D.data | T.keep | T.agg
"#;

/// A join pipeline over two injected tables `l` and `r`.
pub const JOIN_SRC: &str = r#"
D:
  l: [key, v, tag]
  r: [key, w, tag2]
T:
  j:
    type: join
    left: l by key
    right: r by key
    join_condition: inner
    project:
      l_key: key
      l_v: v
      r_w: w
F:
  +D.out: (D.l, D.r) | T.j
"#;

/// Build a flow file with `n` chained flows for the compile benches.
pub fn wide_flow_file(n_flows: usize) -> String {
    let mut src = String::from("D:\n  src0: [a, b, c]\nT:\n");
    for i in 0..n_flows {
        src.push_str(&format!(
            "  t{i}:\n    type: filter_by\n    filter_expression: b > {i}\n"
        ));
    }
    src.push_str("F:\n");
    for i in 0..n_flows {
        let input = if i == 0 {
            "src0".to_string()
        } else {
            format!("sink{}", i - 1)
        };
        src.push_str(&format!("  +D.sink{i}: D.{input} | T.t{i}\n"));
    }
    src
}
