//! PERF-CUBE: §4.1's two execution contexts — widget interaction through
//! the in-memory data cube vs re-running the batch pipeline on every
//! selection change.
//!
//! Expected shape: a cold cube evaluation costs roughly one in-memory
//! filter+groupby; a cached repeat is near-free; re-running the batch
//! pipeline (what a platform without the interactive context would do) is
//! one-plus orders of magnitude slower — the architectural reason the
//! paper compiles widget flows to a separate runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shareinsights_bench::{compile_src, ctx_with, fact_table, FILTER_GROUP_SRC};
use shareinsights_engine::exec::Executor;
use shareinsights_engine::optimizer::OptimizerConfig;
use shareinsights_engine::selection::{Selection, StaticSelections};
use shareinsights_engine::task::{FilterSource, NamedTask, TaskKind};
use shareinsights_tabular::ops::{AggregateSpec, GroupBy};
use shareinsights_tabular::agg::AggKind;
use shareinsights_widgets::DataCube;
use std::hint::black_box;

fn interaction_tasks() -> Vec<NamedTask> {
    vec![
        NamedTask {
            name: "filter_by_key".into(),
            kind: TaskKind::FilterBySource {
                columns: vec!["key".into()],
                source: FilterSource::Widget("list".into()),
                source_columns: vec!["text".into()],
            },
        },
        NamedTask {
            name: "agg".into(),
            kind: TaskKind::GroupBy {
                builtin: GroupBy::with_aggregates(
                    &["tag"],
                    vec![AggregateSpec::new(AggKind::Sum, "v", "total")],
                ),
                custom: vec![],
            },
        },
    ]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_interaction");
    for &rows in &[10_000usize, 100_000] {
        let endpoint = fact_table(rows, 200, 9);

        // Interactive context: the data cube.
        let cube = DataCube::new(endpoint.clone());
        let selections = StaticSelections::new();
        let tasks = interaction_tasks();
        let mut tick = 0u64;
        group.bench_with_input(BenchmarkId::new("cube_cold", rows), &rows, |b, _| {
            b.iter(|| {
                tick += 1;
                // Globally unique selection every iteration: guaranteed
                // cache miss, so this measures a full filter+groupby scan.
                selections.set(
                    "list",
                    "text",
                    Selection::Values(vec![format!("k{}", tick % 200).into(), format!("u{tick}").into()]),
                );
                black_box(cube.eval("w", &tasks, &selections).unwrap().num_rows())
            })
        });
        selections.set("list", "text", Selection::Values(vec!["k1".into()]));
        cube.eval("w", &tasks, &selections).unwrap();
        group.bench_with_input(BenchmarkId::new("cube_cached", rows), &rows, |b, _| {
            b.iter(|| black_box(cube.eval("w", &tasks, &selections).unwrap().num_rows()))
        });

        // The alternative: re-run the batch pipeline per interaction.
        let pipeline = compile_src(FILTER_GROUP_SRC, OptimizerConfig::default());
        let ctx = ctx_with(endpoint);
        let exec = Executor::default();
        group.bench_with_input(BenchmarkId::new("batch_rerun", rows), &rows, |b, _| {
            b.iter(|| black_box(exec.execute(&pipeline, &ctx).unwrap().stats.total_micros))
        });
    }
    group.finish();

    eprintln!("\nPERF-CUBE: cube cache stats are printed by the dashboards; see also");
    eprintln!("the ipl_flow_group example, whose interactions all route through the cube.\n");
}

criterion_group!(benches, bench);
criterion_main!(benches);
