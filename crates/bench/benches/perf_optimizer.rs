//! PERF-OPT: the §6 "future directions" optimizations, implemented and
//! ablated pass by pass: dead-sink elimination, filter reordering and
//! projection pruning.
//!
//! Expected shape: each pass helps the workload designed to expose it —
//! dead-sink elimination removes whole flows, filter hoisting shrinks rows
//! before expensive maps, projection pruning shrinks bytes before wide
//! group-bys — and the fully optimized pipeline moves fewer bytes to the
//! "client" (endpoint), the metric §6 names.

use criterion::{criterion_group, criterion_main, Criterion};
use shareinsights_bench::{compile_src, ctx_with, fact_table};
use shareinsights_engine::exec::Executor;
use shareinsights_engine::optimizer::OptimizerConfig;
use std::hint::black_box;

/// A workload with: a dead flow, a filter placed after a date map, and a
/// wide source feeding a narrow group-by.
const SRC: &str = r#"
D:
  data: [key, v, tag]
T:
  to_date:
    type: map
    operator: upperify
    transform: tag
    output: tag_big
  keep:
    type: filter_by
    filter_expression: v > 900
  agg:
    type: groupby
    groupby: [key]
    aggregates:
    - operator: sum
      apply_on: v
      out_field: total
  agg_dead:
    type: groupby
    groupby: [tag]
F:
  +D.out: D.data | T.keep | T.agg
  D.dead_end: D.data | T.agg_dead
"#;

fn bench(c: &mut Criterion) {
    // `upperify` is unused by the surviving flow but keeps SRC realistic if
    // edited; register a no-op operator so compilation succeeds either way.
    let table = fact_table(300_000, 400, 7);

    let optimized = compile_src(SRC, OptimizerConfig::default());
    let unoptimized = compile_src(SRC, OptimizerConfig::disabled());
    eprintln!(
        "\nPERF-OPT flows executed: optimized {} vs unoptimized {} (dead-sink elimination)",
        optimized.flows.len(),
        unoptimized.flows.len()
    );

    let ctx = ctx_with(table);
    let exec = Executor::default();
    let opt_result = exec.execute(&optimized, &ctx).unwrap();
    let unopt_result = exec.execute(&unoptimized, &ctx).unwrap();
    let total_rows = |r: &shareinsights_engine::exec::ExecResult| -> usize {
        r.stats.rows_out.values().sum()
    };
    let rows_touched = |r: &shareinsights_engine::exec::ExecResult| -> usize {
        r.stats.task_runs.iter().map(|t| t.rows_in).sum()
    };
    eprintln!(
        "PERF-OPT rows materialised across sinks: optimized {} vs unoptimized {} (dead flow skipped)",
        total_rows(&opt_result),
        total_rows(&unopt_result)
    );
    eprintln!(
        "PERF-OPT rows flowing through tasks: optimized {} vs unoptimized {} (filter hoisting + pruning)",
        rows_touched(&opt_result),
        rows_touched(&unopt_result)
    );
    eprintln!(
        "PERF-OPT endpoint bytes shipped to the client (§6 metric): {} in both — optimization never changes observable output\n",
        opt_result.stats.endpoint_bytes
    );
    assert_eq!(opt_result.stats.endpoint_bytes, unopt_result.stats.endpoint_bytes);

    let mut group = c.benchmark_group("perf_optimizer");
    group.bench_function("all_passes", |b| {
        b.iter(|| black_box(exec.execute(&optimized, &ctx).unwrap().stats.total_micros))
    });
    group.bench_function("disabled", |b| {
        b.iter(|| black_box(exec.execute(&unoptimized, &ctx).unwrap().stats.total_micros))
    });
    // Per-pass ablation.
    for (name, cfg) in [
        (
            "only_dead_sink",
            OptimizerConfig {
                dead_sink_elimination: true,
                filter_reorder: false,
                projection_pruning: false,
            },
        ),
        (
            "only_filter_reorder",
            OptimizerConfig {
                dead_sink_elimination: false,
                filter_reorder: true,
                projection_pruning: false,
            },
        ),
        (
            "only_projection",
            OptimizerConfig {
                dead_sink_elimination: false,
                filter_reorder: false,
                projection_pruning: true,
            },
        ),
    ] {
        let pipeline = compile_src(SRC, cfg);
        group.bench_function(name, |b| {
            b.iter(|| black_box(exec.execute(&pipeline, &ctx).unwrap().stats.total_micros))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
