//! OBS-4: "data cleaning is a non-trivial task … the real data provided
//! forced teams to define more elaborate pipelines to cleanse the data"
//! (§5.2.2).
//!
//! Measures the same analysis pipeline over clean vs corrupted data, and
//! the corrupted data with the extra cleaning stages a team must add
//! (dedupe + null filter + date renormalisation). Expected shape: the
//! dirty pipeline without cleaning produces *more* groups (case/format
//! fragmentation) — wrong results, not just slower ones — and the cleaning
//! stages recover the clean-data group count at modest extra cost.

use criterion::{criterion_group, criterion_main, Criterion};
use shareinsights_connectors::Catalog;
use shareinsights_datagen::{dirty, tickets};
use shareinsights_engine::compile::{compile, CompileEnv};
use shareinsights_engine::exec::{ExecContext, Executor};
use shareinsights_engine::TaskRegistry;
use shareinsights_flowfile::parse_flow_file;
use std::hint::black_box;

const PLAIN: &str = r#"
D:
  tickets: [ticket_id, opened, closed, category, priority, description, resolution_days]
T:
  by_category:
    type: groupby
    groupby: [category]
    aggregates:
    - operator: avg
      apply_on: resolution_days
      out_field: avg_days
F:
  +D.stats: D.tickets | T.by_category
"#;

const CLEANING: &str = r#"
D:
  tickets: [ticket_id, opened, closed, category, priority, description, resolution_days]
T:
  dedupe:
    type: distinct
    columns: [ticket_id]
  drop_broken:
    type: filter_by
    filter_expression: category != null and resolution_days != null
  normalize_category:
    type: map
    operator: lower
    transform: category
    output: category
  by_category:
    type: groupby
    groupby: [category]
    aggregates:
    - operator: avg
      apply_on: resolution_days
      out_field: avg_days
F:
  +D.stats: D.tickets | T.dedupe | T.drop_broken | T.normalize_category | T.by_category
"#;

struct LowerOp;
impl shareinsights_engine::ext::ScalarOperator for LowerOp {
    fn name(&self) -> &str {
        "lower"
    }
    fn apply(&self, v: &shareinsights_tabular::Value) -> shareinsights_tabular::Value {
        match v.as_str() {
            Some(s) => shareinsights_tabular::Value::Str(s.trim().to_lowercase()),
            None => v.clone(),
        }
    }
}

fn bench(c: &mut Criterion) {
    let clean = tickets::generate(&tickets::TicketsConfig {
        tickets: 5_000,
        ..Default::default()
    });
    let dirty_table = dirty::corrupt(&clean, &dirty::DirtyConfig::default());
    let quality = dirty::assess(&dirty_table);
    eprintln!("\nOBS-4 data quality of the corrupted set: {quality:?}");

    let reg = TaskRegistry::new();
    reg.register_operator(std::sync::Arc::new(LowerOp));
    let env = CompileEnv::bare(&reg);
    let plain = compile(&parse_flow_file("b", PLAIN).unwrap(), &env).unwrap();
    let cleaning = compile(&parse_flow_file("b", CLEANING).unwrap(), &env).unwrap();

    let exec = Executor::default();
    let clean_ctx = ExecContext::new(Catalog::new()).with_table("tickets", clean.clone());
    let dirty_ctx = ExecContext::new(Catalog::new()).with_table("tickets", dirty_table.clone());

    let groups = |p, ctx: &ExecContext| {
        exec.execute(p, ctx).unwrap().table("stats").unwrap().num_rows()
    };
    let g_clean = groups(&plain, &clean_ctx);
    let g_dirty = groups(&plain, &dirty_ctx);
    let g_cleaned = groups(&cleaning, &dirty_ctx);
    eprintln!(
        "OBS-4 category groups: clean data {g_clean}, dirty data without cleaning {g_dirty} \
         (fragmented!), dirty data with 3 cleaning tasks {g_cleaned}"
    );
    eprintln!(
        "OBS-4 pipeline length: 1 task on clean data -> 4 tasks on real data\n"
    );
    assert!(g_dirty > g_clean, "corruption fragments groups");
    assert_eq!(g_cleaned, g_clean, "cleaning recovers the truth");

    let mut group = c.benchmark_group("obs4_dirty_data");
    group.bench_function("clean_data_short_pipeline", |b| {
        b.iter(|| black_box(groups(&plain, &clean_ctx)))
    });
    group.bench_function("dirty_data_short_pipeline_wrong", |b| {
        b.iter(|| black_box(groups(&plain, &dirty_ctx)))
    });
    group.bench_function("dirty_data_cleaning_pipeline", |b| {
        b.iter(|| black_box(groups(&cleaning, &dirty_ctx)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
