//! FIG-35: regenerate "Fork to go" — each team's flow-file size in bytes at
//! competition start (every team forks a help/sample dashboard).
//!
//! Expected shape: all starting sizes are non-trivially large (nobody
//! starts from an empty file), clustered by which sample was forked.

use criterion::{criterion_group, criterion_main, Criterion};
use shareinsights_collab::Repository;
use shareinsights_hackathon::{dataset_roster, figures, run_hackathon, HackathonConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let outcome = run_hackathon(&HackathonConfig {
        teams: 52,
        ..Default::default()
    });
    let figs = figures::extract(&outcome);
    eprintln!("\n{}", figs.fig35_text());
    let min = figs.fig35.iter().map(|b| b.size_bytes).min().unwrap_or(0);
    let max = figs.fig35.iter().map(|b| b.size_bytes).max().unwrap_or(0);
    eprintln!("fig35 summary: starting sizes {min}..{max} bytes across 7 samples\n");

    // Also time the fork operation itself (the mechanism behind the figure).
    let sample = dataset_roster()[0].sample_flow();
    let repo = Repository::new("help");
    repo.commit("main", "organizers", "sample", &sample);
    let mut i = 0u64;
    c.bench_function("fig35/fork_dashboard", |b| {
        b.iter(|| {
            i += 1;
            black_box(repo.fork(&format!("team_{i}"), "main", "bench").unwrap())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
