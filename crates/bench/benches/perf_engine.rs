//! PERF-ENGINE: the batch-backend substitution ablation — columnar
//! parallel executor vs the naive row-at-a-time baseline, across operator
//! kernels and data sizes.
//!
//! Expected shape: the columnar engine wins everywhere except trivially
//! small inputs; the naive nested-loop join degrades quadratically while
//! the hash join stays near-linear, so the gap explodes with size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shareinsights_bench::{compile_src, ctx_with, fact_table, FILTER_GROUP_SRC, JOIN_SRC};
use shareinsights_connectors::Catalog;
use shareinsights_engine::baseline::execute_naive;
use shareinsights_engine::exec::{ExecContext, Executor};
use shareinsights_engine::optimizer::OptimizerConfig;
use std::hint::black_box;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let pipeline = compile_src(FILTER_GROUP_SRC, OptimizerConfig::default());
    let exec = Executor::default();

    // Filter + group-by sweep.
    let mut group = c.benchmark_group("perf_engine/filter_groupby");
    for &rows in &[10_000usize, 100_000, 400_000] {
        let ctx = ctx_with(fact_table(rows, 500, 3));
        group.bench_with_input(BenchmarkId::new("columnar", rows), &rows, |b, _| {
            b.iter(|| black_box(exec.execute(&pipeline, &ctx).unwrap().stats.source_rows))
        });
        group.bench_with_input(BenchmarkId::new("naive_rows", rows), &rows, |b, _| {
            b.iter(|| black_box(execute_naive(&pipeline, &ctx).unwrap().stats.source_rows))
        });
    }
    group.finish();

    // Join sweep: the naive nested loop is only feasible at small sizes —
    // that cliff *is* the result.
    let join_pipeline = compile_src(JOIN_SRC, OptimizerConfig::default());
    let join_ctx = |rows: usize| {
        let l = fact_table(rows, rows / 10 + 1, 4);
        let mut r = fact_table(rows, rows / 10 + 1, 5);
        // Rename columns for the right side.
        r = r.project(&["key", "v", "tag"]).unwrap();
        let r = shareinsights_tabular::Table::from_rows(
            &["key", "w", "tag2"],
            &r.to_rows(),
        )
        .unwrap();
        ExecContext::new(Catalog::new())
            .with_table("l", l)
            .with_table("r", r)
    };
    let mut group = c.benchmark_group("perf_engine/join");
    group.sample_size(10);
    for &rows in &[500usize, 2_000, 8_000] {
        let ctx = join_ctx(rows);
        group.bench_with_input(BenchmarkId::new("hash_join", rows), &rows, |b, _| {
            b.iter(|| black_box(exec.execute(&join_pipeline, &ctx).unwrap().stats.total_micros))
        });
        if rows <= 2_000 {
            group.bench_with_input(BenchmarkId::new("nested_loop", rows), &rows, |b, _| {
                b.iter(|| black_box(execute_naive(&join_pipeline, &ctx).unwrap().stats.total_micros))
            });
        }
    }
    group.finish();

    // One-shot crossover report for EXPERIMENTS.md.
    eprintln!("\nPERF-ENGINE crossover report (single runs):");
    for rows in [500usize, 1_000, 2_000, 4_000] {
        let ctx = join_ctx(rows);
        let t0 = Instant::now();
        exec.execute(&join_pipeline, &ctx).unwrap();
        let hash = t0.elapsed();
        let t0 = Instant::now();
        execute_naive(&join_pipeline, &ctx).unwrap();
        let naive = t0.elapsed();
        eprintln!(
            "  join {rows:>5} rows/side: hash {:>9.1?}  nested-loop {:>9.1?}  ratio {:>6.1}x",
            hash,
            naive,
            naive.as_secs_f64() / hash.as_secs_f64().max(1e-9)
        );
    }
    eprintln!();
}

criterion_group!(benches, bench);
criterion_main!(benches);
