//! FIG-31: regenerate "Platform usage" — popularity ranking of operators
//! and widgets across the simulated hackathon's executed flow files.
//!
//! The paper's figure 31 is a bar dashboard of the most-used operators and
//! widgets during Race2Insights. Expected shape: group/filter-style
//! operators and the common chart widgets dominate.

use criterion::{criterion_group, criterion_main, Criterion};
use shareinsights_hackathon::{figures, run_hackathon, HackathonConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // The simulation itself is the expensive fixture (every practice and
    // competition run executes on the real platform); build it once.
    let outcome = run_hackathon(&HackathonConfig {
        teams: 52, // the paper's roster
        ..Default::default()
    });

    // Emit the regenerated figure so the bench log doubles as the
    // EXPERIMENTS.md record.
    let figs = figures::extract(&outcome);
    eprintln!("\n{}", figs.fig31_text());

    c.bench_function("fig31/extract_usage_from_telemetry", |b| {
        b.iter(|| {
            let usage = outcome.platform.log().usage();
            black_box(usage.top_operators().len() + usage.top_widgets().len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
