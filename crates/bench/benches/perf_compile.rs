//! PERF-COMPILE: §4.1 flow-file compilation services — lex + parse + DAG
//! construction + schema propagation + optimization, across flow-file
//! sizes.
//!
//! Expected shape: compilation stays in the low-millisecond range even for
//! flow files an order of magnitude larger than the paper's listings,
//! keeping the save→run loop interactive (the property §4.5.3 point 4
//! depends on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shareinsights_bench::wide_flow_file;
use shareinsights_engine::compile::{compile, CompileEnv};
use shareinsights_engine::TaskRegistry;
use shareinsights_flowfile::parse_flow_file;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut parse_group = c.benchmark_group("perf_compile/parse");
    for &flows in &[10usize, 50, 200, 500] {
        let src = wide_flow_file(flows);
        parse_group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            b.iter(|| black_box(parse_flow_file("bench", &src).unwrap().flows.len()))
        });
    }
    parse_group.finish();

    let mut compile_group = c.benchmark_group("perf_compile/full_pipeline");
    for &flows in &[10usize, 50, 200, 500] {
        let src = wide_flow_file(flows);
        let ff = parse_flow_file("bench", &src).unwrap();
        let reg = TaskRegistry::new();
        compile_group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            b.iter(|| {
                let env = CompileEnv::bare(&reg);
                black_box(compile(&ff, &env).unwrap().flows.len())
            })
        });
    }
    compile_group.finish();

    // Report bytes-per-flow for context.
    let src = wide_flow_file(200);
    eprintln!(
        "\nPERF-COMPILE fixture: 200-flow file is {} bytes ({} lines)\n",
        src.len(),
        src.lines().count()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
