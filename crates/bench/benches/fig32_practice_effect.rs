//! FIG-32: regenerate "Does practice matter?" — per-team practice runs vs
//! competition runs, with finalists/winners annotated.
//!
//! Expected shape (matching the paper's observation): the finalist and
//! winner markers cluster toward the high-practice end of the scatter.

use criterion::{criterion_group, criterion_main, Criterion};
use shareinsights_hackathon::{figures, run_hackathon, HackathonConfig};
use std::hint::black_box;

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>().sqrt();
    let sy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum::<f64>().sqrt();
    cov / (sx * sy)
}

fn bench(c: &mut Criterion) {
    let outcome = run_hackathon(&HackathonConfig {
        teams: 52,
        ..Default::default()
    });
    let figs = figures::extract(&outcome);
    eprintln!("\n{}", figs.fig32_text());

    let xs: Vec<f64> = outcome.teams.iter().map(|t| t.practice_runs as f64).collect();
    let ys: Vec<f64> = outcome.teams.iter().map(|t| t.score as f64).collect();
    eprintln!(
        "fig32 summary: corr(practice, score) = {:.2}; finalists {:?}; winners {:?}\n",
        pearson(&xs, &ys),
        outcome.finalists(),
        outcome.winners()
    );

    c.bench_function("fig32/extract_scatter", |b| {
        b.iter(|| black_box(figures::extract(&outcome).fig32.len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
