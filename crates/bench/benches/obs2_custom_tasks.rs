//! OBS-2: "The custom task looks no different from a platform provided task
//! and was used by other team members as a black box" (§5.2.2).
//!
//! Measures the dispatch overhead of extension tasks relative to built-ins:
//! the same per-row transformation implemented as (a) the built-in `map`
//! operator, (b) a registered custom scalar operator, and (c) a registered
//! whole-table custom task. Expected shape: all three are within the same
//! order of magnitude — extensibility costs dynamic dispatch, not an
//! architecture change.

use criterion::{criterion_group, criterion_main, Criterion};
use shareinsights_bench::{ctx_with, fact_table};
use shareinsights_engine::compile::{compile, CompileEnv};
use shareinsights_engine::exec::Executor;
use shareinsights_engine::ext::{FnTask, ScalarOperator};
use shareinsights_engine::TaskRegistry;
use shareinsights_flowfile::parse_flow_file;
use shareinsights_tabular::{Column, Schema, Table, Value};
use std::hint::black_box;
use std::sync::Arc;

const BUILTIN: &str = r#"
D:
  data: [key, v, tag]
T:
  words:
    type: map
    operator: extract_words
    transform: tag
    output: word
F:
  +D.out: D.data | T.words
"#;

const CUSTOM_OP: &str = r#"
D:
  data: [key, v, tag]
T:
  upper:
    type: map
    operator: upper_custom
    transform: tag
    output: word
F:
  +D.out: D.data | T.upper
"#;

const CUSTOM_TASK: &str = r#"
D:
  data: [key, v, tag]
T:
  upper_table:
    type: upper_whole_table
F:
  +D.out: D.data | T.upper_table
"#;

struct UpperOp;
impl ScalarOperator for UpperOp {
    fn name(&self) -> &str {
        "upper_custom"
    }
    fn apply(&self, v: &Value) -> Value {
        match v.as_str() {
            Some(s) => Value::Str(s.to_uppercase()),
            None => v.clone(),
        }
    }
}

fn bench(c: &mut Criterion) {
    let reg = TaskRegistry::new();
    reg.register_operator(Arc::new(UpperOp));
    reg.register_task(Arc::new(FnTask::new(
        "upper_whole_table",
        |s: &Schema| {
            s.with_field(shareinsights_tabular::Field::new(
                "word",
                shareinsights_tabular::DataType::Utf8,
            ))
            .map_err(|e| shareinsights_engine::EngineError::Internal(e.to_string()))
        },
        |t: &Table| {
            let col = t
                .column("tag")
                .map_err(|e| shareinsights_engine::ext::exec_err("upper_whole_table", e))?;
            let vals: Vec<Value> = (0..t.num_rows())
                .map(|i| match col.str_at(i) {
                    Some(s) => Value::Str(s.to_uppercase()),
                    None => Value::Null,
                })
                .collect();
            t.with_column("word", Column::from_values(&vals))
                .map_err(|e| shareinsights_engine::ext::exec_err("upper_whole_table", e))
        },
    )));

    let env = CompileEnv::bare(&reg);
    let builtin = compile(&parse_flow_file("b", BUILTIN).unwrap(), &env).unwrap();
    let custom_op = compile(&parse_flow_file("b", CUSTOM_OP).unwrap(), &env).unwrap();
    let custom_task = compile(&parse_flow_file("b", CUSTOM_TASK).unwrap(), &env).unwrap();

    let ctx = ctx_with(fact_table(50_000, 200, 2));
    let exec = Executor::default();

    eprintln!("\nOBS-2: identical flow-file syntax for built-in and extension tasks;");
    eprintln!("the three variants below differ only in the task's registration origin.\n");

    let mut group = c.benchmark_group("obs2_custom_tasks");
    group.bench_function("builtin_map_operator", |b| {
        b.iter(|| black_box(exec.execute(&builtin, &ctx).unwrap().stats.source_rows))
    });
    group.bench_function("custom_scalar_operator", |b| {
        b.iter(|| black_box(exec.execute(&custom_op, &ctx).unwrap().stats.source_rows))
    });
    group.bench_function("custom_whole_table_task", |b| {
        b.iter(|| black_box(exec.execute(&custom_task, &ctx).unwrap().stats.source_rows))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
