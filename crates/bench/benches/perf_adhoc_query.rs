//! PERF-ADHOC: §4.4's ad-hoc query API
//! (`/ds/<dataset>/groupby/<col>/<agg>/<col>`) — latency of the URL query
//! language across endpoint sizes, including parse cost and paging.
//!
//! Expected shape: sub-millisecond at dashboard-endpoint sizes (endpoints
//! hold aggregated data, so tens of thousands of rows is already large),
//! scaling linearly with rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shareinsights_bench::fact_table;
use shareinsights_server::query::{parse_ops, run_query};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let segments = [
        "filter", "tag", "tag3", "groupby", "key", "sum", "v", "sort", "sum_v", "desc", "limit",
        "10",
    ];

    c.bench_function("perf_adhoc/parse_url_ops", |b| {
        b.iter(|| black_box(parse_ops(&segments).unwrap().len()))
    });

    let mut group = c.benchmark_group("perf_adhoc/run");
    for &rows in &[1_000usize, 10_000, 100_000] {
        let table = fact_table(rows, 300, 11);
        let ops = parse_ops(&segments).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(run_query(&table, &ops).unwrap().num_rows()))
        });
    }
    group.finish();

    // End-to-end through the router (includes JSON serialisation).
    use shareinsights_core::Platform;
    use shareinsights_server::{Request, Server};
    let platform = Platform::new();
    platform.upload_data(
        "bench",
        "data.csv",
        shareinsights_tabular::io::csv::write_csv(&fact_table(20_000, 300, 12), ','),
    );
    platform
        .save_flow(
            "bench",
            "D:\n  data: [key, v, tag]\nD.data:\n  source: 'data.csv'\n  format: csv\nT:\n  agg:\n    type: groupby\n    groupby: [key, tag]\n    aggregates:\n    - operator: sum\n      apply_on: v\n      out_field: v\nF:\n  +D.ep: D.data | T.agg\n",
        )
        .unwrap();
    platform.run_dashboard("bench").unwrap();
    let server = Server::new(platform);
    let url = "/bench/ds/ep/groupby/tag/sum/v/sort/sum_v/desc/limit/5";
    assert!(server.handle(&Request::get(url)).is_ok());
    c.bench_function("perf_adhoc/full_rest_roundtrip", |b| {
        b.iter(|| black_box(server.handle(&Request::get(url)).body.len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
