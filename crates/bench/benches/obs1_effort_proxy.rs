//! OBS-1: "Teams produced extremely rich dashboards in six hours. Prior to
//! building this platform, equivalent dashboards took four to six weeks"
//! (§5.2.2 observation 1).
//!
//! Development time cannot be benchmarked directly, so this target measures
//! the proxies that drive it: artifact size (a declarative flow file vs an
//! equivalent imperative program written against the engine's raw APIs) and
//! the full save→validate→compile→run turnaround, which bounds the
//! edit-run iteration loop the paper argues must be fast.

use criterion::{criterion_group, criterion_main, Criterion};
use shareinsights_bench::fact_table;
use shareinsights_core::Platform;
use shareinsights_tabular::io::csv::write_csv;
use std::hint::black_box;

/// The declarative artifact a flow-file author writes.
const FLOW: &str = r#"
D:
  data: [key, v, tag]
D.data:
  source: 'data.csv'
  format: csv
T:
  keep:
    type: filter_by
    filter_expression: v > 500
  agg:
    type: groupby
    groupby: [key]
    aggregates:
    - operator: sum
      apply_on: v
      out_field: total
F:
  +D.out: D.data | T.keep | T.agg
W:
  grid:
    type: DataGrid
    source: D.out
L:
  rows:
  - [span12: W.grid]
"#;

/// The equivalent imperative program (what a "traditional stack" engineer
/// writes by hand against the raw engine APIs — decoding, filtering,
/// aggregating, rendering and serving glued together manually). Kept as a
/// string so the bench can compare artifact sizes; it is also compiled as
/// real code below to keep it honest.
const IMPERATIVE_SRC: &str = r#"
fn imperative_pipeline(csv_text: &str) -> Result<Vec<(String, i64)>, String> {
    use shareinsights_tabular::io::csv::{read_csv, CsvOptions};
    use std::collections::BTreeMap;

    let opts = CsvOptions {
        column_names: Some(vec!["key".into(), "v".into(), "tag".into()]),
        ..Default::default()
    };
    let table = read_csv(csv_text, &opts).map_err(|e| e.to_string())?;
    let key_col = table.column("key").map_err(|e| e.to_string())?.clone();
    let v_col = table.column("v").map_err(|e| e.to_string())?.clone();
    let mut totals: BTreeMap<String, i64> = BTreeMap::new();
    for i in 0..table.num_rows() {
        let v = v_col.value(i).as_int().unwrap_or(0);
        if v > 500 {
            let key = key_col.value(i).to_string();
            *totals.entry(key).or_default() += v;
        }
    }
    let mut rows: Vec<(String, i64)> = totals.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1));
    // ...plus the HTTP handler, HTML rendering, serialization and
    // deployment glue the platform provides for free; elided here, which
    // makes this comparison conservative.
    Ok(rows)
}
"#;

fn imperative_pipeline(csv_text: &str) -> Result<Vec<(String, i64)>, String> {
    use shareinsights_tabular::io::csv::{read_csv, CsvOptions};
    use std::collections::BTreeMap;
    let opts = CsvOptions {
        column_names: Some(vec!["key".into(), "v".into(), "tag".into()]),
        ..Default::default()
    };
    let table = read_csv(csv_text, &opts).map_err(|e| e.to_string())?;
    let key_col = table.column("key").map_err(|e| e.to_string())?.clone();
    let v_col = table.column("v").map_err(|e| e.to_string())?.clone();
    let mut totals: BTreeMap<String, i64> = BTreeMap::new();
    for i in 0..table.num_rows() {
        let v = v_col.value(i).as_int().unwrap_or(0);
        if v > 500 {
            let key = key_col.value(i).to_string();
            *totals.entry(key).or_default() += v;
        }
    }
    let mut rows: Vec<(String, i64)> = totals.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1));
    Ok(rows)
}

fn loc(s: &str) -> usize {
    s.lines().filter(|l| !l.trim().is_empty() && !l.trim().starts_with('#')).count()
}

fn bench(c: &mut Criterion) {
    let csv = write_csv(&fact_table(20_000, 100, 1), ',');

    eprintln!("\nOBS-1 artifact-size proxy (same analysis, grid + endpoint included):");
    eprintln!(
        "  flow file:          {:>4} lines / {:>5} bytes (covers ingest+transform+widget+layout+API)",
        loc(FLOW),
        FLOW.len()
    );
    eprintln!(
        "  imperative program: {:>4} lines / {:>5} bytes (transform only; UI/API glue elided)",
        loc(IMPERATIVE_SRC),
        IMPERATIVE_SRC.len()
    );

    let mut group = c.benchmark_group("obs1_effort_proxy");
    // The full edit→run turnaround a flow-file author experiences.
    group.bench_function("flowfile_save_compile_run", |b| {
        b.iter(|| {
            let platform = Platform::new();
            platform.upload_data("d", "data.csv", csv.clone());
            platform.save_flow("d", FLOW).unwrap();
            black_box(platform.run_dashboard("d").unwrap().result.stats.source_rows)
        })
    });
    group.bench_function("imperative_run_only", |b| {
        b.iter(|| black_box(imperative_pipeline(&csv).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
