//! The HTTP/1.1 wire layer shared by both serve modes.
//!
//! Two pieces live here, each deliberately free of any socket I/O so the
//! blocking thread-per-connection loop and the epoll reactor drive the
//! same bytes-in/bytes-out logic:
//!
//! * [`try_parse`] — an incremental request parser over a growable byte
//!   buffer. Callers append whatever the socket produced and re-invoke;
//!   the parser answers *need more bytes* (saying whether the head has
//!   already parsed, which decides 408-vs-silent-close timeout
//!   semantics), *complete request* (with the byte count to drain, so
//!   pipelined successors stay in the buffer), or *irrecoverable* with
//!   the status to answer before closing (400, 413 when the announced
//!   body outgrows [`WireLimits::max_body_bytes`], or 431 when the head
//!   outgrows [`WireLimits::max_head_bytes`] — the cap that stops a
//!   slow-drip client growing a per-connection buffer without bound).
//! * [`try_parse_head`] + [`BodyReader`] — the streaming-ingest variant:
//!   the head parses alone (reporting the body framing), then the body
//!   is drained incrementally in bounded windows instead of being
//!   buffered whole, so a multi-GB upload never holds more than a
//!   segment's worth of bytes in the connection buffer. Both
//!   content-length and chunked request bodies are supported, capped by
//!   [`WireLimits::max_stream_body_bytes`] (over-cap aborts mid-transfer
//!   with a true 413 and a connection close).
//! * [`ResponseStream`] — turns one [`Response`] into wire bytes
//!   incrementally. Small bodies are framed with `Content-Length` in a
//!   single buffer; bodies larger than the configured chunk budget are
//!   sent with `Transfer-Encoding: chunked`, at most one budget-sized
//!   chunk framed at a time, so peak per-response buffering beyond the
//!   body itself is bounded by the budget regardless of body size. The
//!   reactor refills between `EPOLLOUT` readiness; the blocking path
//!   refills between `write_all` calls.

use crate::http::{Method, Request, Response, Status};
use std::time::Duration;

/// Byte caps applied while parsing one request.
#[derive(Debug, Clone, Copy)]
pub struct WireLimits {
    /// Largest accepted request head (request line + headers). Exceeding
    /// it is answered `431 Request Header Fields Too Large` and closed.
    pub max_head_bytes: usize,
    /// Largest accepted *buffered* request body. Exceeding it is
    /// answered `413 Payload Too Large` and closed.
    pub max_body_bytes: usize,
    /// Largest accepted *streamed* request body (ingest uploads drained
    /// through [`BodyReader`]). Much larger than `max_body_bytes` because
    /// streamed bodies never buffer whole; the cap still exists so a
    /// hostile client cannot stream forever — exceeding it aborts the
    /// transfer with `413` and closes the connection.
    pub max_stream_body_bytes: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            max_stream_body_bytes: 4 * 1024 * 1024 * 1024,
        }
    }
}

/// A fully parsed request plus its connection-level framing facts.
#[derive(Debug)]
pub struct ParsedRequest {
    /// The request, ready for the router.
    pub request: Request,
    /// Whether the client permits keep-alive.
    pub keep_alive: bool,
    /// Bytes of the buffer this request consumed (head + body); the
    /// caller drains exactly this many, leaving pipelined successors.
    pub consumed: usize,
}

/// What [`try_parse`] made of the buffer so far.
#[derive(Debug)]
pub enum Parsed {
    /// Not enough bytes yet. `head_complete` is true once the blank line
    /// ended the head (a subsequent stall is mid-*body*: answer 408; a
    /// mid-head stall closes silently).
    Incomplete {
        /// True when the head parsed and only body bytes are pending.
        head_complete: bool,
    },
    /// One complete request.
    Complete(Box<ParsedRequest>),
    /// Unrecoverable: answer `status` with `message` and close.
    Error {
        /// Status to answer before closing (400 or 431).
        status: Status,
        /// Human-readable reason, sent as the error body.
        message: String,
    },
}

fn parse_error(message: impl Into<String>) -> Parsed {
    Parsed::Error {
        status: Status::BadRequest,
        message: message.into(),
    }
}

/// Locate the `\r\n\r\n` terminating a request or response head.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// How the request body is framed on the wire, per the parsed head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// No body (no `Content-Length`, no `Transfer-Encoding`).
    None,
    /// `Content-Length: n` — exactly `n` payload bytes follow the head.
    ContentLength(usize),
    /// `Transfer-Encoding: chunked` — hex-sized chunks until a 0-chunk.
    Chunked,
}

/// A parsed request *head*: everything but the body, plus how the body
/// is framed. The streaming-ingest path parses this first, then drains
/// the body through a [`BodyReader`] instead of buffering it whole.
#[derive(Debug)]
pub struct ParsedHead {
    /// The request with an empty body, ready for route matching.
    pub request: Request,
    /// Whether the client permits keep-alive.
    pub keep_alive: bool,
    /// Bytes of the buffer the head consumed (including `\r\n\r\n`);
    /// body bytes start here.
    pub consumed: usize,
    /// How the body that follows is framed.
    pub framing: BodyFraming,
}

/// What [`try_parse_head`] made of the buffer so far.
#[derive(Debug)]
pub enum HeadParsed {
    /// The terminating blank line has not arrived yet.
    Incomplete,
    /// One complete head.
    Head(Box<ParsedHead>),
    /// Unrecoverable: answer `status` with `message` and close.
    Error {
        /// Status to answer before closing (400 or 431).
        status: Status,
        /// Human-readable reason, sent as the error body.
        message: String,
    },
}

/// Parse one request *head* from `buf` without consuming it — the first
/// half of [`try_parse`], exposed so streaming routes can route-match
/// and start draining the body before it is complete.
pub fn try_parse_head(buf: &[u8], limits: &WireLimits) -> HeadParsed {
    let head_error = |status: Status, message: String| HeadParsed::Error { status, message };
    let bad = |message: String| head_error(Status::BadRequest, message);
    let head_end = match find_head_end(buf) {
        Some(pos) => pos,
        None => {
            // The cap must trip while the head is still incomplete —
            // that is exactly the slow-drip-headers attack shape.
            if buf.len() > limits.max_head_bytes {
                return head_error(
                    Status::RequestHeaderFieldsTooLarge,
                    format!("request head exceeds {} bytes", limits.max_head_bytes),
                );
            }
            return HeadParsed::Incomplete;
        }
    };
    if head_end > limits.max_head_bytes {
        return head_error(
            Status::RequestHeaderFieldsTooLarge,
            format!("request head exceeds {} bytes", limits.max_head_bytes),
        );
    }
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = match parts.next().and_then(Method::parse) {
        Some(m) => m,
        None => return bad(format!("unsupported method in {request_line:?}")),
    };
    let target = match parts.next().filter(|t| t.starts_with('/')) {
        Some(t) => t.to_string(),
        None => return bad(format!("bad request target in {request_line:?}")),
    };
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return bad(format!("unsupported protocol {version:?}"));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut framing = BodyFraming::None;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            headers.push((name.to_string(), value.trim().to_string()));
            if name.eq_ignore_ascii_case("content-length") {
                framing = match value.trim().parse() {
                    Ok(0) => BodyFraming::None,
                    Ok(n) => BodyFraming::ContentLength(n),
                    Err(_) => return bad(format!("bad content-length {:?}", value.trim())),
                };
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                if value.trim().eq_ignore_ascii_case("chunked") {
                    framing = BodyFraming::Chunked;
                } else {
                    return bad(format!("unsupported transfer-encoding {:?}", value.trim()));
                }
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim().to_ascii_lowercase();
                if value.split(',').any(|t| t.trim() == "close") {
                    keep_alive = false;
                } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    let mut request = Request::new(method, &target);
    for (name, value) in headers {
        request = request.with_header(&name, value);
    }
    HeadParsed::Head(Box::new(ParsedHead {
        request,
        keep_alive,
        consumed: head_end + 4,
        framing,
    }))
}

/// Attempt to parse one request from `buf` without consuming it. Pure:
/// no I/O, no mutation — callers drain [`ParsedRequest::consumed`] bytes
/// themselves on success.
pub fn try_parse(buf: &[u8], limits: &WireLimits) -> Parsed {
    let head = match try_parse_head(buf, limits) {
        HeadParsed::Incomplete => {
            return Parsed::Incomplete {
                head_complete: false,
            }
        }
        HeadParsed::Error { status, message } => return Parsed::Error { status, message },
        HeadParsed::Head(h) => h,
    };
    let content_length = match head.framing {
        BodyFraming::None => 0,
        BodyFraming::ContentLength(n) => n,
        // Chunked request bodies only make sense on routes that drain
        // them incrementally; buffering callers reject them up front.
        BodyFraming::Chunked => {
            return parse_error("chunked request bodies are only accepted on streaming routes")
        }
    };
    if content_length > limits.max_body_bytes {
        return Parsed::Error {
            status: Status::PayloadTooLarge,
            message: format!(
                "body of {content_length} bytes exceeds the {}-byte limit",
                limits.max_body_bytes
            ),
        };
    }
    let total = head.consumed + content_length;
    if buf.len() < total {
        return Parsed::Incomplete {
            head_complete: true,
        };
    }
    let body = match std::str::from_utf8(&buf[head.consumed..total]) {
        Ok(b) => b.to_string(),
        Err(_) => return parse_error("body is not UTF-8"),
    };
    let ParsedHead {
        mut request,
        keep_alive,
        ..
    } = *head;
    request.body = body;
    Parsed::Complete(Box::new(ParsedRequest {
        request,
        keep_alive,
        consumed: total,
    }))
}

// ---------------------------------------------------------------------------
// Incremental body draining (streaming ingest)
// ---------------------------------------------------------------------------

/// Progress of one [`BodyReader::feed`] call.
#[derive(Debug, Default)]
pub struct BodyProgress {
    /// Bytes of the caller's buffer consumed — drain exactly this many.
    /// Bytes past a completed body are a pipelined successor and stay.
    pub consumed: usize,
    /// Payload bytes extracted (chunk framing removed).
    pub data: Vec<u8>,
    /// True once the body is complete.
    pub done: bool,
}

/// Chunked-transfer de-framing position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkPhase {
    /// Expecting a hex size line terminated by `\r\n`.
    Size,
    /// Inside chunk data; `.0` payload bytes remain.
    Data(usize),
    /// Expecting the `\r\n` that closes a data chunk.
    DataEnd,
    /// Saw the 0-chunk; expecting the final `\r\n`.
    Trailer,
}

/// Drains one request body incrementally, handing payload bytes to the
/// caller as they arrive instead of buffering the body whole. Pure like
/// [`try_parse`]: the caller appends socket bytes to its own buffer,
/// calls [`BodyReader::feed`], and drains [`BodyProgress::consumed`].
/// Supports both `Content-Length` and chunked framing; enforces
/// [`WireLimits::max_stream_body_bytes`] mid-transfer.
#[derive(Debug)]
pub struct BodyReader {
    framing: BodyFraming,
    /// Payload bytes still expected (content-length mode).
    remaining: usize,
    phase: ChunkPhase,
    /// Total payload bytes seen so far.
    total: usize,
    cap: usize,
    done: bool,
}

impl BodyReader {
    /// A reader for the body the parsed head announced.
    pub fn new(framing: BodyFraming, limits: &WireLimits) -> BodyReader {
        BodyReader {
            framing,
            remaining: match framing {
                BodyFraming::ContentLength(n) => n,
                _ => 0,
            },
            phase: ChunkPhase::Size,
            total: 0,
            cap: limits.max_stream_body_bytes,
            done: matches!(framing, BodyFraming::None),
        }
    }

    /// True when the head *announced* more bytes than the streaming cap
    /// allows — callers answer 413 before reading a single body byte.
    pub fn announced_over_cap(&self) -> bool {
        matches!(self.framing, BodyFraming::ContentLength(n) if n > self.cap)
    }

    /// True once the whole body has been drained.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Total payload bytes drained so far.
    pub fn bytes_seen(&self) -> usize {
        self.total
    }

    /// Consume as much of `buf` as the framing allows, extracting payload
    /// bytes. An over-cap body (or malformed chunk framing) is an error:
    /// answer `status` and close — mid-transfer there is no way to
    /// resynchronise with the peer.
    pub fn feed(&mut self, buf: &[u8]) -> Result<BodyProgress, (Status, String)> {
        let mut progress = BodyProgress::default();
        if self.done {
            progress.done = true;
            return Ok(progress);
        }
        match self.framing {
            BodyFraming::None => {
                self.done = true;
                progress.done = true;
                Ok(progress)
            }
            BodyFraming::ContentLength(_) => {
                let take = self.remaining.min(buf.len());
                progress.data.extend_from_slice(&buf[..take]);
                progress.consumed = take;
                self.remaining -= take;
                self.total += take;
                if self.total > self.cap {
                    return Err(over_cap(self.cap));
                }
                if self.remaining == 0 {
                    self.done = true;
                    progress.done = true;
                }
                Ok(progress)
            }
            BodyFraming::Chunked => {
                let mut pos = 0usize;
                loop {
                    match self.phase {
                        ChunkPhase::Size => {
                            let Some(line_end) = buf[pos..].windows(2).position(|w| w == b"\r\n")
                            else {
                                // A size line is at most 16 hex digits
                                // plus extensions; a "size line" growing
                                // past 64 bytes is garbage, not patience.
                                if buf.len() - pos > 64 {
                                    return Err((
                                        Status::BadRequest,
                                        "chunk size line too long".to_string(),
                                    ));
                                }
                                break;
                            };
                            let line_end = line_end + pos;
                            let token = std::str::from_utf8(&buf[pos..line_end])
                                .ok()
                                .and_then(|s| s.split(';').next())
                                .map(str::trim)
                                .unwrap_or("");
                            let size = usize::from_str_radix(token, 16).map_err(|_| {
                                (Status::BadRequest, format!("bad chunk size {token:?}"))
                            })?;
                            pos = line_end + 2;
                            self.phase = if size == 0 {
                                ChunkPhase::Trailer
                            } else {
                                ChunkPhase::Data(size)
                            };
                        }
                        ChunkPhase::Data(left) => {
                            let take = left.min(buf.len() - pos);
                            progress.data.extend_from_slice(&buf[pos..pos + take]);
                            pos += take;
                            self.total += take;
                            if self.total > self.cap {
                                return Err(over_cap(self.cap));
                            }
                            if take == left {
                                self.phase = ChunkPhase::DataEnd;
                            } else {
                                self.phase = ChunkPhase::Data(left - take);
                                break;
                            }
                        }
                        ChunkPhase::DataEnd => {
                            if buf.len() - pos < 2 {
                                break;
                            }
                            if &buf[pos..pos + 2] != b"\r\n" {
                                return Err((
                                    Status::BadRequest,
                                    "chunk data missing trailing CRLF".to_string(),
                                ));
                            }
                            pos += 2;
                            self.phase = ChunkPhase::Size;
                        }
                        ChunkPhase::Trailer => {
                            if buf.len() - pos < 2 {
                                break;
                            }
                            if &buf[pos..pos + 2] != b"\r\n" {
                                return Err((
                                    Status::BadRequest,
                                    "unsupported chunked trailer".to_string(),
                                ));
                            }
                            pos += 2;
                            self.done = true;
                            break;
                        }
                    }
                }
                progress.consumed = pos;
                progress.done = self.done;
                Ok(progress)
            }
        }
    }
}

fn over_cap(cap: usize) -> (Status, String) {
    (
        Status::PayloadTooLarge,
        format!("streamed body exceeds the {cap}-byte limit"),
    )
}

// ---------------------------------------------------------------------------
// Response streaming
// ---------------------------------------------------------------------------

/// Keep-alive terms advertised on a response that leaves the connection
/// open.
#[derive(Debug, Clone, Copy)]
pub struct KeepAliveTerms {
    /// Idle window the server will tolerate before closing.
    pub timeout: Duration,
    /// Requests the client may still send on this connection.
    pub max: u64,
}

/// Framing-related overhead on top of one chunk's payload: hex length
/// (≤16 digits for any usize) plus two `\r\n` pairs.
const CHUNK_FRAME_OVERHEAD: usize = 16 + 4;

/// Turns one [`Response`] into wire bytes a bounded buffer at a time.
///
/// `chunk_budget` decides the framing: `Some(budget)` with a body larger
/// than `budget` selects `Transfer-Encoding: chunked` and emits one
/// budget-sized chunk per [`ResponseStream::next_wire`] call; anything
/// else selects classic `Content-Length` framing where the head and the
/// whole body are emitted in one buffer (the single-write fast path that
/// sidesteps Nagle/delayed-ACK stalls on small responses).
#[derive(Debug)]
pub struct ResponseStream {
    body: String,
    /// Body bytes already framed into an out-buffer.
    cursor: usize,
    /// Head bytes, emitted with the first `next_wire` call.
    head: Option<String>,
    chunked: bool,
    budget: usize,
    /// True once the terminating 0-chunk (or the full body) was emitted.
    done: bool,
}

impl ResponseStream {
    /// Plan the wire framing for `resp`. `keep` carries keep-alive terms
    /// (absent announces `Connection: close`); `chunk_budget` enables
    /// chunked framing for bodies that outgrow it.
    pub fn new(resp: Response, keep: Option<KeepAliveTerms>, chunk_budget: Option<usize>) -> Self {
        let chunked = chunk_budget.is_some_and(|b| resp.body.len() > b);
        let connection = match &keep {
            Some(k) => format!(
                "Connection: keep-alive\r\nKeep-Alive: timeout={}, max={}",
                k.timeout.as_secs(),
                k.max
            ),
            None => "Connection: close".to_string(),
        };
        let framing = if chunked {
            "Transfer-Encoding: chunked".to_string()
        } else {
            format!("Content-Length: {}", resp.body.len())
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n{framing}\r\n{connection}\r\n\r\n",
            resp.status.code(),
            resp.status.reason(),
            resp.content_type,
        );
        ResponseStream {
            body: resp.body,
            cursor: 0,
            head: Some(head),
            chunked,
            budget: chunk_budget.unwrap_or(usize::MAX),
            done: false,
        }
    }

    /// True once every wire byte has been produced.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// The largest buffer one `next_wire` call may produce: head bytes
    /// aside, a chunk's payload plus its framing.
    pub fn max_wire_bytes(&self) -> usize {
        if self.chunked {
            self.budget + CHUNK_FRAME_OVERHEAD
        } else {
            self.body.len()
        }
    }

    /// Produce the next batch of wire bytes into `out` (cleared first).
    /// Returns false once the response is fully framed and `out` stays
    /// empty. In chunked mode each call emits at most one budget-sized
    /// chunk, so `out` never outgrows the budget plus framing overhead.
    pub fn next_wire(&mut self, out: &mut Vec<u8>) -> bool {
        out.clear();
        if self.done {
            return false;
        }
        if let Some(head) = self.head.take() {
            out.extend_from_slice(head.as_bytes());
            if !self.chunked {
                // Content-Length framing: one buffer, one write.
                out.extend_from_slice(self.body.as_bytes());
                self.done = true;
                return true;
            }
            return true;
        }
        // Chunked body: one chunk per call.
        let remaining = self.body.len() - self.cursor;
        if remaining == 0 {
            out.extend_from_slice(b"0\r\n\r\n");
            self.done = true;
            return true;
        }
        let take = remaining.min(self.budget);
        out.extend_from_slice(format!("{take:x}\r\n").as_bytes());
        out.extend_from_slice(&self.body.as_bytes()[self.cursor..self.cursor + take]);
        out.extend_from_slice(b"\r\n");
        self.cursor += take;
        true
    }
}

/// De-chunk a `Transfer-Encoding: chunked` payload already in memory —
/// the client-side inverse of [`ResponseStream`]'s chunked framing. Used
/// by the test/bench HTTP client. Returns the decoded body and the total
/// encoded length consumed, or `None` while the payload is incomplete.
/// Malformed framing returns `Some(Err(..))`.
pub fn dechunk(buf: &[u8]) -> Option<Result<(String, usize), String>> {
    let mut body = Vec::new();
    let mut pos = 0usize;
    loop {
        let line_end = buf[pos..].windows(2).position(|w| w == b"\r\n")? + pos;
        let size_line = match std::str::from_utf8(&buf[pos..line_end]) {
            Ok(s) => s,
            Err(_) => return Some(Err("chunk size line is not UTF-8".to_string())),
        };
        // Chunk extensions (";ext=…") are tolerated and ignored.
        let size_token = size_line.split(';').next().unwrap_or("").trim();
        let size = match usize::from_str_radix(size_token, 16) {
            Ok(n) => n,
            Err(_) => return Some(Err(format!("bad chunk size {size_token:?}"))),
        };
        let data_start = line_end + 2;
        // Chunk data plus its trailing CRLF must be present.
        if buf.len() < data_start + size + 2 {
            return None;
        }
        if size == 0 {
            // No trailer support: expect the final CRLF immediately.
            if &buf[data_start..data_start + 2] != b"\r\n" {
                return Some(Err("unsupported chunked trailer".to_string()));
            }
            let decoded = match String::from_utf8(body) {
                Ok(s) => s,
                Err(_) => return Some(Err("de-chunked body is not UTF-8".to_string())),
            };
            return Some(Ok((decoded, data_start + 2)));
        }
        body.extend_from_slice(&buf[data_start..data_start + size]);
        if &buf[data_start + size..data_start + size + 2] != b"\r\n" {
            return Some(Err("chunk data missing trailing CRLF".to_string()));
        }
        pos = data_start + size + 2;
    }
}

// ---------------------------------------------------------------------------
// SSE framing (live-flow subscriptions)
// ---------------------------------------------------------------------------

/// Response head for a `GET …/subscribe` stream: an SSE body carried over
/// chunked transfer encoding on a connection that never goes back to
/// request/response mode. Both serve modes emit these exact bytes so a
/// subscriber cannot tell the reactor from the thread pool apart.
pub fn sse_head() -> &'static [u8] {
    b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
}

/// Frame one generation-delta event as exactly one HTTP chunk wrapping
/// one SSE event. Frames are built once (in the router, at publish time)
/// and delivered verbatim to every subscriber, which is what makes the
/// two serve modes byte-identical by construction.
pub fn sse_frame(event: &str, generation: u64, data: &str) -> Vec<u8> {
    let payload = format!("event: {event}\nid: {generation}\ndata: {data}\n\n");
    let mut frame = Vec::with_capacity(payload.len() + CHUNK_FRAME_OVERHEAD);
    frame.extend_from_slice(format!("{:x}\r\n", payload.len()).as_bytes());
    frame.extend_from_slice(payload.as_bytes());
    frame.extend_from_slice(b"\r\n");
    frame
}

/// The terminal 0-chunk ending an SSE stream gracefully.
pub fn sse_done() -> &'static [u8] {
    b"0\r\n\r\n"
}

/// One parsed SSE event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseEvent {
    /// The `event:` field (dataset name for generation deltas).
    pub event: String,
    /// The `id:` field — the endpoint-data generation of the frame.
    pub id: u64,
    /// The `data:` field (JSON table snapshot). Multi-line `data:`
    /// fields join with `\n` per the SSE spec.
    pub data: String,
    /// The exact payload bytes of this event including the blank-line
    /// terminator — the unit the dual-mode conformance test compares.
    pub raw: Vec<u8>,
}

/// Incremental SSE-over-chunked parser: the client-side inverse of
/// [`sse_frame`]. Feed it whatever the socket produced *after* the
/// response head; it de-chunks and splits events, tolerating frames
/// that straddle feed (or chunk) boundaries arbitrarily.
#[derive(Debug, Default)]
pub struct SseParser {
    /// Wire bytes not yet consumed by chunk framing.
    wire: Vec<u8>,
    /// De-chunked payload bytes not yet closed by a blank line.
    payload: Vec<u8>,
    /// True once the terminal 0-chunk arrived.
    done: bool,
}

impl SseParser {
    /// Fresh parser positioned just past the response head.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once the server ended the stream with the terminal chunk.
    pub fn terminated(&self) -> bool {
        self.done
    }

    /// True while bytes of an unfinished chunk or event are pending —
    /// a disconnect now means the subscriber lost a frame mid-flight.
    pub fn mid_frame(&self) -> bool {
        !self.done && (!self.wire.is_empty() || !self.payload.is_empty())
    }

    /// Append socket bytes and return every event completed by them.
    /// Malformed chunk framing is a hard error.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<SseEvent>, String> {
        self.wire.extend_from_slice(bytes);
        // De-chunk as far as the buffered wire bytes allow.
        let mut pos = 0usize;
        while let Some(line_end) = self.wire[pos..].windows(2).position(|w| w == b"\r\n") {
            let line_end = line_end + pos;
            let size_line = std::str::from_utf8(&self.wire[pos..line_end])
                .map_err(|_| "chunk size line is not UTF-8".to_string())?;
            let size_token = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_token, 16)
                .map_err(|_| format!("bad chunk size {size_token:?}"))?;
            let data_start = line_end + 2;
            if self.wire.len() < data_start + size + 2 {
                break;
            }
            if size == 0 {
                if &self.wire[data_start..data_start + 2] != b"\r\n" {
                    return Err("unsupported chunked trailer".to_string());
                }
                self.done = true;
                pos = data_start + 2;
                break;
            }
            self.payload
                .extend_from_slice(&self.wire[data_start..data_start + size]);
            if &self.wire[data_start + size..data_start + size + 2] != b"\r\n" {
                return Err("chunk data missing trailing CRLF".to_string());
            }
            pos = data_start + size + 2;
        }
        self.wire.drain(..pos);
        // Split completed events off the payload.
        let mut events = Vec::new();
        while let Some(sep) = self.payload.windows(2).position(|w| w == b"\n\n") {
            let raw: Vec<u8> = self.payload.drain(..sep + 2).collect();
            events.push(parse_sse_event(&raw)?);
        }
        Ok(events)
    }
}

fn parse_sse_event(raw: &[u8]) -> Result<SseEvent, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "SSE event is not UTF-8".to_string())?;
    let mut event = String::new();
    let mut id = 0u64;
    let mut data: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("event:") {
            event = v.trim_start().to_string();
        } else if let Some(v) = line.strip_prefix("id:") {
            id = v
                .trim()
                .parse()
                .map_err(|_| format!("bad SSE id {:?}", v.trim()))?;
        } else if let Some(v) = line.strip_prefix("data:") {
            data.push(v.strip_prefix(' ').unwrap_or(v));
        }
    }
    Ok(SseEvent {
        event,
        id,
        data: data.join("\n"),
        raw: raw.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> WireLimits {
        WireLimits::default()
    }

    #[test]
    fn incremental_parse_reports_head_progress() {
        let buf = b"GET /x HTTP/1.1\r\nHos";
        match try_parse(buf, &limits()) {
            Parsed::Incomplete { head_complete } => assert!(!head_complete),
            other => panic!("{other:?}"),
        }
        let buf = b"PUT /x HTTP/1.1\r\nContent-Length: 10\r\n\r\npart";
        match try_parse(buf, &limits()) {
            Parsed::Incomplete { head_complete } => assert!(head_complete),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn complete_request_reports_consumed_bytes_for_pipelining() {
        let buf = b"PUT /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /y HTTP/1.1\r\n\r\n";
        match try_parse(buf, &limits()) {
            Parsed::Complete(p) => {
                assert_eq!(p.request.path, "/x");
                assert_eq!(p.request.body, "body");
                assert!(p.keep_alive);
                // Exactly the first request's bytes; /y stays buffered.
                assert_eq!(&buf[p.consumed..p.consumed + 5], b"GET /");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn connection_header_and_version_drive_keepalive() {
        let close = b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n";
        match try_parse(close, &limits()) {
            Parsed::Complete(p) => assert!(!p.keep_alive),
            other => panic!("{other:?}"),
        }
        let old = b"GET /x HTTP/1.0\r\n\r\n";
        match try_parse(old, &limits()) {
            Parsed::Complete(p) => assert!(!p.keep_alive),
            other => panic!("{other:?}"),
        }
        let old_keep = b"GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        match try_parse(old_keep, &limits()) {
            Parsed::Complete(p) => assert!(p.keep_alive),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_431_even_before_completion() {
        let tight = WireLimits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
            ..WireLimits::default()
        };
        // A slow-drip client never finishing its head: the cap trips as
        // soon as the buffer outgrows the limit.
        let mut buf = b"GET /x HTTP/1.1\r\n".to_vec();
        while buf.len() <= 64 {
            buf.extend_from_slice(b"X-Pad: yyyyyyyy\r\n");
        }
        match try_parse(&buf, &tight) {
            Parsed::Error { status, .. } => {
                assert_eq!(status, Status::RequestHeaderFieldsTooLarge)
            }
            other => panic!("{other:?}"),
        }
        // A complete-but-oversized head is also 431.
        buf.extend_from_slice(b"\r\n\r\n");
        match try_parse(&buf, &tight) {
            Parsed::Error { status, .. } => {
                assert_eq!(status, Status::RequestHeaderFieldsTooLarge)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_400() {
        for bad in [
            &b"NONSENSE /x SMTP/9\r\n\r\n"[..],
            &b"GET nopath HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/2\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"[..],
        ] {
            match try_parse(bad, &limits()) {
                Parsed::Error { status, .. } => assert_eq!(status, Status::BadRequest),
                other => panic!("{bad:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_is_a_true_413_at_the_head() {
        let tight = WireLimits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
            ..WireLimits::default()
        };
        let buf = b"PUT /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        match try_parse(buf, &tight) {
            Parsed::Error { status, message } => {
                assert_eq!(status, Status::PayloadTooLarge);
                assert!(message.contains("exceeds"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn head_parse_reports_body_framing() {
        let buf = b"POST /d/ds/x/ingest HTTP/1.1\r\nContent-Length: 12\r\n\r\npartial";
        match try_parse_head(buf, &limits()) {
            HeadParsed::Head(h) => {
                assert_eq!(h.request.path, "/d/ds/x/ingest");
                assert_eq!(h.framing, BodyFraming::ContentLength(12));
                assert_eq!(&buf[h.consumed..], b"partial");
            }
            other => panic!("{other:?}"),
        }
        let buf = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        match try_parse_head(buf, &limits()) {
            HeadParsed::Head(h) => assert_eq!(h.framing, BodyFraming::Chunked),
            other => panic!("{other:?}"),
        }
        // Buffering callers reject chunked request bodies outright.
        match try_parse(buf, &limits()) {
            Parsed::Error { status, .. } => assert_eq!(status, Status::BadRequest),
            other => panic!("{other:?}"),
        }
        let buf = b"GET /x HTTP/1.1\r\n\r\n";
        match try_parse_head(buf, &limits()) {
            HeadParsed::Head(h) => assert_eq!(h.framing, BodyFraming::None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn body_reader_drains_content_length_in_windows() {
        let mut r = BodyReader::new(BodyFraming::ContentLength(10), &limits());
        let p = r.feed(b"abcd").unwrap();
        assert_eq!((p.consumed, p.done), (4, false));
        assert_eq!(p.data, b"abcd");
        // Final feed stops at the body end; pipelined bytes stay.
        let p = r.feed(b"efghijGET /next").unwrap();
        assert_eq!((p.consumed, p.done), (6, true));
        assert_eq!(p.data, b"efghij");
        assert!(r.finished());
        assert_eq!(r.bytes_seen(), 10);
    }

    #[test]
    fn body_reader_dechunks_across_arbitrary_boundaries() {
        // One-shot: consumed stops exactly at the body end, leaving the
        // pipelined successor in place.
        let wire = b"3\r\nabc\r\n5;ext=1\r\ndefgh\r\n0\r\n\r\nGET /next";
        let mut r = BodyReader::new(BodyFraming::Chunked, &limits());
        let p = r.feed(wire).unwrap();
        assert!(p.done);
        assert_eq!(p.data, b"abcdefgh");
        assert_eq!(&wire[p.consumed..], b"GET /next");

        // Drip one byte at a time: every state straddles a feed boundary.
        let mut r = BodyReader::new(BodyFraming::Chunked, &limits());
        let mut buf = Vec::new();
        let mut payload = Vec::new();
        for &b in wire.iter() {
            buf.push(b);
            let p = r.feed(&buf).unwrap();
            payload.extend_from_slice(&p.data);
            buf.drain(..p.consumed);
            if p.done {
                break;
            }
        }
        assert_eq!(payload, b"abcdefgh");
        assert!(r.finished());
        assert_eq!(r.bytes_seen(), 8);
    }

    #[test]
    fn body_reader_aborts_over_cap_streams_mid_transfer() {
        let tight = WireLimits {
            max_stream_body_bytes: 8,
            ..WireLimits::default()
        };
        // Announced over-cap: reject before reading the body.
        let r = BodyReader::new(BodyFraming::ContentLength(9), &tight);
        assert!(r.announced_over_cap());
        // A chunked stream cannot announce: the cap trips mid-transfer.
        let mut r = BodyReader::new(BodyFraming::Chunked, &tight);
        let p = r.feed(b"6\r\nabcdef\r\n").unwrap();
        assert_eq!(p.data, b"abcdef");
        let (status, msg) = r.feed(b"6\r\nghijkl\r\n").unwrap_err();
        assert_eq!(status, Status::PayloadTooLarge);
        assert!(msg.contains("exceeds"), "{msg}");
    }

    fn drain_stream(stream: &mut ResponseStream) -> (Vec<u8>, usize) {
        let mut wire = Vec::new();
        let mut out = Vec::new();
        let mut peak = 0usize;
        while stream.next_wire(&mut out) {
            peak = peak.max(out.len());
            wire.extend_from_slice(&out);
        }
        (wire, peak)
    }

    #[test]
    fn small_bodies_frame_with_content_length_in_one_buffer() {
        let resp = Response::json("{\"a\": 1}");
        let mut s = ResponseStream::new(resp, None, Some(1024));
        let (wire, _) = drain_stream(&mut s);
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 8\r\n"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        assert!(text.ends_with("{\"a\": 1}"), "{text}");
        assert!(!text.contains("chunked"));
    }

    #[test]
    fn large_bodies_chunk_within_budget_and_dechunk_byte_identically() {
        let body: String = (0..10_000)
            .map(|i| ((i % 26) as u8 + b'a') as char)
            .collect();
        let budget = 512;
        let resp = Response::json(body.clone());
        let terms = KeepAliveTerms {
            timeout: Duration::from_secs(5),
            max: 7,
        };
        let mut s = ResponseStream::new(resp, Some(terms), Some(budget));
        assert!(s.max_wire_bytes() <= budget + CHUNK_FRAME_OVERHEAD);
        let (wire, peak) = drain_stream(&mut s);
        let text = String::from_utf8_lossy(&wire);
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains("Keep-Alive: timeout=5, max=7"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
        // Every refill obeys the budget (head aside, which is tiny).
        assert!(
            peak <= budget + CHUNK_FRAME_OVERHEAD,
            "peak {peak} vs budget {budget}"
        );
        // De-chunking restores the body byte for byte.
        let head_end = find_head_end(&wire).unwrap();
        let (decoded, consumed) = dechunk(&wire[head_end + 4..])
            .expect("complete")
            .expect("well-formed");
        assert_eq!(decoded, body);
        assert_eq!(head_end + 4 + consumed, wire.len(), "no trailing bytes");
    }

    #[test]
    fn chunking_is_bypassed_when_budget_is_disabled_or_body_fits() {
        let resp = Response::json("x".repeat(100));
        let mut s = ResponseStream::new(resp, None, None);
        let (wire, _) = drain_stream(&mut s);
        assert!(String::from_utf8_lossy(&wire).contains("Content-Length: 100"));
        let resp = Response::json("x".repeat(100));
        let mut s = ResponseStream::new(resp, None, Some(100));
        let (wire, _) = drain_stream(&mut s);
        assert!(String::from_utf8_lossy(&wire).contains("Content-Length: 100"));
    }

    #[test]
    fn dechunk_handles_partials_and_garbage() {
        // Incomplete: the chunk promises more data than present.
        assert!(dechunk(b"10\r\nshort").is_none());
        // Incomplete: no terminating chunk yet.
        assert!(dechunk(b"3\r\nabc\r\n").is_none());
        // Complete two-chunk payload with an extension token.
        let (body, used) = dechunk(b"3;ext=1\r\nabc\r\n2\r\nde\r\n0\r\n\r\nXX")
            .unwrap()
            .unwrap();
        assert_eq!(body, "abcde");
        assert_eq!(used, 26, "consumed stops before pipelined bytes");
        // Garbage sizes are hard errors.
        assert!(dechunk(b"zz\r\nabc\r\n0\r\n\r\n").unwrap().is_err());
        assert!(dechunk(b"3\r\nabcXY0\r\n\r\n").unwrap().is_err());
    }

    #[test]
    fn sse_frames_roundtrip_through_parser() {
        let head = String::from_utf8_lossy(sse_head()).into_owned();
        assert!(head.contains("text/event-stream"), "{head}");
        assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
        assert!(head.contains("Connection: close"), "{head}");

        let f1 = sse_frame("brand_sales", 3, "{\"rows\": [1, 2]}");
        let f2 = sse_frame("brand_sales", 4, "{\"rows\": [3]}");
        let mut wire = Vec::new();
        wire.extend_from_slice(&f1);
        wire.extend_from_slice(&f2);
        wire.extend_from_slice(sse_done());

        let mut p = SseParser::new();
        let events = p.feed(&wire).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, "brand_sales");
        assert_eq!(events[0].id, 3);
        assert_eq!(events[0].data, "{\"rows\": [1, 2]}");
        assert_eq!(events[1].id, 4);
        assert!(p.terminated());
        assert!(!p.mid_frame());
    }

    #[test]
    fn sse_frames_straddling_feed_boundaries_reassemble() {
        // Drip the wire bytes one at a time: every frame straddles many
        // feed boundaries, and chunk headers split mid-hex-digit.
        let mut wire = Vec::new();
        for generation in 1..=5u64 {
            wire.extend_from_slice(&sse_frame(
                "players_tweets",
                generation,
                &format!("{{\"generation\": {generation}}}"),
            ));
        }
        wire.extend_from_slice(sse_done());

        let mut p = SseParser::new();
        let mut events = Vec::new();
        for b in &wire {
            events.extend(p.feed(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(events.len(), 5);
        let ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        // Byte-level reassembly: raw payloads concatenate back to the
        // exact de-chunked stream.
        let rebuilt: Vec<u8> = events.iter().flat_map(|e| e.raw.clone()).collect();
        let (decoded, _) = dechunk(&wire).unwrap().unwrap();
        assert_eq!(rebuilt, decoded.into_bytes());
        assert!(p.terminated());
    }

    #[test]
    fn sse_disconnect_mid_frame_is_detectable() {
        let frame = sse_frame("ds", 7, "{\"partial\": true}");
        let mut p = SseParser::new();
        // The server died after half a frame: no event surfaces, and the
        // parser reports the stream stopped mid-frame (subscriber lost
        // data) rather than at a clean boundary.
        let events = p.feed(&frame[..frame.len() / 2]).unwrap();
        assert!(events.is_empty());
        assert!(!p.terminated());
        assert!(p.mid_frame());
        // Delivering the rest completes the frame normally.
        let events = p.feed(&frame[frame.len() / 2..]).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, 7);
        assert!(!p.mid_frame());
    }

    #[test]
    fn sse_multiline_data_and_bad_framing() {
        // Multi-line data joins with \n per the SSE spec.
        let payload = "event: ds\nid: 1\ndata: line1\ndata: line2\n\n";
        let mut wire = format!("{:x}\r\n{payload}\r\n", payload.len()).into_bytes();
        wire.extend_from_slice(sse_done());
        let mut p = SseParser::new();
        let events = p.feed(&wire).unwrap();
        assert_eq!(events[0].data, "line1\nline2");
        // Corrupt chunk sizes are hard errors, not silent stalls.
        assert!(SseParser::new().feed(b"zz\r\nboom\r\n").is_err());
    }
}
