//! The route table over a [`Platform`].

use crate::cache::{QueryCache, ResultCache};
use crate::http::{Method, Request, Response, Status};
use crate::json::{string_list, table_to_json};
use crate::metrics::{allowed_methods, prometheus_text, route_label, stats_json};
use crate::query::{parse_ops, run_query_indexed, QueryOp};
use crate::shard::ShardSet;
use crate::sql::{lower_plan, parse_error_response, LoweredSql};
use crate::stream::{StreamHub, Subscription};
use crate::traces::{trace_json, trace_list_json};
use crate::wire::sse_frame;
use parking_lot::Mutex;
use shareinsights_core::trace::{Span, TraceId};
use shareinsights_core::{EventLog, Partitioning, Platform, ShardWorkerStats};
use shareinsights_tabular::{IndexedTable, Table};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The reserved virtual dashboard: a read-only namespace the router
/// resolves from built-in stores instead of saved flows. No user
/// dashboard may be created, saved, or forked under this name.
pub const SYSTEM_DASHBOARD: &str = "_system";

/// The built-in telemetry time-series dataset under
/// [`SYSTEM_DASHBOARD`]: the history ring the scraper tick fills.
pub const TELEMETRY_DATASET: &str = "telemetry";

/// Rejects writes that would shadow the built-in [`SYSTEM_DASHBOARD`]
/// namespace: returns the 409 to send when `name` is reserved.
pub(crate) fn reserved_namespace(name: &str) -> Option<Response> {
    if name == SYSTEM_DASHBOARD {
        Some(Response::error(
            Status::Conflict,
            format!("'{SYSTEM_DASHBOARD}' is a reserved read-only namespace"),
        ))
    } else {
        None
    }
}

/// Outcome of [`Server::handle_traced`]: the response plus the request's
/// trace id (when the request was sampled) and handling latency — what the
/// serving loop needs for slow-request logging.
#[derive(Debug)]
pub struct Handled {
    /// The response to write.
    pub response: Response,
    /// Trace id of the request's root span, if one was recorded.
    pub trace_id: Option<TraceId>,
    /// Handling latency in microseconds.
    pub elapsed_us: u64,
    /// Set when the request subscribed to a live flow: instead of
    /// writing `response` and moving on, the serving loop must switch
    /// the connection into streaming mode and deliver this
    /// subscription's frames until it ends.
    pub stream: Option<Arc<Subscription>>,
}

/// Indexed endpoint snapshots keyed `dashboard/dataset`, stamped with the
/// data generation they were built at.
type IndexRegistry = HashMap<String, (u64, Arc<IndexedTable>)>;

/// The in-process REST server wrapping a platform instance.
///
/// Cloning is cheap and shares the platform state and the query cache, so
/// a worker pool can hold one clone per thread.
#[derive(Clone)]
pub struct Server {
    platform: Platform,
    cache: Arc<QueryCache>,
    results: Arc<ResultCache>,
    /// Lazily indexed endpoint snapshots — a run or publish bumps the
    /// generation and the stale wrapper is replaced on next use, dropping
    /// its indexes with the cached results.
    indexes: Arc<Mutex<IndexRegistry>>,
    /// Live-flow subscriber registry: stream pushes publish generation
    /// delta frames here, subscribe requests register here.
    hub: Arc<StreamHub>,
    /// Prepared-statement cache: SQL text → lowered plan, so hot
    /// statements skip the parse + lower frontend entirely. Join-free
    /// plans only — joins embed resolved table snapshots at lower time.
    prepared: Arc<Mutex<PreparedCache>>,
    /// Scatter/gather shard set (see [`crate::shard`]). `None` keeps
    /// single-shard execution; [`Server::with_shards`] attaches one.
    shards: Option<Arc<ShardSet>>,
    /// Structured sink for data-plane incidents the hot path would
    /// otherwise swallow (warm-index drops on appends). Defaults to
    /// standard error; [`Server::with_event_log`] redirects it.
    event_log: EventLog,
}

/// One prepared SQL statement: the lowered plan plus the `FROM` table
/// name, so the route-matches-FROM check still runs on cache hits.
struct PreparedEntry {
    table: String,
    lowered: Arc<LoweredSql>,
    /// Approximate heap cost charged against [`PREPARED_CACHE_BYTES`].
    bytes: usize,
    /// LRU stamp: the cache clock at the entry's last touch.
    last_used: u64,
}

/// Prepared-statement cache entry bound. Statement texts and lowered ops
/// are small; with at most this many entries the O(n) LRU victim scan in
/// [`PreparedCache::insert`] is trivial.
const PREPARED_CACHE_CAP: usize = 256;

/// Prepared-statement cache byte budget over statement texts plus an
/// estimated per-op plan cost — the second bound that keeps a few huge
/// generated statements from pinning the whole cap.
const PREPARED_CACHE_BYTES: usize = 1 << 20;

/// LRU prepared-statement cache bounded by entries *and* bytes. Evictions
/// are one-at-a-time (oldest stamp first) and surface in the
/// `sql.prepared_evictions` counter rather than silently clearing the map.
#[derive(Default)]
struct PreparedCache {
    entries: HashMap<String, PreparedEntry>,
    bytes: usize,
    clock: u64,
}

impl PreparedCache {
    /// Look up a statement, refreshing its LRU stamp on hit.
    fn get(&mut self, src: &str) -> Option<(String, Arc<LoweredSql>)> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(src).map(|e| {
            e.last_used = clock;
            (e.table.clone(), Arc::clone(&e.lowered))
        })
    }

    /// Insert a statement, evicting least-recently-used entries until both
    /// budgets hold. Returns how many entries were evicted.
    fn insert(&mut self, src: String, table: String, lowered: Arc<LoweredSql>) -> u64 {
        let bytes = prepared_cost(&src, &lowered);
        if let Some(old) = self.entries.remove(&src) {
            self.bytes -= old.bytes;
        }
        let mut evicted = 0u64;
        while !self.entries.is_empty()
            && (self.entries.len() >= PREPARED_CACHE_CAP
                || self.bytes + bytes > PREPARED_CACHE_BYTES)
        {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim.and_then(|k| self.entries.remove(&k)) {
                Some(e) => {
                    self.bytes -= e.bytes;
                    evicted += 1;
                }
                None => break,
            }
        }
        self.clock += 1;
        self.bytes += bytes;
        self.entries.insert(
            src,
            PreparedEntry {
                table,
                lowered,
                bytes,
                last_used: self.clock,
            },
        );
        evicted
    }
}

/// Approximate heap cost of one prepared entry: the statement text, the
/// canonical cache path, and a flat per-op charge for the lowered plan.
fn prepared_cost(src: &str, lowered: &LoweredSql) -> usize {
    src.len() + lowered.cache_path.len() + lowered.ops.len() * 128 + 64
}

impl Server {
    /// Wrap a platform with a default-sized query cache.
    pub fn new(platform: Platform) -> Server {
        Server::with_cache(platform, QueryCache::default())
    }

    /// Wrap a platform with an explicitly sized query cache.
    pub fn with_cache(platform: Platform, cache: QueryCache) -> Server {
        Server {
            platform,
            cache: Arc::new(cache),
            results: Arc::new(ResultCache::default()),
            indexes: Arc::new(Mutex::new(HashMap::new())),
            hub: Arc::new(StreamHub::new()),
            prepared: Arc::new(Mutex::new(PreparedCache::default())),
            shards: None,
            event_log: EventLog::stderr(),
        }
    }

    /// Attach a shared-nothing shard set: endpoint snapshots are
    /// range-partitioned across `shards` in-process workers and
    /// splittable queries scatter over them with a router-side gather
    /// (see [`crate::shard`] — responses stay byte-identical to
    /// single-shard execution). `shards <= 1` leaves sharding off.
    pub fn with_shards(mut self, shards: usize) -> Server {
        if shards <= 1 {
            self.shards = None;
            return self;
        }
        let partitioning = Partitioning::even(shards);
        self.platform.set_partitioning(partitioning);
        self.shards = Some(Arc::new(ShardSet::new(
            partitioning,
            self.platform.api_metrics().clone(),
        )));
        self
    }

    /// Route data-plane events (`ingest_cold_rebuild`, …) to `log`
    /// instead of standard error.
    pub fn with_event_log(mut self, log: EventLog) -> Server {
        self.event_log = log;
        self
    }

    /// The wrapped platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The query-result cache (serialized page bodies).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The unpaged query-result cache pages are sliced from.
    pub fn result_cache(&self) -> &ResultCache {
        &self.results
    }

    /// The live-flow subscriber hub (serve layers register notifiers and
    /// drain subscriptions through it).
    pub fn stream_hub(&self) -> &Arc<StreamHub> {
        &self.hub
    }

    /// The attached shard set, when scatter/gather execution is enabled.
    pub fn shards(&self) -> Option<&Arc<ShardSet>> {
        self.shards.as_ref()
    }

    /// Per-shard worker counters for `/stats` and `/metrics` (empty when
    /// sharding is disabled).
    fn shard_worker_stats(&self) -> Vec<ShardWorkerStats> {
        self.shards
            .as_ref()
            .map(|s| s.worker_stats())
            .unwrap_or_default()
    }

    /// Drop every derived cache tier — page cache, result cache, indexed
    /// snapshots, shard-local slices and result caches — without touching
    /// endpoint data. Bench harnesses call this to force cold
    /// evaluations without restarting the server.
    pub fn clear_derived_caches(&self) {
        self.cache.clear();
        self.results.clear();
        self.indexes.lock().clear();
        if let Some(shards) = &self.shards {
            shards.clear_caches();
        }
    }

    /// Generation-stamped invalidation fan-out: drop the shard slices
    /// for `dashboard/dataset` after its data moved (append, stream
    /// tick, re-run or publish). Correctness never depends on this —
    /// every scatter carries the live generation and stale slices are
    /// refused by the workers — but eager fan-out frees worker memory
    /// and saves the reload round-trip on the next query.
    fn invalidate_shards(&self, dashboard: &str, dataset: &str) {
        if let Some(shards) = &self.shards {
            shards.invalidate(&format!("{dashboard}/{dataset}"));
        }
    }

    /// Dispatch a request, recording per-route metrics. A subscribe
    /// request handled this way (no serving loop to stream frames into)
    /// is registered and immediately unsubscribed.
    pub fn handle(&self, request: &Request) -> Response {
        let handled = self.handle_traced(request);
        if let Some(sub) = handled.stream {
            sub.close();
            self.hub.unsubscribe(&sub);
            self.platform.api_metrics().record_stream_unsubscribe();
        }
        handled.response
    }

    /// Dispatch a request with per-route metrics *and* tracing: a root
    /// span wraps router dispatch (with cache-lookup / query-eval /
    /// operator children hung off it), honoring a client-supplied
    /// `X-Trace-Id` header. Observability routes (`/stats`, `/metrics`,
    /// `/trace/*`) are never traced — scraping must not pollute the ring.
    pub fn handle_traced(&self, request: &Request) -> Handled {
        let started = Instant::now();
        let label = {
            let segments = request.segments();
            route_label(request.method, &segments)
        };
        let observability = matches!(
            label,
            "GET /stats" | "GET /metrics" | "GET /trace/recent" | "GET /trace/:id"
        );
        let root = if observability {
            None
        } else {
            let explicit = request.header("x-trace-id").and_then(TraceId::parse);
            self.platform.tracer().start_trace(label, explicit)
        };
        let mut stream = None;
        let response = match &root {
            Some(r) => {
                let dispatch_span = r.child("dispatch");
                let response = self.dispatch(request, Some(&dispatch_span), &mut stream);
                dispatch_span.finish();
                response
            }
            None => self.dispatch(request, None, &mut stream),
        };
        let elapsed_us = started.elapsed().as_micros() as u64;
        let trace_id = root.as_ref().map(Span::trace_id);
        if let Some(mut r) = root {
            r.set_attr("path", request.path.as_str());
            r.set_attr("status", i64::from(response.status.code()));
            r.finish();
        }
        self.platform
            .api_metrics()
            .record(label, response.is_ok(), elapsed_us);
        Handled {
            response,
            trace_id,
            elapsed_us,
            stream,
        }
    }

    fn dispatch(
        &self,
        request: &Request,
        span: Option<&Span>,
        stream: &mut Option<Arc<Subscription>>,
    ) -> Response {
        let segments = request.segments();
        match (request.method, segments.as_slice()) {
            (Method::Get, ["stats"]) => Response::json(stats_json(
                &self.platform.api_metrics().snapshot(),
                &self.cache.stats(),
                &self.platform.api_metrics().connections(),
                &self.platform.api_metrics().operators(),
                &self.platform.api_metrics().index(),
                &self.platform.api_metrics().reactor(),
                &self.platform.api_metrics().stream(),
                &self.platform.api_metrics().sql(),
                &self.platform.api_metrics().ingest(),
                &self.platform.api_metrics().shard(),
                &self.shard_worker_stats(),
                &self.platform.api_metrics().selfscrape(),
                &shareinsights_core::process_stats(),
            )),
            (Method::Get, ["metrics"]) => Response {
                status: Status::Ok,
                body: prometheus_text(
                    &self.platform.api_metrics().snapshot(),
                    &self.cache.stats(),
                    &self.platform.api_metrics().connections(),
                    &self.platform.api_metrics().operators(),
                    &self.platform.api_metrics().index(),
                    &self.platform.api_metrics().reactor(),
                    &self.platform.api_metrics().stream(),
                    &self.platform.api_metrics().sql(),
                    &self.platform.api_metrics().ingest(),
                    &self.platform.api_metrics().shard(),
                    &self.shard_worker_stats(),
                    &self.platform.api_metrics().selfscrape(),
                    &shareinsights_core::process_stats(),
                ),
                content_type: "text/plain; version=0.0.4",
            },
            (Method::Get, ["trace", "recent"]) => {
                let limit = request.query_usize("limit").unwrap_or(20);
                Response::json(trace_list_json(&self.platform.tracer().recent(limit)))
            }
            (Method::Get, ["trace", id]) => match TraceId::parse(id) {
                Some(tid) => match self.platform.tracer().find(tid) {
                    Some(trace) => Response::json(trace_json(&trace)),
                    None => Response::error(
                        Status::NotFound,
                        format!("no completed trace '{tid}' (evicted or never sampled?)"),
                    ),
                },
                None => Response::error(
                    Status::BadRequest,
                    format!("'{id}' is not a trace id (expected 1-16 hex digits)"),
                ),
            },
            (Method::Get, ["dashboards"]) => {
                Response::json(string_list(&self.platform.dashboard_names()))
            }
            (Method::Post, ["dashboards", name, "create"]) => {
                if let Some(resp) = reserved_namespace(name) {
                    return resp;
                }
                match self.platform.create_dashboard(name) {
                    Ok(()) => Response {
                        status: Status::Created,
                        body: format!("{{\"dashboard\": {}}}", crate::json::quote(name)),
                        content_type: "application/json",
                    },
                    Err(e) => Response::error(Status::Conflict, e.to_string()),
                }
            }
            (Method::Put, ["dashboards", name, "flow"]) => {
                if let Some(resp) = reserved_namespace(name) {
                    return resp;
                }
                match self.platform.save_flow(name, &request.body) {
                    Ok(warnings) => {
                        let w: Vec<String> = warnings.iter().map(|d| d.to_string()).collect();
                        Response::json(format!(
                            "{{\"saved\": true, \"warnings\": {}}}",
                            string_list(&w)
                        ))
                    }
                    Err(e) => Response::error(Status::Unprocessable, e.to_string()),
                }
            }
            (Method::Get, ["dashboards", name, "flow"]) => match self.platform.dashboard(name) {
                Ok(d) => Response::text(d.text),
                Err(e) => Response::error(Status::NotFound, e.to_string()),
            },
            (Method::Post, ["dashboards", name, "run"]) => {
                match self.platform.run_dashboard_traced(name, span) {
                    Ok(report) => {
                        let endpoints: Vec<String> = report.result.endpoints.to_vec();
                        for e in &endpoints {
                            self.invalidate_shards(name, e);
                        }
                        for (obj, _) in &report.published {
                            self.invalidate_shards(name, obj);
                        }
                        Response::json(format!(
                            "{{\"endpoints\": {}, \"published\": {}, \"source_rows\": {}}}",
                            string_list(&endpoints),
                            string_list(
                                &report
                                    .published
                                    .iter()
                                    .map(|(n, r)| format!("{n}:{r}"))
                                    .collect::<Vec<_>>()
                            ),
                            report.result.stats.source_rows
                        ))
                    }
                    Err(e) => Response::error(Status::Unprocessable, e.to_string()),
                }
            }
            (Method::Post, ["dashboards", from, "fork", to]) => {
                if let Some(resp) = reserved_namespace(to) {
                    return resp;
                }
                match self.platform.fork_dashboard(from, to, "api") {
                    Ok(()) => Response {
                        status: Status::Created,
                        body: format!("{{\"forked\": {}}}", crate::json::quote(to)),
                        content_type: "application/json",
                    },
                    Err(e) => Response::error(Status::Conflict, e.to_string()),
                }
            }
            (Method::Get, ["dashboards", name, "explore"]) => self.explore(name),
            (Method::Get, ["dashboards", name, "meta"]) => self.meta(name),
            (Method::Get, ["dashboards", name, "suggest", object]) => self.suggest(name, object),
            (Method::Get, ["dashboards", name, "log"]) => self.commit_log(name),
            // Continuous execution: start/stop a stream context, push
            // micro-batches into it.
            (Method::Post, ["dashboards", name, "stream", "start"]) => self.stream_start(name),
            (Method::Post, ["dashboards", name, "stream", "stop"]) => {
                let stopped = self.platform.stream_stop(name);
                Response::json(format!("{{\"stopped\": {stopped}}}"))
            }
            (Method::Post, ["dashboards", name, "stream", "push", source]) => {
                self.stream_push(name, source, &request.body, span)
            }
            // Bulk append: whole-body fallback for in-process callers;
            // the serve loops stream bodies into the same session
            // incrementally (see `crate::ingest`).
            (Method::Post, ["dashboards", name, "ds", dataset, "ingest"]) => {
                match crate::ingest::IngestSession::start(
                    self,
                    name,
                    dataset,
                    request.query.get("format").map(String::as_str),
                ) {
                    Ok(mut session) => {
                        session.push(request.body.as_bytes());
                        session.finish(span)
                    }
                    Err(resp) => resp,
                }
            }
            // Data API: /<dashboard>/ds[...]
            (Method::Get, [dashboard, "ds"]) => self.list_endpoints(dashboard),
            (Method::Get, [dashboard, "ds", dataset, "subscribe"]) => {
                self.subscribe(dashboard, dataset, stream)
            }
            (Method::Post, [dashboard, "ds", dataset, "sql"]) => {
                self.sql_query(request, dashboard, dataset, span)
            }
            (Method::Get, [dashboard, "ds", rest @ ..]) if !rest.is_empty() => {
                self.dataset(request, dashboard, rest[0], &rest[1..], span)
            }
            _ => {
                let allowed = allowed_methods(&segments);
                if allowed.is_empty() || allowed.contains(&request.method) {
                    Response::error(
                        Status::NotFound,
                        format!("no route for {} {}", request.method, request.path),
                    )
                } else {
                    let allow: Vec<String> = allowed.iter().map(|m| m.to_string()).collect();
                    Response {
                        status: Status::MethodNotAllowed,
                        body: format!(
                            "{{\"error\": {}, \"allow\": {}}}",
                            crate::json::quote(&format!(
                                "{} not allowed for {}",
                                request.method, request.path
                            )),
                            crate::json::quote(&allow.join(", "))
                        ),
                        content_type: "application/json",
                    }
                }
            }
        }
    }

    fn endpoint_table(&self, dashboard: &str, dataset: &str) -> Result<Table, Response> {
        // The `_system` dashboard is virtual: its datasets come from the
        // platform's telemetry history ring, not from any saved flow.
        // Intercepting here (plus in `live_generation`/`list_endpoints`)
        // is what lets the whole query stack — path grammar, SQL,
        // paging, caches, indexes, SSE — serve it unchanged.
        if dashboard == SYSTEM_DASHBOARD {
            return if dataset == TELEMETRY_DATASET {
                Ok(self.platform.telemetry_history().snapshot_table())
            } else {
                Err(Response::error(
                    Status::NotFound,
                    format!(
                        "no built-in dataset '{dataset}' under '{SYSTEM_DASHBOARD}' \
                         (only '{TELEMETRY_DATASET}')"
                    ),
                ))
            };
        }
        let d = self
            .platform
            .dashboard(dashboard)
            .map_err(|e| Response::error(Status::NotFound, e.to_string()))?;
        match d.endpoint_tables.get(dataset) {
            Some(t) => Ok(t.clone()),
            None => {
                // Shared objects are also browsable by name.
                match self
                    .platform
                    .publish_registry()
                    .get(dataset)
                    .and_then(|o| o.snapshot)
                {
                    Some(t) => Ok(t),
                    None => Err(Response::error(
                        Status::NotFound,
                        format!("no endpoint data '{dataset}' on dashboard '{dashboard}' (run it first?)"),
                    )),
                }
            }
        }
    }

    /// The generation-stamp formula shared with the query caches:
    /// dashboard runs and stream ticks bump the platform side,
    /// publishes bump the registry side.
    fn live_generation(&self, dashboard: &str, dataset: &str) -> u64 {
        // `_system` data advances exactly once per scrape tick, so the
        // ring generation alone stamps its cache entries and SSE frames.
        if dashboard == SYSTEM_DASHBOARD {
            return self.platform.telemetry_history().generation();
        }
        self.platform.data_generation(dashboard)
            + self.platform.publish_registry().generation(dataset)
    }

    /// One telemetry scrape tick: sample the whole
    /// [`ApiMetrics`](shareinsights_core::ApiMetrics) registry (plus the
    /// server-side cache and process families) into
    /// the history ring, record the scrape's own cost as
    /// `selfscrape` meta-telemetry, and fan the delta out to
    /// `_system/telemetry` SSE subscribers. The serving layer calls this
    /// on its scraper tick ([`crate::serve::ServeOptions::scrape_interval`]);
    /// tests and embedders may call it directly.
    pub fn scrape_telemetry(&self) -> shareinsights_core::ScrapeOutcome {
        use shareinsights_core::Sample;
        let started = Instant::now();
        let ts_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as i64)
            .unwrap_or(0);
        let qc = self.cache.stats();
        let rc = self.results.stats();
        let p = shareinsights_core::process_stats();
        let extra = vec![
            Sample::new("cache", "query_entries", qc.entries as i64),
            Sample::new("cache", "query_bytes", qc.bytes as i64),
            Sample::new("cache", "query_evictions", qc.evictions as i64),
            Sample::new("cache", "query_invalidations", qc.invalidations as i64),
            Sample::new("cache", "result_entries", rc.entries as i64),
            Sample::new("cache", "result_hits", rc.hits as i64),
            Sample::new("cache", "result_misses", rc.misses as i64),
            Sample::new("process", "rss_bytes", p.rss_bytes as i64),
            Sample::new("process", "open_fds", p.open_fds as i64),
            Sample::new("process", "threads", p.threads as i64),
            Sample::new("process", "uptime_seconds", p.uptime_seconds as i64),
        ];
        let metrics = self.platform.api_metrics();
        let outcome = self
            .platform
            .telemetry_history()
            .scrape(metrics, ts_us, extra);
        metrics.record_selfscrape(
            outcome.samples as u64,
            outcome.evicted as u64,
            outcome.retained as u64,
            started.elapsed().as_micros() as u64,
        );
        // Subscribers get just this tick's rows: a live widget appends
        // them, sparing the queues the full (budget-sized) snapshot. The
        // serialisation is skipped outright when nobody is subscribed —
        // the scraper ticks on an interval forever, so its idle cost must
        // stay negligible next to the serving path.
        if self
            .hub
            .has_subscribers(SYSTEM_DASHBOARD, TELEMETRY_DATASET)
        {
            let frame = sse_frame(
                TELEMETRY_DATASET,
                outcome.generation,
                &table_to_json(&outcome.delta),
            );
            let published = self
                .hub
                .publish(SYSTEM_DASHBOARD, TELEMETRY_DATASET, &frame);
            metrics.record_stream_frames(
                published.delivered as u64,
                (published.delivered * frame.len()) as u64,
            );
        }
        outcome
    }

    /// `POST /dashboards/:name/stream/start`: attach a continuous
    /// execution context to the dashboard's compiled pipeline.
    fn stream_start(&self, name: &str) -> Response {
        match self.platform.stream_start(name) {
            Ok(info) => Response::json(format!(
                "{{\"dashboard\": {}, \"sources\": {}, \"endpoints\": {}}}",
                crate::json::quote(&info.dashboard),
                string_list(&info.sources),
                string_list(&info.endpoints),
            )),
            Err(e) => Response::error(Status::Unprocessable, e.to_string()),
        }
    }

    /// `POST /dashboards/:name/stream/push/:source`: one CSV micro-batch
    /// in, one tick of endpoint snapshots out. Each updated endpoint is
    /// framed exactly once at the post-tick generation and the same
    /// bytes are fanned out to every subscriber — which is what makes
    /// the two serve modes byte-identical.
    fn stream_push(&self, name: &str, source: &str, csv: &str, span: Option<&Span>) -> Response {
        let mut tick_span = span.map(|s| s.child("stream_push"));
        let report = match self.platform.stream_push(name, source, csv) {
            Ok(r) => r,
            Err(e) => {
                if let Some(mut s) = tick_span.take() {
                    s.set_attr("error", true);
                    s.finish();
                }
                return Response::error(Status::Unprocessable, e.to_string());
            }
        };
        if let Some(s) = tick_span.as_mut() {
            s.set_attr("source", source);
            s.set_attr("rows_in", report.rows_in);
            s.set_attr("evicted_rows", report.evicted_rows);
            s.set_attr("generation", report.generation);
            // One grandchild per advanced object, tagged with the
            // execution strategy the continuous context chose for it.
            for (obj, strategy) in &report.strategies {
                let rows = report
                    .updated
                    .iter()
                    .find(|(n, _)| n == obj)
                    .map(|(_, r)| *r)
                    .unwrap_or(0);
                let mut child = s.child(obj);
                child.set_attr("op", "stream_tick");
                child.set_attr("strategy", *strategy);
                child.set_attr("rows_out", rows);
                child.finish();
            }
        }
        let mut frames = 0u64;
        let mut bytes = 0u64;
        for (dataset, _) in &report.updated {
            self.invalidate_shards(name, dataset);
            let Ok(table) = self.endpoint_table(name, dataset) else {
                continue;
            };
            let generation = self.live_generation(name, dataset);
            let frame = sse_frame(dataset, generation, &table_to_json(&table));
            let published = self.hub.publish(name, dataset, &frame);
            frames += published.delivered as u64;
            bytes += (published.delivered * frame.len()) as u64;
        }
        self.platform
            .api_metrics()
            .record_stream_frames(frames, bytes);
        if let Some(mut s) = tick_span.take() {
            s.set_attr("frames", frames);
            s.finish();
        }
        let updated: Vec<String> = report
            .updated
            .iter()
            .map(|(n, r)| format!("{n}:{r}"))
            .collect();
        Response::json(format!(
            "{{\"source\": {}, \"rows_in\": {}, \"evicted_rows\": {}, \
             \"generation\": {}, \"updated\": {}}}",
            crate::json::quote(source),
            report.rows_in,
            report.evicted_rows,
            report.generation,
            string_list(&updated),
        ))
    }

    /// Commit one finished ingest: reassemble the decoded segment tables
    /// into the append delta, swap the endpoint copy-on-write, bump the
    /// generation, and merge the warm [`IndexedTable`] in place instead
    /// of dropping it. Called by [`crate::ingest::IngestSession::finish`]
    /// after every segment decoded cleanly — a failed ingest never
    /// reaches this point, so the endpoint is all-or-nothing.
    pub(crate) fn commit_ingest(
        &self,
        dashboard: &str,
        dataset: &str,
        tables: &[Table],
        segments: u64,
        bytes_in: u64,
        span: Option<&Span>,
    ) -> Response {
        let metrics = self.platform.api_metrics().clone();
        let mut commit_span = span.map(|s| s.child("ingest_commit"));
        let fail = |mut sp: Option<Span>, status: Status, msg: String| {
            metrics.record_ingest_abort();
            if let Some(s) = sp.as_mut() {
                s.set_attr("error", true);
            }
            if let Some(s) = sp.take() {
                s.finish();
            }
            Response::error(status, msg)
        };
        let delta = match Table::concat_all(tables) {
            Ok(t) => t,
            Err(e) => {
                return fail(
                    commit_span,
                    Status::BadRequest,
                    format!("ingest segments do not share a schema: {e}"),
                )
            }
        };
        if delta.num_rows() == 0 {
            return fail(
                commit_span,
                Status::BadRequest,
                "ingest body contained no records".to_string(),
            );
        }
        let pre_generation = self.live_generation(dashboard, dataset);
        let report = match self
            .platform
            .append_endpoint(dashboard, dataset, delta.clone())
        {
            Ok(r) => r,
            Err(e) => return fail(commit_span, Status::Unprocessable, e.to_string()),
        };
        let generation = self.live_generation(dashboard, dataset);
        self.invalidate_shards(dashboard, dataset);
        let (index_merged, merge_us) =
            self.merge_index_on_append(dashboard, dataset, pre_generation, generation, &report);
        metrics.record_ingest_commit(report.rows_appended as u64, index_merged, merge_us);
        if let Some(s) = commit_span.as_mut() {
            s.set_attr("dataset", format!("{dashboard}/{dataset}"));
            s.set_attr("segments", segments);
            s.set_attr("bytes", bytes_in);
            s.set_attr("rows_appended", report.rows_appended as u64);
            s.set_attr("index_merged", index_merged);
        }
        // Live subscribers get just the appended rows as a delta frame at
        // the new generation (the snapshot frame at subscribe time plus
        // deltas reconstructs the endpoint, same as scrape ticks do).
        if self.hub.has_subscribers(dashboard, dataset) {
            let frame = sse_frame(dataset, generation, &table_to_json(&delta));
            let published = self.hub.publish(dashboard, dataset, &frame);
            metrics.record_stream_frames(
                published.delivered as u64,
                (published.delivered * frame.len()) as u64,
            );
        }
        if let Some(s) = commit_span.take() {
            s.finish();
        }
        Response::json(format!(
            "{{\"dashboard\": {}, \"dataset\": {}, \"rows_appended\": {}, \
             \"total_rows\": {}, \"generation\": {}, \"segments\": {}, \"index\": {}}}",
            crate::json::quote(&report.dashboard),
            crate::json::quote(&report.dataset),
            report.rows_appended,
            report.total_rows,
            report.generation,
            segments,
            crate::json::quote(if index_merged { "merged" } else { "cold" }),
        ))
    }

    /// Incremental index maintenance: if a warm [`IndexedTable`] exists
    /// for the endpoint, merge the appended rows into its dictionaries,
    /// postings and zone maps and re-stamp it at the new generation —
    /// instead of letting the generation bump drop it for a cold rebuild.
    /// The merge reuses the concatenated table the platform append
    /// already produced ([`shareinsights_core::platform::AppendReport::merged`]),
    /// so its cost is proportional to the delta, not the endpoint.
    /// Returns `(merged, merge_micros)`.
    fn merge_index_on_append(
        &self,
        dashboard: &str,
        dataset: &str,
        pre_generation: u64,
        new_generation: u64,
        report: &shareinsights_core::platform::AppendReport,
    ) -> (bool, u64) {
        let key = format!("{dashboard}/{dataset}");
        let warm = {
            let map = self.indexes.lock();
            // Merge only a wrapper stamped at the exact pre-append
            // generation — the same guard the query path applies. A stale
            // entry (a re-run or publish bumped the generation without
            // refreshing the registry) is missing those intervening rows;
            // merging it would stamp wrong data at the live generation.
            map.get(&key)
                .filter(|(g, _)| *g == pre_generation)
                .map(|(_, ix)| Arc::clone(ix))
        };
        let Some(warm) = warm else {
            return (false, 0);
        };
        // The committed table must be exactly the indexed rows plus this
        // delta; anything else means a writer raced the append and the
        // wrapper no longer covers the prefix.
        if warm.table().num_rows() + report.rows_appended != report.total_rows {
            self.indexes.lock().remove(&key);
            self.note_cold_rebuild(&key, "writer_raced", report);
            return (false, 0);
        }
        let started = std::time::Instant::now();
        match warm.append_merged(report.merged.clone()) {
            Ok(merged) if merged.table().num_rows() == report.total_rows => {
                let us = started.elapsed().as_micros() as u64;
                self.indexes
                    .lock()
                    .insert(key, (new_generation, Arc::new(merged)));
                (true, us)
            }
            Ok(_) | Err(_) => {
                // Merge not possible (schema drift under the wrapper):
                // drop it and fall back to a lazy cold rebuild.
                self.indexes.lock().remove(&key);
                self.note_cold_rebuild(&key, "schema_drift", report);
                (false, 0)
            }
        }
    }

    /// Surface a dropped warm index: the append could not be merged, so
    /// the next query pays a full rebuild. Until this counter and event
    /// existed the drop was silent — a schema-widening append would
    /// quietly turn every subsequent query cold with nothing in `/stats`
    /// or the logs explaining the latency cliff.
    fn note_cold_rebuild(
        &self,
        key: &str,
        reason: &str,
        report: &shareinsights_core::platform::AppendReport,
    ) {
        self.platform.api_metrics().record_ingest_cold_rebuild();
        self.event_log.emit(
            "ingest_cold_rebuild",
            &[
                ("dataset", key.into()),
                ("reason", reason.into()),
                ("rows_appended", (report.rows_appended as u64).into()),
                ("total_rows", (report.total_rows as u64).into()),
            ],
        );
    }

    /// `GET /:dashboard/ds/:dataset/subscribe`: register a live-flow
    /// subscriber. The subscription starts with a full snapshot frame at
    /// the current generation; later ticks append delta frames. The
    /// serving loop sees `Handled::stream` and switches the connection
    /// into SSE streaming mode.
    fn subscribe(
        &self,
        dashboard: &str,
        dataset: &str,
        stream: &mut Option<Arc<Subscription>>,
    ) -> Response {
        let table = match self.endpoint_table(dashboard, dataset) {
            Ok(t) => t,
            Err(resp) => return resp,
        };
        let generation = self.live_generation(dashboard, dataset);
        let sub = self.hub.subscribe(dashboard, dataset);
        let frame = sse_frame(dataset, generation, &table_to_json(&table));
        sub.offer(&frame);
        self.platform.api_metrics().record_stream_subscribe();
        self.platform
            .api_metrics()
            .record_stream_frames(1, frame.len() as u64);
        *stream = Some(sub);
        Response::json(format!(
            "{{\"subscribed\": {}, \"generation\": {generation}}}",
            crate::json::quote(&format!("{dashboard}/{dataset}")),
        ))
    }

    /// Figure 27: list endpoint data names.
    fn list_endpoints(&self, dashboard: &str) -> Response {
        if dashboard == SYSTEM_DASHBOARD {
            return Response::json(string_list(&[TELEMETRY_DATASET.to_string()]));
        }
        match self.platform.dashboard(dashboard) {
            Ok(d) => {
                let names: Vec<String> = d.endpoint_tables.keys().cloned().collect();
                Response::json(string_list(&names))
            }
            Err(e) => Response::error(Status::NotFound, e.to_string()),
        }
    }

    /// The indexed wrapper for an endpoint snapshot, rebuilt whenever the
    /// data generation moves. Index build durations are fed into the
    /// platform's [`shareinsights_core::telemetry::ApiMetrics`].
    fn indexed_table(
        &self,
        dashboard: &str,
        dataset: &str,
        generation: u64,
        table: Table,
    ) -> Arc<IndexedTable> {
        let key = format!("{dashboard}/{dataset}");
        {
            let map = self.indexes.lock();
            if let Some((g, ix)) = map.get(&key) {
                if *g == generation {
                    return Arc::clone(ix);
                }
            }
        }
        let metrics = self.platform.api_metrics().clone();
        let ix = Arc::new(IndexedTable::with_build_hook(
            table,
            Arc::new(move |us| metrics.record_index_build(us)),
        ));
        self.indexes
            .lock()
            .insert(key, (generation, Arc::clone(&ix)));
        ix
    }

    /// Figure 28 browse + figure 30 ad-hoc queries, behind the
    /// generation-stamped result caches: serialized page bodies in the
    /// [`QueryCache`], unpaged result tables in the [`ResultCache`] (so a
    /// new page slices the cached result instead of re-evaluating), and
    /// cold evaluations routed through the indexed snapshot when a
    /// per-column index covers the first operation.
    fn dataset(
        &self,
        request: &Request,
        dashboard: &str,
        dataset: &str,
        ops_segments: &[&str],
        span: Option<&Span>,
    ) -> Response {
        let label = if ops_segments.is_empty() {
            "GET /:dashboard/ds/:dataset"
        } else {
            "GET /:dashboard/ds/:dataset/query"
        };
        // The live generation: dashboard runs bump the platform side,
        // publishes/refreshes bump the registry side. Both are monotonic,
        // so their sum changes whenever either source of the data does.
        let generation = self.live_generation(dashboard, dataset);
        let ops = match parse_ops(ops_segments) {
            Ok(ops) => ops,
            Err(e) => {
                self.platform.api_metrics().record_sql_parse_error();
                return parse_error_response("parse", &e, 0, 0);
            }
        };
        let result_key = format!("{dashboard}/{dataset}/{}", ops_segments.join("/"));
        self.serve_query(
            request,
            label,
            dashboard,
            dataset,
            generation,
            &result_key,
            &ops,
            span,
        )
    }

    /// `POST /:dashboard/ds/:dataset/sql`: the SQL spelling of the ad-hoc
    /// query API. The request body is one SELECT statement whose `FROM`
    /// must name the URL's dataset; it parses and lowers into the same
    /// [`QueryOp`]s the path grammar produces, so evaluation, index
    /// acceleration and the generation-stamped caches are all shared —
    /// canonical plans even share cache *entries* with the GET route.
    fn sql_query(
        &self,
        request: &Request,
        dashboard: &str,
        dataset: &str,
        span: Option<&Span>,
    ) -> Response {
        let label = "POST /:dashboard/ds/:dataset/sql";
        let src = request.body.as_str();
        let parse_started = Instant::now();
        // Prepared-statement cache: hot statements skip parse + lower
        // entirely. Only the FROM-matches-dataset check re-runs, because
        // the same text can arrive on a different dataset's route.
        let hit = self.prepared.lock().get(src);
        if let Some((table, lowered)) = hit {
            if table != dataset {
                self.platform.api_metrics().record_sql_parse_error();
                return parse_error_response(
                    "semantic",
                    &format!("FROM names '{table}' but this route serves dataset '{dataset}'"),
                    0,
                    0,
                );
            }
            let parse_us = parse_started.elapsed().as_micros() as u64;
            let metrics = self.platform.api_metrics();
            metrics.record_sql_query(parse_us, lowered.shared);
            metrics.record_sql_prepared_hit();
            if let Some(s) = span {
                let mut p = s.child("sql_prepared_hit");
                p.set_attr("bytes", src.len());
                p.finish();
            }
            let generation = self.live_generation(dashboard, dataset);
            let result_key = format!("{dashboard}/{dataset}/{}", lowered.cache_path);
            return self.serve_query(
                request,
                label,
                dashboard,
                dataset,
                generation,
                &result_key,
                &lowered.ops,
                span,
            );
        }
        // Text → spanned AST → logical plan, under its own span so parse
        // cost is visible separately from server-side lowering.
        let mut parse_span = span.map(|s| s.child("sql_parse"));
        if let Some(s) = parse_span.as_mut() {
            s.set_attr("bytes", src.len());
        }
        let plan = match shareinsights_engine::sql::parse_select(src)
            .and_then(|stmt| shareinsights_engine::sql::lower(src, &stmt))
        {
            Ok(p) => p,
            Err(e) => {
                if let Some(mut s) = parse_span.take() {
                    s.set_attr("error", true);
                    s.finish();
                }
                self.platform.api_metrics().record_sql_parse_error();
                return parse_error_response("parse", &e.message, e.line, e.column);
            }
        };
        if let Some(s) = parse_span.take() {
            s.finish();
        }
        if plan.table != dataset {
            self.platform.api_metrics().record_sql_parse_error();
            return parse_error_response(
                "semantic",
                &format!(
                    "FROM names '{}' but this route serves dataset '{dataset}'",
                    plan.table
                ),
                0,
                0,
            );
        }
        // Logical plan → QueryOps (+ join resolution + canonical cache
        // path), the second half of the frontend.
        let mut lower_span = span.map(|s| s.child("sql_lower"));
        let lowered = match lower_plan(&plan, &mut |name| {
            self.endpoint_table(dashboard, name).map_err(|_| {
                format!(
                    "no endpoint data '{name}' on dashboard '{dashboard}' to join (run it first?)"
                )
            })
        }) {
            Ok(l) => l,
            Err(e) => {
                if let Some(mut s) = lower_span.take() {
                    s.set_attr("error", true);
                    s.finish();
                }
                self.platform.api_metrics().record_sql_parse_error();
                return parse_error_response("semantic", &e, 0, 0);
            }
        };
        let parse_us = parse_started.elapsed().as_micros() as u64;
        self.platform
            .api_metrics()
            .record_sql_query(parse_us, lowered.shared);
        if let Some(mut s) = lower_span.take() {
            s.set_attr("path_shared", lowered.shared);
            s.set_attr("stages", lowered.ops.len());
            s.set_attr("joins", lowered.join_tables.len());
            s.finish();
        }
        // Cache the lowered plan for the next identical statement. Plans
        // with joins embed resolved table snapshots at lower time, so
        // they must re-lower to see fresh data and are never cached.
        if lowered.join_tables.is_empty() {
            let evicted = self.prepared.lock().insert(
                src.to_string(),
                plan.table.clone(),
                Arc::new(lowered.clone()),
            );
            if evicted > 0 {
                self.platform
                    .api_metrics()
                    .record_sql_prepared_evictions(evicted);
            }
        }
        // Joined datasets contribute their publish generations so a
        // republish of the right side invalidates joined results too.
        let mut generation = self.live_generation(dashboard, dataset);
        for t in &lowered.join_tables {
            generation += self.platform.publish_registry().generation(t);
        }
        // Canonical plans compute the exact result key the GET route
        // would, which is what makes the two languages share entries.
        let result_key = format!("{dashboard}/{dataset}/{}", lowered.cache_path);
        self.serve_query(
            request,
            label,
            dashboard,
            dataset,
            generation,
            &result_key,
            &lowered.ops,
            span,
        )
    }

    /// The shared cache/evaluate/page tail of both ad-hoc query routes:
    /// page-cache lookup, result-cache lookup, indexed evaluation on a
    /// double miss, then paging + page-cache fill.
    #[allow(clippy::too_many_arguments)]
    fn serve_query(
        &self,
        request: &Request,
        label: &'static str,
        dashboard: &str,
        dataset: &str,
        generation: u64,
        result_key: &str,
        ops: &[QueryOp],
        span: Option<&Span>,
    ) -> Response {
        let offset = request.query_usize("offset").unwrap_or(0);
        let limit = request.query_usize("limit");
        let page_key = format!(
            "{result_key}?offset={offset}&limit={}",
            limit.map_or_else(|| "all".to_string(), |l| l.to_string()),
        );
        let cached = {
            let mut lookup_span = span.map(|s| s.child("cache_lookup"));
            let cached = self.cache.get(&page_key, generation);
            if let Some(s) = lookup_span.as_mut() {
                s.set_attr("hit", cached.is_some());
                s.set_attr("generation", generation);
            }
            cached
        };
        if let Some(body) = cached {
            self.platform.api_metrics().record_cache(label, true);
            return Response::json(body);
        }
        self.platform.api_metrics().record_cache(label, false);

        let mut eval_span = span.map(|s| s.child("query_eval"));
        let result = match self.results.get(result_key, generation) {
            Some(result) => {
                if let Some(s) = eval_span.as_mut() {
                    s.set_attr("result_cache_hit", true);
                }
                result
            }
            None => {
                let table = match self.endpoint_table(dashboard, dataset) {
                    Ok(t) => t,
                    Err(resp) => return resp,
                };
                let rows_in = table.num_rows();
                // Scatter/gather: with a shard set attached, a splittable
                // pipeline over a large-enough snapshot executes
                // shard-local with a router-side gather — byte-identical
                // to the single-shard path by construction (see
                // [`crate::shard`]). `None` means the planner declined
                // (unshardable head, lossy aggregate, tiny table) and the
                // query falls through to ordinary indexed evaluation.
                let sharded = self.shards.as_ref().and_then(|shards| {
                    shards.execute(
                        &format!("{dashboard}/{dataset}"),
                        generation,
                        result_key,
                        &table,
                        ops,
                        eval_span.as_mut(),
                    )
                });
                let (result, index_hit) = match sharded {
                    Some(Ok(r)) => r,
                    Some(Err(e)) => return Response::error(Status::BadRequest, e),
                    None => {
                        let indexed = self.indexed_table(dashboard, dataset, generation, table);
                        match run_query_indexed(&indexed, ops) {
                            Ok(r) => r,
                            Err(e) => return Response::error(Status::BadRequest, e),
                        }
                    }
                };
                self.platform.api_metrics().record_index_eval(index_hit);
                if let Some(s) = eval_span.as_mut() {
                    s.set_attr("result_cache_hit", false);
                    s.set_attr("index_hit", index_hit);
                    s.set_attr("rows_in", rows_in);
                }
                let result = Arc::new(result);
                self.results
                    .put(result_key, generation, Arc::clone(&result));
                result
            }
        };
        // Paging on the final result.
        let limit = limit.unwrap_or(result.num_rows());
        let page = result.slice(offset, limit);
        let body = table_to_json(&page);
        if let Some(mut s) = eval_span.take() {
            s.set_attr("rows_out", page.num_rows());
            s.set_attr("bytes", body.len());
            s.finish();
        }
        self.cache.put(&page_key, generation, body.clone());
        Response::json(body)
    }

    /// §6 meta-dashboard: run + profile every column, return the profile as
    /// JSON plus the data-quality warnings.
    fn meta(&self, dashboard: &str) -> Response {
        match self.platform.open_meta_dashboard(dashboard) {
            Ok((meta, _runtime)) => {
                let warnings = crate::json::string_list(&meta.warnings);
                Response::json(format!(
                    "{{\"profile\": {}, \"warnings\": {warnings}}}",
                    table_to_json(&meta.profile)
                ))
            }
            Err(e) => Response::error(Status::Unprocessable, e.to_string()),
        }
    }

    /// §6 dataset discovery: enrichment suggestions for one data object.
    fn suggest(&self, dashboard: &str, object: &str) -> Response {
        match self.platform.suggest_enrichments(dashboard, object) {
            Ok(suggestions) => {
                let items: Vec<String> = suggestions
                    .iter()
                    .map(|s| {
                        format!(
                            "{} via [{}] adds [{}]{}",
                            s.publish_name,
                            s.join_keys.join(","),
                            s.new_columns.join(","),
                            if s.key_is_unique { " (unique key)" } else { "" }
                        )
                    })
                    .collect();
                Response::json(crate::json::string_list(&items))
            }
            Err(e) => Response::error(Status::NotFound, e.to_string()),
        }
    }

    /// Commit history (§4.5.1: CRUD operations map to source commits).
    fn commit_log(&self, dashboard: &str) -> Response {
        match self.platform.dashboard(dashboard) {
            Ok(d) => match d.repo.log("main") {
                Ok(log) => {
                    let items: Vec<String> = log
                        .iter()
                        .map(|c| format!("{} {} {}: {}", c.seq, &c.id.0[..8], c.author, c.message))
                        .collect();
                    Response::json(crate::json::string_list(&items))
                }
                Err(e) => Response::error(Status::NotFound, e.to_string()),
            },
            Err(e) => Response::error(Status::NotFound, e.to_string()),
        }
    }

    /// Figure 29: the data explorer runs the dashboard headless and shows
    /// every endpoint as a pretty table.
    fn explore(&self, dashboard: &str) -> Response {
        let d = match self.platform.dashboard(dashboard) {
            Ok(d) => d,
            Err(e) => return Response::error(Status::NotFound, e.to_string()),
        };
        if d.endpoint_tables.is_empty() {
            return Response::text(format!(
                "dashboard '{dashboard}' has no endpoint data yet; POST /dashboards/{dashboard}/run first"
            ));
        }
        let mut out = String::new();
        for (name, table) in &d.endpoint_tables {
            out.push_str(&format!("== {name} ({} rows) ==\n", table.num_rows()));
            out.push_str(&table.pretty(25));
            out.push('\n');
        }
        Response::text(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
"#;

    fn served() -> Server {
        let platform = Platform::new();
        platform.upload_data(
            "retail",
            "sales.csv",
            "region,brand,revenue\nnorth,acme,10\nnorth,acme,5\nsouth,zest,20\nnorth,zest,1\n",
        );
        let server = Server::new(platform);
        assert!(server
            .handle(&Request::new(Method::Put, "/dashboards/retail/flow").with_body(FLOW))
            .is_ok());
        assert!(server
            .handle(&Request::new(Method::Post, "/dashboards/retail/run"))
            .is_ok());
        server
    }

    #[test]
    fn create_save_run_cycle_over_http() {
        let server = served();
        let r = server.handle(&Request::get("/dashboards"));
        assert!(r.body.contains("retail"));
        let r = server.handle(&Request::get("/retail/ds"));
        assert_eq!(r.body, "[\"brand_sales\"]");
    }

    #[test]
    fn browse_endpoint_with_paging() {
        let server = served();
        let r = server.handle(&Request::get("/retail/ds/brand_sales"));
        assert!(r.is_ok());
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("total_rows").unwrap().to_value().as_int(), Some(3));

        let r = server.handle(&Request::get("/retail/ds/brand_sales?limit=1&offset=1"));
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("total_rows").unwrap().to_value().as_int(), Some(1));
    }

    #[test]
    fn figure30_adhoc_query_url() {
        let server = served();
        let r = server.handle(&Request::get(
            "/retail/ds/brand_sales/groupby/region/count/brand",
        ));
        assert!(r.is_ok(), "{}", r.body);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("columns.1").unwrap().as_str(), Some("count_brand"));
        assert_eq!(doc.path("rows.0.1").unwrap().to_value().as_int(), Some(2));
    }

    #[test]
    fn chained_query_url() {
        let server = served();
        let r = server.handle(&Request::get(
            "/retail/ds/brand_sales/filter/region/north/sort/revenue/desc/limit/1",
        ));
        assert!(r.is_ok());
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("rows.0.1").unwrap().as_str(), Some("acme"));
    }

    #[test]
    fn explorer_headless_mode() {
        let server = served();
        let r = server.handle(&Request::get("/dashboards/retail/explore"));
        assert!(r.is_ok());
        assert!(r.body.contains("== brand_sales (3 rows) =="));
        assert!(r.body.contains("region"));
    }

    #[test]
    fn errors_have_useful_statuses() {
        let server = served();
        let r = server.handle(&Request::get("/ghost/ds"));
        assert_eq!(r.status, Status::NotFound);
        let r = server.handle(&Request::get("/retail/ds/ghost_data"));
        assert_eq!(r.status, Status::NotFound);
        assert!(r.body.contains("run it first"));
        let r = server.handle(&Request::get("/retail/ds/brand_sales/warp/9"));
        assert_eq!(r.status, Status::BadRequest);
        assert!(r.body.contains("unknown query operation"), "{}", r.body);
        let r = server.handle(&Request::get(
            "/retail/ds/brand_sales/groupby/region/bogus/brand",
        ));
        assert_eq!(r.status, Status::BadRequest);
        assert!(r.body.contains("unknown aggregate"), "{}", r.body);
        let r = server.handle(&Request::get("/retail/ds/brand_sales/limit/abc"));
        assert_eq!(r.status, Status::BadRequest, "non-numeric limit");
        let r = server
            .handle(&Request::new(Method::Put, "/dashboards/bad/flow").with_body("Q:\n  x: 1\n"));
        assert_eq!(r.status, Status::Unprocessable);
        let r = server.handle(&Request::new(Method::Post, "/dashboards/retail/create"));
        assert_eq!(r.status, Status::Conflict);
        let r = server.handle(&Request::get("/no/such/route/here"));
        assert_eq!(r.status, Status::NotFound);
    }

    #[test]
    fn wrong_method_is_405_with_allow_list() {
        let server = served();
        let r = server.handle(&Request::new(Method::Post, "/dashboards"));
        assert_eq!(r.status, Status::MethodNotAllowed);
        assert!(r.body.contains("\"allow\": \"GET\""), "{}", r.body);
        let r = server.handle(&Request::new(Method::Delete, "/dashboards/retail/flow"));
        assert_eq!(r.status, Status::MethodNotAllowed);
        assert!(r.body.contains("GET, PUT"), "{}", r.body);
        let r = server.handle(&Request::get("/dashboards/retail/run"));
        assert_eq!(r.status, Status::MethodNotAllowed);
        // Unknown shapes stay 404 even with a weird method.
        let r = server.handle(&Request::new(Method::Delete, "/no/such/route/here"));
        assert_eq!(r.status, Status::NotFound);
    }

    #[test]
    fn repeated_query_hits_cache_and_run_invalidates() {
        let server = served();
        let url = "/retail/ds/brand_sales/groupby/region/count/brand";
        let first = server.handle(&Request::get(url));
        assert!(first.is_ok());
        let second = server.handle(&Request::get(url));
        assert_eq!(second.body, first.body);
        let s = server.cache().stats();
        assert_eq!((s.hits, s.misses), (1, 1));

        // A re-run bumps the dashboard's data generation → miss.
        assert!(server
            .handle(&Request::new(Method::Post, "/dashboards/retail/run"))
            .is_ok());
        assert!(server.handle(&Request::get(url)).is_ok());
        let s = server.cache().stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    }

    #[test]
    fn paging_slices_cached_result_without_reevaluating() {
        let server = served();
        server.handle(&Request::get("/retail/ds/brand_sales?limit=1"));
        server.handle(&Request::get("/retail/ds/brand_sales?limit=1&offset=1"));
        server.handle(&Request::get("/retail/ds/brand_sales/limit/1"));
        // Distinct pages and ops are distinct serialized bodies...
        assert_eq!(server.cache().stats().entries, 3);
        assert_eq!(server.cache().stats().hits, 0);
        // ...but the second page sliced the unpaged result cached by the
        // first instead of re-evaluating the query; `limit/1` is a
        // different query, so it evaluated.
        let rs = server.result_cache().stats();
        assert_eq!((rs.hits, rs.misses), (1, 2));
        assert_eq!(rs.entries, 2);
    }

    #[test]
    fn paged_bodies_agree_with_unpaged_slices() {
        let server = served();
        let full = server.handle(&Request::get("/retail/ds/brand_sales"));
        let p0 = server.handle(&Request::get("/retail/ds/brand_sales?limit=2"));
        let p1 = server.handle(&Request::get("/retail/ds/brand_sales?limit=2&offset=2"));
        let full_doc = shareinsights_tabular::io::json::parse_json(&full.body).unwrap();
        let p0_doc = shareinsights_tabular::io::json::parse_json(&p0.body).unwrap();
        let p1_doc = shareinsights_tabular::io::json::parse_json(&p1.body).unwrap();
        assert_eq!(
            p0_doc.path("total_rows").unwrap().to_value().as_int(),
            Some(2)
        );
        assert_eq!(
            p1_doc.path("total_rows").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            full_doc.path("rows.2").unwrap().to_string(),
            p1_doc.path("rows.0").unwrap().to_string(),
            "page 2 starts where the full result's third row is"
        );
    }

    #[test]
    fn stats_and_metrics_expose_index_counters() {
        let server = served();
        // A covered query: Utf8 key, sum over Int64 → indexed path.
        server.handle(&Request::get(
            "/retail/ds/brand_sales/groupby/region/sum/revenue",
        ));
        // An uncovered query shape → scan fallback.
        server.handle(&Request::get("/retail/ds/brand_sales/distinct/region"));
        let r = server.handle(&Request::get("/stats"));
        assert!(r.is_ok(), "{}", r.body);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        let builds = doc
            .path("index.builds")
            .unwrap()
            .to_value()
            .as_int()
            .unwrap();
        assert!(builds >= 1, "dictionary build on 'region': {builds}");
        assert_eq!(
            doc.path("index.covered").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("index.fallback").unwrap().to_value().as_int(),
            Some(1)
        );
        let build_us = doc
            .path("index.build_us")
            .unwrap()
            .to_value()
            .as_int()
            .unwrap();
        assert!(build_us >= 0);
        let m = server.handle(&Request::get("/metrics"));
        assert!(
            m.body.contains("shareinsights_index_builds_total"),
            "{}",
            m.body
        );
        assert!(
            m.body.contains("shareinsights_index_covered_evals_total 1"),
            "{}",
            m.body
        );
        assert!(
            m.body
                .contains("shareinsights_index_fallback_evals_total 1"),
            "{}",
            m.body
        );
        assert!(m.body.contains("shareinsights_index_build_seconds_total"));
    }

    #[test]
    fn rerun_drops_stale_indexed_snapshot() {
        let server = served();
        let url = "/retail/ds/brand_sales/groupby/region/sum/revenue";
        assert!(server.handle(&Request::get(url)).is_ok());
        let builds_before = server.platform().api_metrics().index().builds;
        assert!(builds_before >= 1);
        // A re-run bumps the generation: the stale wrapper is replaced and
        // the index is rebuilt on the next cold query.
        assert!(server
            .handle(&Request::new(Method::Post, "/dashboards/retail/run"))
            .is_ok());
        assert!(server.handle(&Request::get(url)).is_ok());
        let ix = server.platform().api_metrics().index();
        assert!(ix.builds > builds_before, "index rebuilt after run");
        assert_eq!(ix.covered, 2);
    }

    #[test]
    fn stats_route_reports_routes_and_cache() {
        let server = served();
        let url = "/retail/ds/brand_sales/groupby/region/count/brand";
        server.handle(&Request::get(url));
        server.handle(&Request::get(url));
        server.handle(&Request::get("/retail/ds/ghost_data"));
        let r = server.handle(&Request::get("/stats"));
        assert!(r.is_ok(), "{}", r.body);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        let q = "routes.GET /:dashboard/ds/:dataset/query";
        assert_eq!(
            doc.path(&format!("{q}.count")).unwrap().to_value().as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path(&format!("{q}.cache_hits"))
                .unwrap()
                .to_value()
                .as_int(),
            Some(1)
        );
        // The ghost browse is an error under the browse label.
        assert_eq!(
            doc.path("routes.GET /:dashboard/ds/:dataset.errors")
                .unwrap()
                .to_value()
                .as_int(),
            Some(1)
        );
        assert_eq!(doc.path("cache.hits").unwrap().to_value().as_int(), Some(1));
        // Latency quantiles are present and sane.
        let p95 = doc
            .path(&format!("{q}.p95_us"))
            .unwrap()
            .to_value()
            .as_int()
            .unwrap();
        let max = doc
            .path(&format!("{q}.max_us"))
            .unwrap()
            .to_value()
            .as_int()
            .unwrap();
        assert!(p95 <= max.max(1), "p95 {p95} vs max {max}");
    }

    #[test]
    fn publish_refresh_invalidates_shared_object_cache() {
        let server = served();
        let with_publish = FLOW.replace(
            "F:\n  +D.brand_sales: D.sales | T.by_brand\n",
            "F:\n  +D.brand_sales: D.sales | T.by_brand\n  D.brand_sales:\n    publish: brand_sales\n",
        );
        server
            .handle(&Request::new(Method::Put, "/dashboards/retail/flow").with_body(&with_publish));
        server.handle(&Request::new(Method::Post, "/dashboards/retail/run"));
        server.handle(&Request::new(Method::Post, "/dashboards/viewer/create"));

        let url = "/viewer/ds/brand_sales";
        assert!(server.handle(&Request::get(url)).is_ok());
        assert!(server.handle(&Request::get(url)).is_ok());
        assert_eq!(server.cache().stats().hits, 1);

        // Re-running the producer refreshes the published snapshot, which
        // bumps the registry generation seen by the consumer dashboard.
        server.handle(&Request::new(Method::Post, "/dashboards/retail/run"));
        assert!(server.handle(&Request::get(url)).is_ok());
        let s = server.cache().stats();
        assert_eq!((s.hits, s.invalidations), (1, 1));
    }

    #[test]
    fn fork_route() {
        let server = served();
        let r = server.handle(&Request::new(
            Method::Post,
            "/dashboards/retail/fork/team_1",
        ));
        assert_eq!(r.status, Status::Created);
        let r = server.handle(&Request::get("/dashboards/team_1/flow"));
        assert!(r.body.contains("brand_sales"));
    }

    #[test]
    fn meta_route_profiles_columns() {
        let server = served();
        let r = server.handle(&Request::get("/dashboards/retail/meta"));
        assert!(r.is_ok(), "{}", r.body);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        // Profile covers sales (source) and brand_sales (sink) columns.
        let cols = doc.path("profile.columns").unwrap();
        assert!(cols.to_string().contains("nulls"));
        assert!(r.body.contains("brand_sales"));
        // The generated meta dashboard now exists.
        let r = server.handle(&Request::get("/dashboards/retail__meta/flow"));
        assert!(r.body.contains("Data Quality Meta-Dashboard"));
    }

    #[test]
    fn suggest_route_finds_joinable_shared_objects() {
        let server = served();
        // Publish a dimension from another dashboard sharing 'brand'.
        server
            .platform()
            .publish_registry()
            .publish(
                "brand_dim",
                "other_dash",
                "brands",
                shareinsights_tabular::Schema::of(&[
                    ("brand", shareinsights_tabular::DataType::Utf8),
                    ("owner", shareinsights_tabular::DataType::Utf8),
                ]),
                None,
            )
            .unwrap();
        let r = server.handle(&Request::get("/dashboards/retail/suggest/brand_sales"));
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("brand_dim"), "{}", r.body);
        assert!(r.body.contains("adds [owner]"), "{}", r.body);

        let r = server.handle(&Request::get("/dashboards/retail/suggest/ghost"));
        assert_eq!(r.status, Status::NotFound);
    }

    #[test]
    fn commit_log_route() {
        let server = served();
        server.handle(&Request::new(Method::Put, "/dashboards/retail/flow").with_body(FLOW));
        let r = server.handle(&Request::get("/dashboards/retail/log"));
        assert!(r.is_ok());
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert!(doc.items().len() >= 2, "{}", r.body);
        assert!(r.body.contains("save"));
    }

    #[test]
    fn metrics_route_exposes_prometheus_families() {
        let server = served();
        let url = "/retail/ds/brand_sales/groupby/region/count/brand";
        server.handle(&Request::get(url));
        server.handle(&Request::get(url));
        let r = server.handle(&Request::get("/metrics"));
        assert!(r.is_ok());
        assert_eq!(r.content_type, "text/plain; version=0.0.4");
        assert!(
            r.body
                .contains("shareinsights_requests_total{route=\"POST /dashboards/:name/run\"} 1"),
            "{}",
            r.body
        );
        assert!(r.body.contains(
            "shareinsights_route_cache_hits_total{route=\"GET /:dashboard/ds/:dataset/query\"} 1"
        ));
        // The dashboard run folded per-operator histograms into the registry.
        assert!(
            r.body
                .contains("shareinsights_operator_runs_total{operator=\"groupby\"} 1"),
            "{}",
            r.body
        );
        assert!(r
            .body
            .contains("# TYPE shareinsights_operator_duration_seconds histogram"));
        // Scraping /metrics does not record a trace.
        let before = server.platform().tracer().len();
        server.handle(&Request::get("/metrics"));
        server.handle(&Request::get("/stats"));
        server.handle(&Request::get("/trace/recent"));
        assert_eq!(server.platform().tracer().len(), before);
    }

    #[test]
    fn explicit_trace_id_is_honored_and_fetchable() {
        let server = served();
        let r = server.handle(
            &Request::get("/retail/ds/brand_sales/groupby/region/count/brand")
                .with_header("X-Trace-Id", "10adc0de00000001"),
        );
        assert!(r.is_ok());
        let r = server.handle(&Request::get("/trace/10adc0de00000001"));
        assert!(r.is_ok(), "{}", r.body);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(
            doc.path("trace_id").unwrap().to_value().as_str(),
            Some("10adc0de00000001")
        );
        assert_eq!(
            doc.path("root.name").unwrap().to_value().as_str(),
            Some("GET /:dashboard/ds/:dataset/query")
        );
        // Root → dispatch → {cache_lookup, query_eval}.
        assert_eq!(
            doc.path("root.children.0.name")
                .unwrap()
                .to_value()
                .as_str(),
            Some("dispatch")
        );
        let body = &r.body;
        assert!(body.contains("\"cache_lookup\""), "{body}");
        assert!(body.contains("\"query_eval\""), "{body}");
        assert!(body.contains("\"rows_in\": 3"), "{body}");
        // Cold evaluation spans say how the query routed.
        assert!(body.contains("\"index_hit\""), "{body}");
        assert!(body.contains("\"result_cache_hit\": 0"), "{body}");
    }

    #[test]
    fn run_trace_grafts_operator_spans() {
        let server = served();
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/run").with_header("x-trace-id", "beef"),
        );
        assert!(r.is_ok());
        let r = server.handle(&Request::get("/trace/beef"));
        assert!(r.is_ok(), "{}", r.body);
        // compile + execute children under dispatch, operator span with row
        // counts under execute.
        assert!(r.body.contains("\"compile\""), "{}", r.body);
        assert!(r.body.contains("\"execute\""), "{}", r.body);
        assert!(r.body.contains("\"brand_sales\""), "{}", r.body);
        assert!(r.body.contains("\"op\": \"groupby\""), "{}", r.body);
        assert!(r.body.contains("\"rows_in\": 4"), "{}", r.body);
        assert!(r.body.contains("\"rows_out\": 3"), "{}", r.body);
        assert!(r.body.contains("\"op\": \"source\""), "{}", r.body);
    }

    #[test]
    fn trace_recent_lists_newest_first_with_limit() {
        let server = served();
        for i in 0..3 {
            server.handle(
                &Request::get("/retail/ds/brand_sales")
                    .with_header("x-trace-id", format!("{:x}", 0xa0 + i)),
            );
        }
        let r = server.handle(&Request::get("/trace/recent?limit=2"));
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("traces").unwrap().items().len(), 2);
        assert_eq!(
            doc.path("traces.0.trace_id").unwrap().to_value().as_str(),
            Some("00000000000000a2")
        );
    }

    #[test]
    fn trace_errors_and_sampling_off() {
        let server = served();
        let r = server.handle(&Request::get("/trace/zzz"));
        assert_eq!(r.status, Status::BadRequest);
        assert!(r.body.contains("not a trace id"), "{}", r.body);
        let r = server.handle(&Request::get("/trace/deadbeef"));
        assert_eq!(r.status, Status::NotFound);

        // sampling 0 disables tracing entirely, even for explicit ids.
        server.platform().tracer().set_sample_one_in(0);
        let before = server.platform().tracer().len();
        server.handle(&Request::get("/retail/ds/brand_sales").with_header("x-trace-id", "77"));
        assert_eq!(server.platform().tracer().len(), before);
        let r = server.handle(&Request::get("/trace/77"));
        assert_eq!(r.status, Status::NotFound);
    }

    #[test]
    fn handle_traced_reports_id_and_latency() {
        let server = served();
        let h = server.handle_traced(
            &Request::get("/retail/ds/brand_sales").with_header("x-trace-id", "c0ffee"),
        );
        assert!(h.response.is_ok());
        assert_eq!(h.trace_id, Some(TraceId(0xc0ffee)));
        // Observability routes carry no trace id.
        let h = server.handle_traced(&Request::get("/stats"));
        assert!(h.response.is_ok());
        assert_eq!(h.trace_id, None);
    }

    #[test]
    fn stream_start_push_updates_endpoint_and_invalidates_cache() {
        let server = served();
        let url = "/retail/ds/brand_sales";
        assert!(server.handle(&Request::get(url)).is_ok());
        assert!(server.handle(&Request::get(url)).is_ok());
        assert_eq!(server.cache().stats().hits, 1);

        let r = server.handle(&Request::new(
            Method::Post,
            "/dashboards/retail/stream/start",
        ));
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("\"sources\": [\"sales\"]"), "{}", r.body);
        assert!(
            r.body.contains("\"endpoints\": [\"brand_sales\"]"),
            "{}",
            r.body
        );

        // Declared columns [region, brand, revenue] → headerless CSV.
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/stream/push/sales")
                .with_body("west,acme,7\nwest,acme,3\n"),
        );
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("\"rows_in\": 2"), "{}", r.body);
        assert!(r.body.contains("brand_sales:1"), "{}", r.body);

        // The stream tick bumped the generation: cached pages are stale.
        let r = server.handle(&Request::get(url));
        assert!(r.is_ok());
        assert!(r.body.contains("west"), "{}", r.body);
        let s = server.cache().stats();
        assert_eq!((s.hits, s.invalidations), (1, 1));

        // Pushing into a non-source or without a stream is rejected.
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/stream/push/ghost")
                .with_body("a,b,1\n"),
        );
        assert_eq!(r.status, Status::Unprocessable);
        let r = server.handle(&Request::new(
            Method::Post,
            "/dashboards/retail/stream/stop",
        ));
        assert!(r.body.contains("\"stopped\": true"), "{}", r.body);
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/stream/push/sales")
                .with_body("a,b,1\n"),
        );
        assert_eq!(r.status, Status::Unprocessable);
        assert!(r.body.contains("no active stream"), "{}", r.body);
    }

    #[test]
    fn subscribe_returns_stream_with_snapshot_frame() {
        let server = served();
        let h = server.handle_traced(&Request::get("/retail/ds/brand_sales/subscribe"));
        assert!(h.response.is_ok(), "{}", h.response.body);
        let sub = h.stream.expect("subscription attached");
        let (frames, end) = sub.try_take();
        assert_eq!(frames.len(), 1, "initial snapshot frame");
        assert_eq!(end, crate::stream::SubscriptionEnd::Open);
        let mut parser = crate::wire::SseParser::new();
        let events = parser.feed(&frames[0]).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, "brand_sales");
        assert!(events[0].data.contains("total_rows"), "{}", events[0].data);
        let snapshot_generation = events[0].id;

        // A push delivers a delta frame with a larger generation.
        server.handle(&Request::new(
            Method::Post,
            "/dashboards/retail/stream/start",
        ));
        server.handle(
            &Request::new(Method::Post, "/dashboards/retail/stream/push/sales")
                .with_body("east,zest,9\n"),
        );
        let (frames, _) = sub.try_take();
        assert_eq!(frames.len(), 1);
        let events = parser.feed(&frames[0]).unwrap();
        assert!(events[0].id > snapshot_generation);
        assert!(events[0].data.contains("east"), "{}", events[0].data);

        // The serving loop's tidy-up: deregister and drop the gauge.
        server.stream_hub().unsubscribe(&sub);
        server.platform().api_metrics().record_stream_unsubscribe();
        assert_eq!(server.stream_hub().subscriber_count(), 0);

        // Subscribing to a dataset that doesn't exist is a 404; handle()
        // without a serving loop tidies its short-lived subscription.
        let r = server.handle(&Request::get("/retail/ds/ghost/subscribe"));
        assert_eq!(r.status, Status::NotFound);
        let r = server.handle(&Request::get("/retail/ds/brand_sales/subscribe"));
        assert!(r.is_ok());
        assert_eq!(server.stream_hub().subscriber_count(), 0);
        assert_eq!(server.platform().api_metrics().stream().subscribers, 0);
    }

    #[test]
    fn stream_metrics_surface_in_stats_and_metrics() {
        let server = served();
        server.handle(&Request::new(
            Method::Post,
            "/dashboards/retail/stream/start",
        ));
        server.handle(
            &Request::new(Method::Post, "/dashboards/retail/stream/push/sales")
                .with_body("north,acme,2\n"),
        );
        let r = server.handle(&Request::get("/stats"));
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(
            doc.path("stream.ticks").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("stream.rows_in").unwrap().to_value().as_int(),
            Some(1)
        );
        let m = server.handle(&Request::get("/metrics"));
        assert!(
            m.body.contains("shareinsights_stream_ticks_total 1"),
            "{}",
            m.body
        );
        assert!(m.body.contains("shareinsights_stream_rows_in_total 1"));
        assert!(m
            .body
            .contains("# TYPE shareinsights_stream_subscribers gauge"));
    }

    fn post_sql(server: &Server, query: &str) -> Response {
        server.handle(&Request::new(Method::Post, "/retail/ds/brand_sales/sql").with_body(query))
    }

    #[test]
    fn sql_route_matches_path_route_byte_for_byte() {
        let server = served();
        let via_path = server.handle(&Request::get(
            "/retail/ds/brand_sales/groupby/region/sum/revenue",
        ));
        let via_sql = post_sql(
            &server,
            "select region, sum(revenue) from brand_sales group by region",
        );
        assert!(via_sql.is_ok(), "{}", via_sql.body);
        assert_eq!(via_path.body, via_sql.body);

        // A shape the path grammar can't spell still evaluates.
        let r = post_sql(
            &server,
            "select region, brand from brand_sales where revenue > 5 order by revenue desc",
        );
        assert!(r.is_ok(), "{}", r.body);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("columns.0").unwrap().as_str(), Some("region"));
        assert_eq!(doc.path("columns.1").unwrap().as_str(), Some("brand"));
    }

    #[test]
    fn canonical_sql_shares_cache_entries_with_path_route() {
        let server = served();
        server.handle(&Request::get(
            "/retail/ds/brand_sales/groupby/region/sum/revenue",
        ));
        let before = server.cache().stats();
        assert_eq!((before.hits, before.entries), (0, 1));
        // The equivalent SQL computes the same page key → a cache *hit*,
        // not a second entry.
        let r = post_sql(
            &server,
            "select region, sum(revenue) from brand_sales group by region",
        );
        assert!(r.is_ok());
        let after = server.cache().stats();
        assert_eq!((after.hits, after.entries), (1, 1));
        let sql = server.platform().api_metrics().sql();
        assert_eq!((sql.queries, sql.path_shared), (1, 1));
    }

    #[test]
    fn sql_results_cache_and_invalidate_on_generation() {
        let server = served();
        // Non-canonical shape: keyed under its own `sql:` result key.
        let q = "select region, brand from brand_sales where revenue > 5";
        assert!(post_sql(&server, q).is_ok());
        assert!(post_sql(&server, q).is_ok());
        let s = server.cache().stats();
        assert_eq!((s.hits, s.misses), (1, 1), "same text → page-cache hit");
        // A re-run bumps the generation: the cached entry is stale.
        assert!(server
            .handle(&Request::new(Method::Post, "/dashboards/retail/run"))
            .is_ok());
        assert!(post_sql(&server, q).is_ok());
        let s = server.cache().stats();
        assert_eq!((s.hits, s.misses), (1, 2), "new generation → miss");
        let sql = server.platform().api_metrics().sql();
        assert_eq!((sql.queries, sql.path_shared, sql.parse_errors), (3, 0, 0));
    }

    #[test]
    fn malformed_queries_return_the_same_structured_400_on_both_routes() {
        let server = served();
        // SQL route: spanned diagnostic.
        let r = post_sql(&server, "select from brand_sales");
        assert_eq!(r.status, Status::BadRequest);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("error.kind").unwrap().as_str(), Some("parse"));
        assert_eq!(doc.path("error.line").unwrap().to_value().as_int(), Some(1));
        assert_eq!(
            doc.path("error.column").unwrap().to_value().as_int(),
            Some(8)
        );
        assert!(doc.path("error.message").unwrap().as_str().is_some());
        // Path route: same shape, position unknown (line/column 0).
        let r = server.handle(&Request::get("/retail/ds/brand_sales/warp/9"));
        assert_eq!(r.status, Status::BadRequest);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("error.kind").unwrap().as_str(), Some("parse"));
        assert_eq!(doc.path("error.line").unwrap().to_value().as_int(), Some(0));
        assert!(doc
            .path("error.message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown query operation"));
        // Both rejections land on the shared counter.
        assert_eq!(server.platform().api_metrics().sql().parse_errors, 2);
    }

    #[test]
    fn sql_from_must_name_the_url_dataset() {
        let server = served();
        let r = post_sql(&server, "select * from other_table");
        assert_eq!(r.status, Status::BadRequest);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("error.kind").unwrap().as_str(), Some("semantic"));
        assert!(doc
            .path("error.message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("brand_sales"));
    }

    #[test]
    fn sql_join_resolves_sibling_endpoints() {
        let server = served();
        // Self-join on the grouping key: every row matches itself (and the
        // other rows sharing its region).
        let r = post_sql(
            &server,
            "select * from brand_sales join brand_sales on region = region limit 2",
        );
        assert!(r.is_ok(), "{}", r.body);
        // A join against a missing endpoint is a structured 400.
        let r = post_sql(&server, "select * from brand_sales join ghost on a = b");
        assert_eq!(r.status, Status::BadRequest);
        assert!(r.body.contains("no endpoint data 'ghost'"), "{}", r.body);
    }

    #[test]
    fn sql_counters_surface_in_stats_and_metrics() {
        let server = served();
        post_sql(
            &server,
            "select region, sum(revenue) from brand_sales group by region",
        );
        post_sql(&server, "not sql at all");
        let r = server.handle(&Request::get("/stats"));
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(
            doc.path("sql.queries").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("sql.parse_errors").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("sql.path_shared").unwrap().to_value().as_int(),
            Some(1)
        );
        let m = server.handle(&Request::get("/metrics"));
        assert!(m.body.contains("shareinsights_sql_queries_total 1"));
        assert!(m.body.contains("shareinsights_sql_parse_errors_total 1"));
        assert!(m.body.contains("shareinsights_sql_path_shared_total 1"));
        assert!(m.body.contains("shareinsights_sql_parse_seconds_total"));
        // The POST route meters under its own label.
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(
            doc.path("routes.POST /:dashboard/ds/:dataset/sql.count")
                .unwrap()
                .to_value()
                .as_int(),
            Some(2)
        );
    }

    #[test]
    fn shared_objects_browsable_from_consumers() {
        let server = served();
        // Publish from 'retail', then browse the shared name from another
        // dashboard.
        let with_publish = FLOW.replace(
            "F:\n  +D.brand_sales: D.sales | T.by_brand\n",
            "F:\n  +D.brand_sales: D.sales | T.by_brand\n  D.brand_sales:\n    publish: brand_sales\n",
        );
        server
            .handle(&Request::new(Method::Put, "/dashboards/retail/flow").with_body(&with_publish));
        server.handle(&Request::new(Method::Post, "/dashboards/retail/run"));
        server.handle(&Request::new(Method::Post, "/dashboards/viewer/create"));
        let r = server.handle(&Request::get("/viewer/ds/brand_sales"));
        assert!(r.is_ok(), "{}", r.body);
    }

    // -- _system self-observability -----------------------------------------

    #[test]
    fn system_dashboard_serves_scraped_history() {
        let server = served();
        // Empty until the first scrape; still a well-formed table.
        let r = server.handle(&Request::get("/_system/ds/telemetry"));
        assert!(r.is_ok(), "{}", r.body);
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(doc.path("total_rows").unwrap().to_value().as_int(), Some(0));

        // Generate some traffic, then scrape.
        server.handle(&Request::get("/retail/ds/brand_sales"));
        let outcome = server.scrape_telemetry();
        assert!(outcome.samples > 0, "registry flattened into samples");
        let r = server.handle(&Request::get("/_system/ds/telemetry"));
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        let rows = doc.path("total_rows").unwrap().to_value().as_int().unwrap();
        assert_eq!(rows, outcome.samples as i64);
        assert_eq!(doc.path("columns.0").unwrap().as_str(), Some("ts"));
        assert_eq!(doc.path("columns.1").unwrap().as_str(), Some("family"));
        assert_eq!(doc.path("columns.2").unwrap().as_str(), Some("label"));
        assert_eq!(doc.path("columns.3").unwrap().as_str(), Some("value"));
        // The dataset listing exposes the built-in name.
        let r = server.handle(&Request::get("/_system/ds"));
        assert_eq!(r.body, "[\"telemetry\"]");
        // Unknown datasets under _system are 404s, not user-data lookups.
        let r = server.handle(&Request::get("/_system/ds/ghost"));
        assert_eq!(r.status, Status::NotFound);
    }

    #[test]
    fn system_sql_and_path_queries_are_byte_identical() {
        let server = served();
        server.handle(&Request::get("/retail/ds/brand_sales"));
        server.scrape_telemetry();
        let via_path = server.handle(&Request::get(
            "/_system/ds/telemetry/groupby/family/max/value",
        ));
        assert!(via_path.is_ok(), "{}", via_path.body);
        let via_sql = server.handle(
            &Request::new(Method::Post, "/_system/ds/telemetry/sql")
                .with_body("select family, max(value) from telemetry group by family"),
        );
        assert!(via_sql.is_ok(), "{}", via_sql.body);
        assert_eq!(via_path.body, via_sql.body);
        // Live history: the route family the warm-up traffic hit is there.
        assert!(via_sql.body.contains("route"), "{}", via_sql.body);
    }

    #[test]
    fn system_queries_invalidate_on_each_scrape() {
        let server = served();
        server.scrape_telemetry();
        let q = "/_system/ds/telemetry/groupby/family/count/label";
        server.handle(&Request::get(q));
        server.handle(&Request::get(q));
        let s = server.cache().stats();
        assert_eq!((s.hits, s.misses), (1, 1), "second read hits the cache");
        // A new scrape bumps the ring generation → cached page is stale.
        server.scrape_telemetry();
        server.handle(&Request::get(q));
        let s = server.cache().stats();
        assert_eq!((s.hits, s.misses), (1, 2), "scrape invalidates");
    }

    #[test]
    fn system_subscribe_receives_scrape_delta_frames() {
        let server = served();
        server.scrape_telemetry();
        let h = server.handle_traced(&Request::get("/_system/ds/telemetry/subscribe"));
        assert!(h.response.is_ok(), "{}", h.response.body);
        let sub = h.stream.expect("subscription attached");
        let (frames, _) = sub.try_take();
        assert_eq!(frames.len(), 1, "initial snapshot frame");
        let mut parser = crate::wire::SseParser::new();
        let events = parser.feed(&frames[0]).unwrap();
        assert_eq!(events[0].event, "telemetry");
        let snapshot_generation = events[0].id;

        let outcome = server.scrape_telemetry();
        let (frames, _) = sub.try_take();
        assert_eq!(frames.len(), 1, "scrape publishes a delta frame");
        let events = parser.feed(&frames[0]).unwrap();
        assert_eq!(events[0].id, outcome.generation);
        assert!(events[0].id > snapshot_generation);
        // The delta frame carries only this tick's samples.
        let doc = shareinsights_tabular::io::json::parse_json(&events[0].data).unwrap();
        assert_eq!(
            doc.path("total_rows").unwrap().to_value().as_int(),
            Some(outcome.delta.num_rows() as i64)
        );
        server.stream_hub().unsubscribe(&sub);
        server.platform().api_metrics().record_stream_unsubscribe();
    }

    #[test]
    fn system_namespace_rejects_writes() {
        let server = served();
        let r = server.handle(&Request::new(Method::Post, "/dashboards/_system/create"));
        assert_eq!(r.status, Status::Conflict);
        assert!(r.body.contains("reserved"), "{}", r.body);
        let r =
            server.handle(&Request::new(Method::Put, "/dashboards/_system/flow").with_body(FLOW));
        assert_eq!(r.status, Status::Conflict);
        let r = server.handle(&Request::new(
            Method::Post,
            "/dashboards/retail/fork/_system",
        ));
        assert_eq!(r.status, Status::Conflict);
    }

    #[test]
    fn selfscrape_and_process_metrics_surface() {
        let server = served();
        server.scrape_telemetry();
        server.scrape_telemetry();
        let r = server.handle(&Request::get("/stats"));
        let doc = shareinsights_tabular::io::json::parse_json(&r.body).unwrap();
        assert_eq!(
            doc.path("selfscrape.scrapes").unwrap().to_value().as_int(),
            Some(2)
        );
        assert!(
            doc.path("selfscrape.samples")
                .unwrap()
                .to_value()
                .as_int()
                .unwrap()
                > 0
        );
        let retained = doc
            .path("selfscrape.retained")
            .unwrap()
            .to_value()
            .as_int()
            .unwrap();
        assert!(retained > 0, "retained gauge tracks the ring");
        // Process gauges are live on Linux (zeros elsewhere, still present).
        let rss = doc
            .path("process.rss_bytes")
            .unwrap()
            .to_value()
            .as_int()
            .unwrap();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "RSS read from /proc/self");
        }
        let m = server.handle(&Request::get("/metrics"));
        assert!(m.body.contains("shareinsights_selfscrape_scrapes_total 2"));
        assert!(
            m.body.contains("shareinsights_selfscrape_retained_samples"),
            "{}",
            m.body
        );
        assert!(m.body.contains("shareinsights_process_rss_bytes"));
        assert!(m.body.contains("shareinsights_process_uptime_seconds"));
    }

    #[test]
    fn sql_spans_nest_under_the_request_root() {
        let server = served();
        let r = server.handle(
            &Request::new(Method::Post, "/retail/ds/brand_sales/sql")
                .with_body("select region, sum(revenue) from brand_sales group by region")
                .with_header("x-trace-id", "beef"),
        );
        assert!(r.is_ok(), "{}", r.body);
        let trace = server
            .platform()
            .tracer()
            .find(shareinsights_core::TraceId(0xbeef))
            .expect("trace recorded");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"sql_parse"), "{names:?}");
        assert!(names.contains(&"sql_lower"), "{names:?}");
        // Both hang off the dispatch span inside the request's trace tree.
        let dispatch = trace
            .spans
            .iter()
            .find(|s| s.name == "dispatch")
            .expect("dispatch span");
        let kids = trace.children_of(dispatch.id);
        let kid_names: Vec<&str> = kids.iter().map(|s| s.name.as_str()).collect();
        assert!(
            kid_names.contains(&"sql_parse") && kid_names.contains(&"sql_lower"),
            "parse/lower hang off dispatch: {kid_names:?}"
        );
        let lower = kids.iter().find(|s| s.name == "sql_lower").unwrap();
        assert!(lower.attr("stages").is_some(), "lower span carries attrs");
    }

    #[test]
    fn ingest_creates_and_appends_endpoint_rows() {
        let server = served();
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/ds/events/ingest")
                .with_body("region,brand,revenue\nwest,omni,7\n"),
        );
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("\"rows_appended\": 1"), "{}", r.body);
        assert!(r.body.contains("\"total_rows\": 1"), "{}", r.body);
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/ds/events/ingest")
                .with_body("region,brand,revenue\neast,omni,3\nwest,zest,2\n"),
        );
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("\"rows_appended\": 2"), "{}", r.body);
        assert!(r.body.contains("\"total_rows\": 3"), "{}", r.body);
        // The appended endpoint serves through the normal data API.
        let r = server.handle(&Request::get("/retail/ds/events"));
        assert!(r.is_ok(), "{}", r.body);
        assert!(
            r.body.contains("omni") && r.body.contains("zest"),
            "{}",
            r.body
        );
        let stats = server.platform().api_metrics().ingest();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.rows, 3);
    }

    #[test]
    fn ingest_jsonl_derives_columns_from_first_record() {
        let server = served();
        let r = server.handle(
            &Request::new(
                Method::Post,
                "/dashboards/retail/ds/clicks/ingest?format=jsonl",
            )
            .with_body("{\"page\": \"home\", \"hits\": 3}\n{\"page\": \"docs\", \"hits\": 11}\n"),
        );
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("\"rows_appended\": 2"), "{}", r.body);
        let r = server.handle(&Request::get("/retail/ds/clicks/sort/hits/desc"));
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("docs"), "{}", r.body);
    }

    #[test]
    fn ingest_merges_warm_index_instead_of_rebuilding() {
        let server = served();
        // Warm the endpoint's index with a filtered query.
        let r = server.handle(&Request::get("/retail/ds/brand_sales/filter/brand/acme"));
        assert!(r.is_ok(), "{}", r.body);
        let builds_before = server.platform().api_metrics().index().builds;
        assert!(builds_before > 0, "filter query warms the index");
        // Append matching-schema rows: the warm index merges in place.
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/ds/brand_sales/ingest")
                .with_body("region,brand,revenue\nwest,omni,40\n"),
        );
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("\"index\": \"merged\""), "{}", r.body);
        assert_eq!(server.platform().api_metrics().ingest().index_merges, 1);
        // The re-query sees the appended row without a cold rebuild.
        let r = server.handle(&Request::get("/retail/ds/brand_sales/filter/brand/omni"));
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("omni"), "{}", r.body);
        assert_eq!(
            server.platform().api_metrics().index().builds,
            builds_before,
            "append kept the index warm (no rebuild)"
        );
    }

    #[test]
    fn ingest_skips_merge_when_warm_index_is_stale() {
        let server = served();
        // Warm the index, then bump the generation behind the registry's
        // back (a re-run replaces the endpoint table): the entry is now
        // stamped at an older generation.
        let r = server.handle(&Request::get("/retail/ds/brand_sales/filter/brand/acme"));
        assert!(r.is_ok(), "{}", r.body);
        server.platform().run_dashboard("retail").unwrap();
        // The append must refuse to merge the stale wrapper — merging it
        // would stamp an index missing the re-run's rows at the live
        // generation — and fall back to a lazy cold rebuild.
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/ds/brand_sales/ingest")
                .with_body("region,brand,revenue\nwest,omni,40\n"),
        );
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("\"index\": \"cold\""), "{}", r.body);
        assert_eq!(server.platform().api_metrics().ingest().index_merges, 0);
        // Queries after the append still serve correct, complete data.
        let r = server.handle(&Request::get("/retail/ds/brand_sales/filter/brand/omni"));
        assert!(r.is_ok(), "{}", r.body);
        assert!(r.body.contains("omni"), "{}", r.body);
        let r = server.handle(&Request::get("/retail/ds/brand_sales/filter/brand/acme"));
        assert!(r.is_ok() && r.body.contains("acme"), "{}", r.body);
    }

    #[test]
    fn ingest_rejects_bad_targets_and_bodies() {
        let server = served();
        // Reserved namespace.
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/_system/ds/telemetry/ingest")
                .with_body("a\n1\n"),
        );
        assert_eq!(r.status, Status::Conflict);
        // Unknown dashboard.
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/nope/ds/x/ingest").with_body("a\n1\n"),
        );
        assert_eq!(r.status, Status::NotFound);
        // Unsupported format.
        let r = server.handle(
            &Request::new(
                Method::Post,
                "/dashboards/retail/ds/events/ingest?format=parquet",
            )
            .with_body("a\n1\n"),
        );
        assert_eq!(r.status, Status::BadRequest);
        // Empty body: no records, endpoint untouched.
        let r = server.handle(&Request::new(
            Method::Post,
            "/dashboards/retail/ds/events/ingest",
        ));
        assert_eq!(r.status, Status::BadRequest);
        let r = server.handle(&Request::get("/retail/ds"));
        assert!(!r.body.contains("events"), "failed ingest left no endpoint");
        assert!(server.platform().api_metrics().ingest().aborted >= 1);
        // GET on the ingest route is a 405 with an Allow-style catch.
        let r = server.handle(&Request::get("/dashboards/retail/ds/events/ingest"));
        assert_eq!(r.status, Status::MethodNotAllowed);
    }

    #[test]
    fn ingest_decode_error_leaves_endpoint_unchanged() {
        let server = served();
        let before = server.handle(&Request::get("/retail/ds"));
        let r = server.handle(
            &Request::new(
                Method::Post,
                "/dashboards/retail/ds/bad/ingest?format=jsonl",
            )
            .with_body("{\"a\": 1}\nnot json at all{{{\n"),
        );
        assert_eq!(r.status, Status::BadRequest, "{}", r.body);
        let after = server.handle(&Request::get("/retail/ds"));
        assert_eq!(before.body, after.body, "failed ingest is all-or-nothing");
    }

    #[test]
    fn prepared_sql_skips_parse_and_lower_on_repeat() {
        let server = served();
        let sql = "SELECT brand, revenue FROM brand_sales ORDER BY revenue DESC";
        let cold =
            server.handle(&Request::new(Method::Post, "/retail/ds/brand_sales/sql").with_body(sql));
        assert!(cold.is_ok(), "{}", cold.body);
        assert_eq!(server.platform().api_metrics().sql().prepared_hits, 0);
        let warm =
            server.handle(&Request::new(Method::Post, "/retail/ds/brand_sales/sql").with_body(sql));
        assert_eq!(cold.body, warm.body, "prepared plan serves identical bytes");
        let stats = server.platform().api_metrics().sql();
        assert_eq!(stats.prepared_hits, 1);
        assert_eq!(stats.queries, 2, "hits still count as SQL queries");
    }

    #[test]
    fn prepared_sql_still_checks_from_against_the_route() {
        let server = served();
        let sql = "SELECT brand FROM brand_sales";
        assert!(server
            .handle(&Request::new(Method::Post, "/retail/ds/brand_sales/sql").with_body(sql))
            .is_ok());
        // Same text on a different dataset's route must not reuse the plan.
        let r = server.handle(&Request::new(Method::Post, "/retail/ds/other/sql").with_body(sql));
        assert_eq!(r.status, Status::BadRequest);
        assert!(r.body.contains("FROM names"), "{}", r.body);
    }

    #[test]
    fn prepared_sql_sees_appended_rows() {
        // Generation-stamped caches must invalidate around the prepared
        // plan: the plan is reused, the result is not.
        let server = served();
        let sql = "SELECT brand, revenue FROM brand_sales WHERE brand = 'omni'";
        let before =
            server.handle(&Request::new(Method::Post, "/retail/ds/brand_sales/sql").with_body(sql));
        assert!(before.is_ok(), "{}", before.body);
        assert!(!before.body.contains("omni"), "{}", before.body);
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/ds/brand_sales/ingest")
                .with_body("region,brand,revenue\nwest,omni,40\n"),
        );
        assert!(r.is_ok(), "{}", r.body);
        let after =
            server.handle(&Request::new(Method::Post, "/retail/ds/brand_sales/sql").with_body(sql));
        assert!(after.body.contains("omni"), "{}", after.body);
        assert_eq!(server.platform().api_metrics().sql().prepared_hits, 1);
    }

    #[test]
    fn stream_push_spans_carry_strategy_attrs() {
        let server = served();
        server.handle(&Request::new(
            Method::Post,
            "/dashboards/retail/stream/start",
        ));
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/stream/push/sales")
                .with_body("east,zest,9\n")
                .with_header("x-trace-id", "feed"),
        );
        assert!(r.is_ok(), "{}", r.body);
        let trace = server
            .platform()
            .tracer()
            .find(shareinsights_core::TraceId(0xfeed))
            .expect("trace recorded");
        let tick = trace
            .spans
            .iter()
            .find(|s| s.name == "stream_push")
            .expect("stream_push span");
        assert_eq!(
            tick.attr("source"),
            Some(&shareinsights_core::AttrValue::Str("sales".into()))
        );
        assert_eq!(
            tick.attr("rows_in"),
            Some(&shareinsights_core::AttrValue::Int(1))
        );
        let strategy_span = trace
            .children_of(tick.id)
            .into_iter()
            .find(|s| s.name == "brand_sales")
            .expect("per-object strategy span");
        assert_eq!(
            strategy_span.attr("strategy"),
            Some(&shareinsights_core::AttrValue::Str("incremental".into()))
        );
        assert_eq!(
            strategy_span.attr("op"),
            Some(&shareinsights_core::AttrValue::Str("stream_tick".into()))
        );
    }
}
