//! The scatter/gather planner: splits a [`QueryOp`] pipeline into a
//! shard-local prefix and a router-side merge suffix.
//!
//! Correctness rests on *range* partitioning: every shard owns a contiguous
//! row range, and partials are always gathered in shard order, so
//! concatenating them reproduces the original row order exactly. Every
//! merge rule below is chosen so the sharded result is **byte-identical**
//! to single-shard execution:
//!
//! * **Row-local ops** (`filter`, filter expressions, projection) commute
//!   with partitioning — they run on each shard and the gathered
//!   concatenation equals the unsharded output.
//! * **Group-by** splits into a shard-local group-by plus a router-side
//!   merge group-by over the concatenated partials when every aggregate is
//!   re-aggregatable from its *finished* output column (`sum`/`count`/
//!   `count_all` re-sum; `min`/`max` re-extremize; `first`/`last` pick by
//!   shard order, which is row order). First-seen group order in the merge
//!   equals global first-seen order because partials concatenate in row
//!   order. Aggregates whose finished value loses information (`avg`,
//!   `count_distinct`, `collect`) instead ship whole accumulator state back
//!   via [`GroupByPartial`] — see [`ScatterPlan::accumulate`].
//! * **`sum`/`avg` are only pushed down over `Int64` columns**: integer
//!   addition is associative, so per-shard subtotals merge exactly.
//!   Float (and stringly-numeric) sums re-associate under partitioning and
//!   can differ in the last bit — those pipelines fall back to unsharded
//!   execution rather than risk byte drift.
//! * **`sort | limit` fuses** into a shard-local [`QueryOp::TopN`]
//!   (bounded selection, the classic local-top-k-before-exchange
//!   optimisation). Each shard's top `n` under (keys, row index) is a
//!   superset of its members of the global top `n`; the router's stable
//!   re-sort of the concatenation breaks ties in shard order = row order,
//!   so its first `n` rows equal `sort | limit` over the whole table.
//! * Everything else (`distinct`, `limit`, `offset`, joins, unfused sorts)
//!   stays router-side in [`ScatterPlan::post`], operating on the gathered
//!   concatenation — which *is* the unsharded intermediate, so downstream
//!   bytes match by construction.
//!
//! [`GroupByPartial`]: shareinsights_tabular::ops::GroupByPartial

use crate::query::QueryOp;
use shareinsights_tabular::agg::AggKind;
use shareinsights_tabular::ops::{AggregateSpec, GroupBy, SortKey};
use shareinsights_tabular::{DataType, Schema};

/// A query pipeline split for scatter/gather execution.
#[derive(Debug, Clone)]
pub struct ScatterPlan {
    /// Ops each shard runs over its slice (row-local prefix plus at most
    /// one pushed-down group-by or fused top-n).
    pub local: Vec<QueryOp>,
    /// When set, shards run `local` and then feed the result into a
    /// [`GroupByPartial`](shareinsights_tabular::ops::GroupByPartial) with
    /// this config, returning accumulator state instead of a table; the
    /// router merges the states in shard order and materialises once.
    pub accumulate: Option<GroupBy>,
    /// Ops the router runs over the gathered table.
    pub post: Vec<QueryOp>,
}

/// Is this op a pure per-row transformation (commutes with partitioning)?
fn is_row_local(op: &QueryOp) -> bool {
    matches!(
        op,
        QueryOp::Filter { .. } | QueryOp::FilterExpr(_) | QueryOp::Project(_)
    )
}

/// The merge-side operator that re-aggregates a finished partial column,
/// or `None` when the finished value under-determines the merge.
fn merge_kind(op: AggKind) -> Option<AggKind> {
    match op {
        // Partial sums and counts re-sum; extremes re-extremize; first/last
        // pick across shard-ordered partials (= row order).
        AggKind::Sum | AggKind::Count | AggKind::CountAll => Some(AggKind::Sum),
        AggKind::Min => Some(AggKind::Min),
        AggKind::Max => Some(AggKind::Max),
        AggKind::First => Some(AggKind::First),
        AggKind::Last => Some(AggKind::Last),
        // A finished avg loses its weight, a distinct count its value set,
        // a collect its "no rows seen" distinction — accumulator state only.
        AggKind::Avg | AggKind::CountDistinct | AggKind::Collect => None,
    }
}

/// Split `ops` for scatter/gather over `schema`. `None` means the pipeline
/// gains nothing from sharding (or cannot be sharded byte-identically) and
/// must run unsharded.
pub fn plan(ops: &[QueryOp], schema: &Schema) -> Option<ScatterPlan> {
    let mut local: Vec<QueryOp> = Vec::new();
    let mut i = 0;
    while i < ops.len() && is_row_local(&ops[i]) {
        local.push(ops[i].clone());
        i += 1;
    }
    if i == ops.len() {
        // Purely row-local pipeline: shards do all the work, gather concats.
        return if local.is_empty() {
            None
        } else {
            Some(ScatterPlan {
                local,
                accumulate: None,
                post: Vec::new(),
            })
        };
    }
    match &ops[i] {
        QueryOp::GroupBy { key, agg, apply_on } => {
            let cfg = crate::query::groupby_config(key, *agg, apply_on);
            plan_groupby(local, &cfg, &ops[i + 1..], schema)
        }
        QueryOp::GroupByMulti(cfg) => plan_groupby(local, cfg, &ops[i + 1..], schema),
        QueryOp::Sort { column, order } => {
            let keys = vec![SortKey {
                column: column.clone(),
                order: *order,
            }];
            plan_sort(local, keys, &ops[i + 1..])
        }
        QueryOp::SortMulti(keys) => plan_sort(local, keys.clone(), &ops[i + 1..]),
        _ => {
            // Distinct / limit / offset / join at the scatter point: nothing
            // to push down beyond the row-local prefix.
            if local.is_empty() {
                return None;
            }
            Some(ScatterPlan {
                local,
                accumulate: None,
                post: ops[i..].to_vec(),
            })
        }
    }
}

fn plan_groupby(
    local: Vec<QueryOp>,
    cfg: &GroupBy,
    rest: &[QueryOp],
    schema: &Schema,
) -> Option<ScatterPlan> {
    let aggs = cfg.effective_aggregates();
    let mut mergeable = true;
    for a in &aggs {
        if matches!(a.operator, AggKind::Sum | AggKind::Avg) {
            // Only integer addition is associative; float or stringly
            // sums could drift in the last bit across shard boundaries.
            // (A column the schema doesn't know falls back too: the
            // unsharded path owns the error message.)
            let dt = schema.field(&a.apply_on).ok()?.data_type();
            if dt != DataType::Int64 {
                return None;
            }
        }
        if merge_kind(a.operator).is_none() {
            mergeable = false;
        }
    }
    if !mergeable {
        return Some(ScatterPlan {
            local,
            accumulate: Some(cfg.clone()),
            post: rest.to_vec(),
        });
    }
    let mut local = local;
    let mut local_cfg = cfg.clone();
    // Shard-local output order is merge input order, not response order:
    // the aggregate ordering applies once, over merged groups.
    local_cfg.orderby_aggregates = false;
    local_cfg.aggregates = aggs.clone();
    local.push(QueryOp::GroupByMulti(local_cfg));
    let merge_cfg = GroupBy {
        keys: cfg.keys.clone(),
        aggregates: aggs
            .iter()
            .map(|a| {
                let kind = merge_kind(a.operator).expect("checked mergeable");
                AggregateSpec::new(kind, a.out_field.clone(), a.out_field.clone())
            })
            .collect(),
        orderby_aggregates: cfg.orderby_aggregates,
    };
    let mut post = vec![QueryOp::GroupByMulti(merge_cfg)];
    post.extend(rest.iter().cloned());
    Some(ScatterPlan {
        local,
        accumulate: None,
        post,
    })
}

fn plan_sort(local: Vec<QueryOp>, keys: Vec<SortKey>, rest: &[QueryOp]) -> Option<ScatterPlan> {
    match rest.first() {
        Some(QueryOp::Limit(n)) => {
            let mut local = local;
            local.push(QueryOp::TopN {
                keys: keys.clone(),
                n: *n,
            });
            let mut post = vec![QueryOp::SortMulti(keys), QueryOp::Limit(*n)];
            post.extend(rest[1..].iter().cloned());
            Some(ScatterPlan {
                local,
                accumulate: None,
                post,
            })
        }
        _ => {
            // An unfused full sort re-sorts the gathered concatenation on
            // the router anyway; shard-local sorting would be wasted work.
            if local.is_empty() {
                return None;
            }
            let mut post = vec![QueryOp::SortMulti(keys)];
            post.extend(rest.iter().cloned());
            Some(ScatterPlan {
                local,
                accumulate: None,
                post,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::expr::parse_expr;
    use shareinsights_tabular::{Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Utf8),
            Field::new("v", DataType::Int64),
            Field::new("f", DataType::Float64),
        ])
        .unwrap()
    }

    fn gb(op: AggKind, apply_on: &str) -> QueryOp {
        QueryOp::GroupByMulti(GroupBy::with_aggregates(
            &["k"],
            vec![AggregateSpec::new(op, apply_on, "out")],
        ))
    }

    #[test]
    fn row_local_prefix_scatters_without_post() {
        let ops = vec![QueryOp::Filter {
            column: "k".into(),
            value: Value::Str("a".into()),
        }];
        let p = plan(&ops, &schema()).unwrap();
        assert_eq!(p.local, ops);
        assert!(p.post.is_empty() && p.accumulate.is_none());
    }

    #[test]
    fn empty_and_unpushable_heads_fall_back() {
        assert!(plan(&[], &schema()).is_none());
        assert!(plan(&[QueryOp::Limit(3)], &schema()).is_none());
        assert!(plan(&[QueryOp::Distinct("k".into())], &schema()).is_none());
        assert!(plan(
            &[QueryOp::Sort {
                column: "v".into(),
                order: shareinsights_tabular::ops::SortOrder::Asc,
            }],
            &schema()
        )
        .is_none());
    }

    #[test]
    fn int_sum_groupby_splits_into_local_plus_merge() {
        let p = plan(&[gb(AggKind::Sum, "v")], &schema()).unwrap();
        assert!(p.accumulate.is_none());
        let QueryOp::GroupByMulti(local) = &p.local[0] else {
            panic!("local groupby expected");
        };
        assert!(!local.orderby_aggregates);
        let QueryOp::GroupByMulti(merge) = &p.post[0] else {
            panic!("merge groupby expected");
        };
        // The merge re-sums the finished partial column into itself.
        assert_eq!(merge.aggregates[0].operator, AggKind::Sum);
        assert_eq!(merge.aggregates[0].apply_on, "out");
        assert_eq!(merge.aggregates[0].out_field, "out");
    }

    #[test]
    fn count_merges_as_sum_and_bare_count_defaults() {
        let p = plan(&[gb(AggKind::CountAll, "")], &schema()).unwrap();
        let QueryOp::GroupByMulti(merge) = &p.post[0] else {
            panic!();
        };
        assert_eq!(merge.aggregates[0].operator, AggKind::Sum);

        let bare = QueryOp::GroupByMulti(GroupBy::counting(&["k"]));
        let p = plan(&[bare], &schema()).unwrap();
        let QueryOp::GroupByMulti(merge) = &p.post[0] else {
            panic!();
        };
        assert_eq!(merge.aggregates[0].apply_on, "count");
    }

    #[test]
    fn float_sum_and_unknown_column_fall_back() {
        assert!(plan(&[gb(AggKind::Sum, "f")], &schema()).is_none());
        assert!(plan(&[gb(AggKind::Avg, "f")], &schema()).is_none());
        assert!(plan(&[gb(AggKind::Sum, "ghost")], &schema()).is_none());
        // Float min is exact — still mergeable.
        assert!(plan(&[gb(AggKind::Min, "f")], &schema()).is_some());
    }

    #[test]
    fn lossy_aggregates_take_the_accumulator_path() {
        for kind in [AggKind::Avg, AggKind::CountDistinct, AggKind::Collect] {
            let target = if kind == AggKind::Avg { "v" } else { "f" };
            let p = plan(&[gb(kind, target)], &schema()).unwrap();
            assert!(p.accumulate.is_some(), "{kind:?}");
            assert!(p.local.is_empty());
        }
        // One lossy aggregate drags the whole groupby onto that path.
        let mixed = QueryOp::GroupByMulti(GroupBy::with_aggregates(
            &["k"],
            vec![
                AggregateSpec::new(AggKind::Sum, "v", "s"),
                AggregateSpec::new(AggKind::Collect, "k", "c"),
            ],
        ));
        assert!(plan(&[mixed], &schema()).unwrap().accumulate.is_some());
    }

    #[test]
    fn sort_limit_fuses_to_topn() {
        let ops = vec![
            QueryOp::FilterExpr(parse_expr("v > 1").unwrap()),
            QueryOp::Sort {
                column: "v".into(),
                order: shareinsights_tabular::ops::SortOrder::Desc,
            },
            QueryOp::Limit(5),
            QueryOp::Offset(1),
        ];
        let p = plan(&ops, &schema()).unwrap();
        assert_eq!(p.local.len(), 2);
        assert!(matches!(&p.local[1], QueryOp::TopN { n: 5, .. }));
        assert!(matches!(&p.post[0], QueryOp::SortMulti(_)));
        assert!(matches!(&p.post[1], QueryOp::Limit(5)));
        assert!(matches!(&p.post[2], QueryOp::Offset(1)));
    }

    #[test]
    fn groupby_tail_ops_stay_router_side() {
        let ops = vec![
            gb(AggKind::Sum, "v"),
            QueryOp::Sort {
                column: "out".into(),
                order: shareinsights_tabular::ops::SortOrder::Desc,
            },
            QueryOp::Limit(2),
        ];
        let p = plan(&ops, &schema()).unwrap();
        assert_eq!(p.local.len(), 1);
        assert_eq!(p.post.len(), 3, "merge + sort + limit");
    }
}
