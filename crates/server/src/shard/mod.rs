//! Shared-nothing sharded data plane (scale-out §5 of the paper's "future
//! work": the reproduction's single-node data API, horizontally
//! partitioned).
//!
//! A [`ShardSet`] owns N worker threads. Each worker holds a disjoint
//! contiguous *row-range slice* of every sharded endpoint — its own
//! [`IndexedTable`], its own result cache, its own generation stamp —
//! shared-nothing: no worker ever touches another's state. The router
//! scatters a planned sub-query to every worker and gathers partials back
//! in shard order; [`plan`] guarantees the merged response is
//! byte-identical to unsharded execution.
//!
//! ## The internal framed channel
//!
//! Workers speak the same HTTP/1.1 request framing as the public surface:
//! every control message is a literal request (`POST /_shard/query`, …)
//! serialized to bytes and re-parsed by the worker through
//! [`wire::try_parse`]. Bulk payloads — table slices outbound, partial
//! tables or [`GroupByPartial`] accumulator state inbound — ride alongside
//! the frame in the same in-process message rather than being serialized,
//! which is exactly the piece a future multi-process split would replace
//! with a real socket and a columnar codec; the control plane would move
//! unchanged.
//!
//! ## Generations and staleness
//!
//! Every slice is stamped with the endpoint generation it was cut from,
//! and every query frame carries the generation the router expects. A
//! worker whose slice is missing or stale answers `409`; the router
//! reloads fresh slices and retries the scatter once (counted in
//! `shareinsights_shard_stale_retries_total`). Appends, publishes and
//! stream pushes fan an invalidation frame out to all workers, so slice
//! memory is reclaimed eagerly rather than on next touch.

pub mod plan;

use crate::cache::ResultCache;
use crate::query::{run_query, run_query_indexed, QueryOp};
use crate::wire::{self, Parsed, WireLimits};
use parking_lot::Mutex;
use plan::ScatterPlan;
use shareinsights_core::{ApiMetrics, Partitioning, ShardWorkerStats, Span};
use shareinsights_tabular::ops::{groupby_partial, union_all, GroupBy, GroupByPartial};
use shareinsights_tabular::{IndexedTable, Table};
use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

/// Bulk payload riding beside a request frame (the part a multi-process
/// transport would serialize; everything else is already wire bytes).
enum Payload {
    /// `POST /_shard/load`: the worker's slice of an endpoint table.
    Slice(Table),
    /// `POST /_shard/query`: the shard-local pipeline, and the group-by
    /// config to accumulate into when the planner chose state shipping.
    Query {
        local: Vec<QueryOp>,
        accumulate: Option<GroupBy>,
    },
}

/// A worker's answer.
enum Reply {
    /// Partial result table (plus whether the slice index accelerated it).
    Table { table: Table, index_hit: bool },
    /// Group-by accumulator state (the planner's `accumulate` mode).
    Partial(Box<GroupByPartial>),
    /// Status-only answer: `200` acks, `400` query errors (the message is
    /// the same string the unsharded path produces), `409` stale slice.
    Status { code: u16, message: String },
    /// Worker counters for `GET /_shard/stats`.
    Stats(Box<ShardWorkerStats>),
}

/// One message over the internal channel: a framed HTTP request plus
/// optional bulk payload and the reply path.
struct Msg {
    frame: Vec<u8>,
    payload: Option<Payload>,
    reply: mpsc::Sender<Reply>,
}

/// One loaded endpoint slice inside a worker.
struct SliceEntry {
    generation: u64,
    indexed: Arc<IndexedTable>,
    results: ResultCache,
}

fn frame(method: &str, path: &str, headers: &[(&str, &str)]) -> Vec<u8> {
    let mut s = format!("{method} {path} HTTP/1.1\r\nHost: shard\r\n");
    for (k, v) in headers {
        s.push_str(k);
        s.push_str(": ");
        s.push_str(v);
        s.push_str("\r\n");
    }
    s.push_str("Content-Length: 0\r\n\r\n");
    s.into_bytes()
}

fn status(code: u16, message: impl Into<String>) -> Reply {
    Reply::Status {
        code,
        message: message.into(),
    }
}

fn worker_loop(shard: u64, rx: mpsc::Receiver<Msg>, metrics: ApiMetrics, limits: WireLimits) {
    let mut slices: HashMap<String, SliceEntry> = HashMap::new();
    let mut stats = ShardWorkerStats {
        shard,
        ..ShardWorkerStats::default()
    };
    while let Ok(msg) = rx.recv() {
        let started = Instant::now();
        let request = match wire::try_parse(&msg.frame, &limits) {
            Parsed::Complete(p) => p.request,
            _ => {
                let _ = msg.reply.send(status(400, "malformed shard frame"));
                continue;
            }
        };
        let key = request.header("x-shard-key").unwrap_or("").to_string();
        let generation: u64 = request
            .header("x-shard-generation")
            .and_then(|g| g.parse().ok())
            .unwrap_or(0);
        let reply = match request.path.as_str() {
            "/_shard/load" => match msg.payload {
                Some(Payload::Slice(table)) => {
                    let hook_metrics = metrics.clone();
                    let indexed = Arc::new(IndexedTable::with_build_hook(
                        table,
                        Arc::new(move |us| hook_metrics.record_index_build(us)),
                    ));
                    slices.insert(
                        key,
                        SliceEntry {
                            generation,
                            indexed,
                            results: ResultCache::default(),
                        },
                    );
                    status(200, "loaded")
                }
                _ => status(400, "load frame without slice payload"),
            },
            "/_shard/query" => {
                let result_key = request
                    .header("x-shard-result-key")
                    .unwrap_or("")
                    .to_string();
                let Some(Payload::Query { local, accumulate }) = msg.payload else {
                    let _ = msg
                        .reply
                        .send(status(400, "query frame without plan payload"));
                    stats.busy_us += started.elapsed().as_micros() as u64;
                    continue;
                };
                match slices.get(&key) {
                    Some(entry) if entry.generation == generation => {
                        stats.queries += 1;
                        match entry.results.get(&result_key, generation) {
                            Some(cached) if accumulate.is_none() => {
                                stats.result_hits += 1;
                                Reply::Table {
                                    table: (*cached).clone(),
                                    index_hit: false,
                                }
                            }
                            _ => match run_query_indexed(&entry.indexed, &local) {
                                Ok((table, index_hit)) => match accumulate {
                                    Some(cfg) => match groupby_partial(&table, &cfg) {
                                        Ok(partial) => Reply::Partial(Box::new(partial)),
                                        Err(e) => status(400, e.to_string()),
                                    },
                                    None => {
                                        entry.results.put(
                                            &result_key,
                                            generation,
                                            Arc::new(table.clone()),
                                        );
                                        Reply::Table { table, index_hit }
                                    }
                                },
                                Err(e) => status(400, e),
                            },
                        }
                    }
                    _ => {
                        stats.stale_rejects += 1;
                        status(409, "stale shard slice")
                    }
                }
            }
            "/_shard/invalidate" => {
                slices.remove(&key);
                status(200, "invalidated")
            }
            "/_shard/clear" => {
                for entry in slices.values_mut() {
                    entry.results.clear();
                }
                status(200, "cleared")
            }
            "/_shard/stats" => {
                stats.slices = slices.len() as u64;
                stats.rows = slices
                    .values()
                    .map(|e| e.indexed.table().num_rows() as u64)
                    .sum();
                Reply::Stats(Box::new(stats.clone()))
            }
            other => status(404, format!("unknown shard route {other}")),
        };
        stats.busy_us += started.elapsed().as_micros() as u64;
        let _ = msg.reply.send(reply);
    }
}

/// The router-side handle: worker channels plus the load registry.
pub struct ShardSet {
    txs: Vec<mpsc::Sender<Msg>>,
    /// endpoint key -> generation currently loaded into all workers.
    loaded: Mutex<HashMap<String, u64>>,
    partitioning: Partitioning,
    metrics: ApiMetrics,
}

impl ShardSet {
    /// Spawn `partitioning.shards` workers (callers guarantee ≥ 2; a
    /// 1-shard plane *is* the unsharded path and should not exist).
    pub fn new(partitioning: Partitioning, metrics: ApiMetrics) -> ShardSet {
        let limits = WireLimits::default();
        let txs = (0..partitioning.shards)
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Msg>();
                let worker_metrics = metrics.clone();
                thread::Builder::new()
                    .name(format!("shard-{i}"))
                    .spawn(move || worker_loop(i as u64, rx, worker_metrics, limits))
                    .expect("spawn shard worker");
                tx
            })
            .collect();
        metrics.record_shard_workers(partitioning.shards as u64);
        ShardSet {
            txs,
            loaded: Mutex::new(HashMap::new()),
            partitioning,
            metrics,
        }
    }

    /// Number of shard workers.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    fn send(
        &self,
        shard: usize,
        frame: Vec<u8>,
        payload: Option<Payload>,
    ) -> mpsc::Receiver<Reply> {
        let (reply, rx) = mpsc::channel();
        let _ = self.txs[shard].send(Msg {
            frame,
            payload,
            reply,
        });
        rx
    }

    /// Cut fresh slices of `table` at `generation` and load them into all
    /// workers, if that exact generation isn't already resident.
    fn ensure_loaded(&self, key: &str, generation: u64, table: &Table) -> Result<(), String> {
        let mut loaded = self.loaded.lock();
        if loaded.get(key) == Some(&generation) {
            return Ok(());
        }
        let gen_header = generation.to_string();
        let ranges = self.partitioning.ranges(table.num_rows());
        let receivers: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(start, len))| {
                self.send(
                    i,
                    frame(
                        "POST",
                        "/_shard/load",
                        &[("x-shard-key", key), ("x-shard-generation", &gen_header)],
                    ),
                    Some(Payload::Slice(table.slice(start, len))),
                )
            })
            .collect();
        for rx in receivers {
            match rx.recv() {
                Ok(Reply::Status { code: 200, .. }) => {}
                Ok(Reply::Status { message, .. }) => return Err(message),
                _ => return Err("shard worker unavailable during load".into()),
            }
        }
        loaded.insert(key.to_string(), generation);
        self.metrics
            .record_shard_load(self.txs.len() as u64, table.num_rows() as u64);
        Ok(())
    }

    /// Scatter the planned local pipeline; `Ok` partials arrive in shard
    /// order. `Err(Some(msg))` is a query error (identical to the
    /// unsharded message); `Err(None)` means a stale/absent slice was hit.
    #[allow(clippy::type_complexity)]
    fn scatter(
        &self,
        key: &str,
        generation: u64,
        result_key: &str,
        sp: &ScatterPlan,
        span: Option<&mut Span>,
    ) -> Result<(Vec<Reply>, u64), Option<String>> {
        let gen_header = generation.to_string();
        let scatter_span = span.map(|s| s.child("shard_scatter"));
        let receivers: Vec<_> = (0..self.txs.len())
            .map(|i| {
                self.send(
                    i,
                    frame(
                        "POST",
                        "/_shard/query",
                        &[
                            ("x-shard-key", key),
                            ("x-shard-generation", &gen_header),
                            ("x-shard-result-key", result_key),
                        ],
                    ),
                    Some(Payload::Query {
                        local: sp.local.clone(),
                        accumulate: sp.accumulate.clone(),
                    }),
                )
            })
            .collect();
        let mut replies = Vec::with_capacity(receivers.len());
        let mut partial_rows = 0u64;
        let mut outcome: Result<(), Option<String>> = Ok(());
        for (i, rx) in receivers.into_iter().enumerate() {
            let mut shard_span = scatter_span.as_ref().map(|s| s.child("shard_partial"));
            let reply = rx
                .recv()
                .map_err(|_| Some("shard worker unavailable during scatter".to_string()))?;
            let rows = match &reply {
                Reply::Table { table, .. } => table.num_rows() as u64,
                Reply::Partial(p) => p.num_groups() as u64,
                Reply::Status { code: 409, .. } => {
                    if outcome.is_ok() {
                        outcome = Err(None);
                    }
                    0
                }
                Reply::Status { message, .. } => {
                    if !matches!(outcome, Err(Some(_))) {
                        outcome = Err(Some(message.clone()));
                    }
                    0
                }
                Reply::Stats(_) => 0,
            };
            if let Some(s) = shard_span.as_mut() {
                s.set_attr("shard", i as i64);
                s.set_attr("partial_rows", rows as i64);
            }
            if let Some(s) = shard_span {
                s.finish();
            }
            partial_rows += rows;
            replies.push(reply);
        }
        if let Some(mut s) = scatter_span {
            s.set_attr("shards", self.txs.len() as i64);
            s.set_attr("partial_rows", partial_rows as i64);
            s.finish();
        }
        outcome.map(|()| (replies, partial_rows))
    }

    /// Execute `ops` over `table` via scatter/gather. `None` means the
    /// query should run unsharded (plan not shardable, endpoint below the
    /// row floor, or workers unavailable); `Some(result)` mirrors the
    /// unsharded `run_query_indexed` contract exactly.
    pub fn execute(
        &self,
        key: &str,
        generation: u64,
        result_key: &str,
        table: &Table,
        ops: &[QueryOp],
        mut span: Option<&mut Span>,
    ) -> Option<Result<(Table, bool), String>> {
        if table.num_rows() < self.partitioning.min_rows {
            self.metrics.record_shard_fallback();
            return None;
        }
        let Some(sp) = plan::plan(ops, table.schema()) else {
            self.metrics.record_shard_fallback();
            return None;
        };
        if self.ensure_loaded(key, generation, table).is_err() {
            self.metrics.record_shard_fallback();
            return None;
        }
        let mut attempt = self.scatter(key, generation, result_key, &sp, span.as_deref_mut());
        if matches!(attempt, Err(None)) {
            // A worker lost its slice to a concurrent invalidation between
            // our load check and its dispatch: reload fresh slices once.
            self.loaded.lock().remove(key);
            if self.ensure_loaded(key, generation, table).is_err() {
                self.metrics.record_shard_fallback();
                return None;
            }
            self.metrics.record_shard_stale_retry();
            attempt = self.scatter(key, generation, result_key, &sp, span.as_deref_mut());
        }
        let (replies, partial_rows) = match attempt {
            Ok(ok) => ok,
            Err(Some(message)) => return Some(Err(message)),
            Err(None) => {
                self.metrics.record_shard_fallback();
                return None;
            }
        };
        let gather_started = Instant::now();
        let mut index_hit = false;
        let gathered: Result<Table, String> = if sp.accumulate.is_some() {
            let mut merged: Option<GroupByPartial> = None;
            let mut err = None;
            for reply in replies {
                let Reply::Partial(p) = reply else {
                    err = Some("shard reply shape mismatch".to_string());
                    break;
                };
                match merged.as_mut() {
                    None => merged = Some(*p),
                    Some(m) => {
                        if let Err(e) = m.merge(*p) {
                            err = Some(e.to_string());
                            break;
                        }
                    }
                }
            }
            match (err, merged) {
                (Some(e), _) => Err(e),
                (None, Some(m)) => m.into_table().map_err(|e| e.to_string()),
                (None, None) => Err("scatter returned no partials".to_string()),
            }
        } else {
            let mut partials = Vec::with_capacity(replies.len());
            let mut err = None;
            for reply in replies {
                match reply {
                    Reply::Table {
                        table,
                        index_hit: hit,
                    } => {
                        index_hit |= hit;
                        partials.push(table);
                    }
                    _ => {
                        err = Some("shard reply shape mismatch".to_string());
                        break;
                    }
                }
            }
            match err {
                Some(e) => Err(e),
                None => union_all(&partials).map_err(|e| e.to_string()),
            }
        };
        let result = gathered.and_then(|t| run_query(&t, &sp.post));
        self.metrics.record_shard_scatter(
            self.txs.len() as u64,
            partial_rows,
            gather_started.elapsed().as_micros() as u64,
        );
        if let Some(s) = span {
            s.set_attr("sharded", 1i64);
        }
        Some(result.map(|t| (t, index_hit)))
    }

    /// Drop every worker's slice of `key` (append/publish/stream-push
    /// fan-out); the next query reloads at the new generation.
    pub fn invalidate(&self, key: &str) {
        self.loaded.lock().remove(key);
        let head = frame("POST", "/_shard/invalidate", &[("x-shard-key", key)]);
        let receivers: Vec<_> = (0..self.txs.len())
            .map(|i| self.send(i, head.clone(), None))
            .collect();
        for rx in receivers {
            let _ = rx.recv();
        }
        self.metrics.record_shard_invalidation();
    }

    /// Clear every worker's result cache (slices stay resident). Bench
    /// harnesses use this to measure cold evaluations.
    pub fn clear_caches(&self) {
        let head = frame("POST", "/_shard/clear", &[]);
        let receivers: Vec<_> = (0..self.txs.len())
            .map(|i| self.send(i, head.clone(), None))
            .collect();
        for rx in receivers {
            let _ = rx.recv();
        }
    }

    /// Per-worker counters, in shard order (unresponsive workers omitted).
    pub fn worker_stats(&self) -> Vec<ShardWorkerStats> {
        let head = frame("GET", "/_shard/stats", &[]);
        let receivers: Vec<_> = (0..self.txs.len())
            .map(|i| self.send(i, head.clone(), None))
            .collect();
        receivers
            .into_iter()
            .filter_map(|rx| match rx.recv() {
                Ok(Reply::Stats(s)) => Some(*s),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_ops;
    use shareinsights_tabular::{Column, Field, Schema};

    fn metrics() -> ApiMetrics {
        ApiMetrics::default()
    }

    fn big_table(rows: usize) -> Table {
        let keys = Column::utf8((0..rows).map(|i| format!("k{}", i % 7)));
        let vals = Column::int((0..rows).map(|i| (i as i64 * 37) % 1000));
        Table::new(
            Schema::new(vec![
                Field::new("k", shareinsights_tabular::DataType::Utf8),
                Field::new("v", shareinsights_tabular::DataType::Int64),
            ])
            .unwrap(),
            vec![keys, vals],
        )
        .unwrap()
    }

    fn set(shards: usize) -> ShardSet {
        let mut p = Partitioning::even(shards);
        p.min_rows = 0;
        ShardSet::new(p, metrics())
    }

    fn run_both(s: &ShardSet, table: &Table, segs: &[&str]) {
        let ops = parse_ops(segs).unwrap();
        let expected = run_query(table, &ops).unwrap();
        let (got, _) = s
            .execute("t/d", 1, &segs.join("/"), table, &ops, None)
            .expect("sharded path")
            .expect("query ok");
        assert_eq!(got, expected, "{segs:?}");
    }

    #[test]
    fn scatter_gather_matches_unsharded() {
        let table = big_table(2000);
        for shards in [2, 3, 4] {
            let s = set(shards);
            run_both(&s, &table, &["filter", "k", "k3"]);
            run_both(&s, &table, &["groupby", "k", "sum", "v"]);
            run_both(&s, &table, &["groupby", "k", "avg", "v"]);
            run_both(&s, &table, &["sort", "v", "desc", "limit", "25"]);
            run_both(
                &s,
                &table,
                &["filter", "k", "k1", "groupby", "k", "count", "v"],
            );
        }
    }

    #[test]
    fn unshardable_pipeline_falls_back() {
        let s = set(2);
        let table = big_table(100);
        let ops = parse_ops(&["limit", "5"]).unwrap();
        assert!(s.execute("t/d", 1, "rk", &table, &ops, None).is_none());
        assert_eq!(s.metrics.shard().fallbacks, 1);
    }

    #[test]
    fn row_floor_falls_back() {
        let p = Partitioning::even(2); // min_rows = 1024
        let s = ShardSet::new(p, metrics());
        let table = big_table(100);
        let ops = parse_ops(&["filter", "k", "k1"]).unwrap();
        assert!(s.execute("t/d", 1, "rk", &table, &ops, None).is_none());
    }

    #[test]
    fn query_errors_match_unsharded_strings() {
        let s = set(2);
        let table = big_table(1500);
        let ops = parse_ops(&["filter", "ghost", "x"]).unwrap();
        let unsharded = run_query(&table, &ops).unwrap_err();
        let sharded = s
            .execute("t/d", 1, "rk", &table, &ops, None)
            .expect("scattered")
            .unwrap_err();
        assert_eq!(sharded, unsharded);
    }

    #[test]
    fn generation_bump_reloads_and_invalidation_drops_slices() {
        let s = set(2);
        let table = big_table(1500);
        let ops = parse_ops(&["filter", "k", "k1"]).unwrap();
        s.execute("t/d", 1, "rk", &table, &ops, None)
            .unwrap()
            .unwrap();
        assert_eq!(s.metrics.shard().loads, 2);
        // Same generation: slices reused.
        s.execute("t/d", 1, "rk", &table, &ops, None)
            .unwrap()
            .unwrap();
        assert_eq!(s.metrics.shard().loads, 2);
        // New generation: reload.
        s.execute("t/d", 2, "rk", &table, &ops, None)
            .unwrap()
            .unwrap();
        assert_eq!(s.metrics.shard().loads, 4);
        s.invalidate("t/d");
        let stats = s.worker_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|w| w.slices == 0));
        s.execute("t/d", 2, "rk", &table, &ops, None)
            .unwrap()
            .unwrap();
        assert_eq!(s.metrics.shard().loads, 6);
    }

    #[test]
    fn worker_result_cache_hits_on_repeat() {
        let s = set(2);
        let table = big_table(1500);
        let ops = parse_ops(&["groupby", "k", "sum", "v"]).unwrap();
        s.execute("t/d", 1, "rk", &table, &ops, None)
            .unwrap()
            .unwrap();
        s.execute("t/d", 1, "rk", &table, &ops, None)
            .unwrap()
            .unwrap();
        let stats = s.worker_stats();
        assert!(stats.iter().all(|w| w.result_hits >= 1), "{stats:?}");
        s.clear_caches();
        s.execute("t/d", 1, "rk", &table, &ops, None)
            .unwrap()
            .unwrap();
        let after = s.worker_stats();
        assert!(after.iter().all(|w| w.result_hits == 1), "{after:?}");
    }
}
