//! JSON rendering of completed traces as span trees.
//!
//! A [`TraceRecord`] stores its spans flat; these helpers reassemble the
//! parent/child structure for `GET /trace/recent` and `GET /trace/<id>`.

use crate::json::quote;
use shareinsights_core::trace::{SpanRecord, TraceRecord};

/// Render one trace as a JSON object with a nested span tree.
pub fn trace_json(trace: &TraceRecord) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"trace_id\": {}",
        quote(&trace.trace_id.to_string())
    ));
    out.push_str(&format!(", \"duration_us\": {}", trace.duration_us()));
    out.push_str(", \"root\": ");
    match trace.root() {
        Some(root) => span_node(trace, root, &mut out, 0),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Render a list of traces (newest first) as `{"traces": [...]}`.
pub fn trace_list_json(traces: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traces\": [");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&trace_json(t));
    }
    out.push_str("]}");
    out
}

/// Append one span node `{name, start_us, elapsed_us, attrs, children}`.
///
/// `depth` guards against parent cycles in malformed records; real traces
/// are trees by construction.
fn span_node(trace: &TraceRecord, span: &SpanRecord, out: &mut String, depth: usize) {
    out.push('{');
    out.push_str(&format!("\"name\": {}", quote(&span.name)));
    out.push_str(&format!(", \"start_us\": {}", span.start_us));
    out.push_str(&format!(", \"elapsed_us\": {}", span.elapsed_us));
    out.push_str(", \"attrs\": {");
    for (i, (key, value)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", quote(key), value.to_json()));
    }
    out.push_str("}, \"children\": [");
    if depth < 64 {
        for (i, child) in trace.children_of(span.id).into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            span_node(trace, child, out, depth + 1);
        }
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_core::trace::{TraceId, Tracer};

    fn completed_trace() -> TraceRecord {
        let tracer = Tracer::new();
        let root = tracer
            .start_trace("GET /q", Some(TraceId(0xabc)))
            .expect("explicit ids are always sampled");
        let child = root.child("query_eval");
        child.child_at(
            "groupby",
            child.start_offset_us(),
            42,
            vec![("rows_in", 100i64.into()), ("rows_out", 7i64.into())],
        );
        child.finish();
        root.finish();
        tracer.find(TraceId(0xabc)).expect("trace sealed")
    }

    #[test]
    fn renders_nested_span_tree() {
        let json = trace_json(&completed_trace());
        let doc = shareinsights_tabular::io::json::parse_json(&json).expect("valid json");
        assert_eq!(
            doc.path("trace_id").unwrap().to_value().as_str(),
            Some("0000000000000abc")
        );
        assert_eq!(
            doc.path("root.name").unwrap().to_value().as_str(),
            Some("GET /q")
        );
        assert_eq!(
            doc.path("root.children.0.name")
                .unwrap()
                .to_value()
                .as_str(),
            Some("query_eval")
        );
        assert_eq!(
            doc.path("root.children.0.children.0.name")
                .unwrap()
                .to_value()
                .as_str(),
            Some("groupby")
        );
        assert_eq!(
            doc.path("root.children.0.children.0.attrs.rows_in")
                .unwrap()
                .to_value()
                .as_int(),
            Some(100)
        );
        assert_eq!(
            doc.path("root.children.0.children.0.elapsed_us")
                .unwrap()
                .to_value()
                .as_int(),
            Some(42)
        );
    }

    #[test]
    fn renders_trace_list() {
        let t = completed_trace();
        let json = trace_list_json(&[t.clone(), t]);
        let doc = shareinsights_tabular::io::json::parse_json(&json).expect("valid json");
        assert_eq!(
            doc.path("traces.0.trace_id").unwrap().to_value().as_str(),
            Some("0000000000000abc")
        );
        assert_eq!(
            doc.path("traces.1.root.name").unwrap().to_value().as_str(),
            Some("GET /q")
        );
    }

    #[test]
    fn empty_list_and_missing_root() {
        assert_eq!(trace_list_json(&[]), "{\"traces\": []}");
        let orphan = TraceRecord {
            trace_id: TraceId(1),
            spans: Vec::new(),
        };
        let json = trace_json(&orphan);
        assert!(json.contains("\"root\": null"), "{json}");
    }
}
