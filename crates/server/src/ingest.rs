//! Streaming ingestion pipeline: bounded-window body reads feeding
//! record-aligned segments to parallel decode workers.
//!
//! The `POST /dashboards/:name/ds/:dataset/ingest` route appends rows to
//! an endpoint dataset without re-running its flow. Both serve modes hand
//! the request body to an [`IngestSession`] *as it arrives* (via
//! [`crate::wire::BodyReader`]), so a multi-gigabyte upload never holds
//! more than a bounded window in memory:
//!
//! ```text
//!  socket ──▶ BodyReader ──▶ segmenter ──▶ bounded queue ──▶ decode workers
//!             (dechunk,      (split on        (backpressure     (CSV/JSON-lines
//!              cap check)     record           caps buffered     → Table, in
//!                             boundaries)      segments)         parallel)
//! ```
//!
//! The segmenter accumulates roughly [`SEGMENT_BYTES`] and always splits
//! on a record boundary (the last newline), so chunk boundaries straddling
//! records are invisible to the decoders. Decoded segment tables are
//! sequence-tagged, reassembled in order at [`IngestSession::finish`], and
//! committed through [`shareinsights_core::Platform::append_endpoint`] —
//! where the server merges the endpoint's warm `IndexedTable` instead of
//! dropping it. Until commit, the endpoint is untouched: a decode error,
//! an over-cap body, or a mid-body disconnect aborts with no side effects.

use crate::http::{Method, Request, Response, Status};
use crate::router::Server;
use crate::wire::{BodyFraming, BodyReader, ParsedHead, WireLimits};
use parking_lot::Mutex;
use shareinsights_core::trace::Span;
use shareinsights_core::TraceId;
use shareinsights_tabular::io::csv::{read_csv, CsvOptions};
use shareinsights_tabular::io::json::{parse_json, read_json_records, JsonValue, PathMapping};
use shareinsights_tabular::Table;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Target decode-segment size. Segments end on record boundaries, so a
/// single oversized record can exceed this — it is a watermark, not a cap.
pub const SEGMENT_BYTES: usize = 256 * 1024;

/// Decode workers per session. Two overlap decode with the socket read
/// without competing with the serve pool for cores on small uploads.
const DECODE_WORKERS: usize = 2;

/// Bounded depth of the segment queue: with [`SEGMENT_BYTES`]-sized
/// segments this caps buffered-but-undecoded body at a few megabytes —
/// the "bounded window" part of the memory guarantee. A full queue
/// backpressures the socket read.
const SEGMENT_QUEUE: usize = 8;

/// Body formats the ingest route accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestFormat {
    /// CSV; the body's first record is the header.
    Csv,
    /// Newline-delimited JSON objects; columns come from the first
    /// record's keys.
    JsonLines,
}

impl IngestFormat {
    /// Parse the `?format=` query parameter (absent means CSV).
    pub fn parse(param: Option<&str>) -> Result<IngestFormat, String> {
        match param {
            None | Some("csv") => Ok(IngestFormat::Csv),
            Some("jsonl") | Some("ndjson") => Ok(IngestFormat::JsonLines),
            Some(other) => Err(format!(
                "unsupported ingest format '{other}' (expected csv, jsonl or ndjson)"
            )),
        }
    }
}

/// Returns `(dashboard, dataset)` when the request head addresses the
/// streaming ingest route — how the serve loops decide to stream a body
/// instead of buffering it.
pub fn ingest_target(request: &Request) -> Option<(String, String)> {
    if request.method != Method::Post {
        return None;
    }
    match request.segments().as_slice() {
        ["dashboards", dashboard, "ds", dataset, "ingest"] => {
            Some(((*dashboard).to_string(), (*dataset).to_string()))
        }
        _ => None,
    }
}

/// How one segment turns into a [`Table`]; fixed once the first record
/// arrives and shared with every decode worker.
enum SegmentDecoder {
    Csv { columns: Vec<String> },
    JsonLines { mapping: PathMapping },
}

impl SegmentDecoder {
    fn decode(&self, text: &str) -> Result<Table, String> {
        match self {
            SegmentDecoder::Csv { columns } => {
                let opts = CsvOptions {
                    has_header: false,
                    column_names: Some(columns.clone()),
                    ..Default::default()
                };
                read_csv(text, &opts).map_err(|e| e.to_string())
            }
            SegmentDecoder::JsonLines { mapping } => {
                read_json_records(text, mapping).map_err(|e| e.to_string())
            }
        }
    }
}

type SegmentJob = (usize, Arc<SegmentDecoder>, String);
type SegmentResult = (usize, Result<Table, String>);

/// One in-flight streaming ingest: segmenter state on the reading side,
/// a bounded queue, and the decode workers draining it.
pub struct IngestSession {
    server: Server,
    dashboard: String,
    dataset: String,
    format: IngestFormat,
    decoder: Option<Arc<SegmentDecoder>>,
    /// Bytes received but not yet dispatched (tail after the last record
    /// boundary, plus anything before the first complete record).
    pending: Vec<u8>,
    seq: usize,
    bytes_in: u64,
    tx: Option<SyncSender<SegmentJob>>,
    workers: Vec<JoinHandle<()>>,
    results: Arc<Mutex<Vec<SegmentResult>>>,
    /// First error raised on the reading side (bad header/first record).
    early_error: Option<String>,
}

impl IngestSession {
    /// Validate the target and spin up the decode workers. Errors are
    /// ready-to-send responses (404 unknown dashboard, 400 bad format,
    /// 409 reserved namespace).
    pub fn start(
        server: &Server,
        dashboard: &str,
        dataset: &str,
        format_param: Option<&str>,
    ) -> Result<IngestSession, Response> {
        if let Some(resp) = crate::router::reserved_namespace(dashboard) {
            return Err(resp);
        }
        let format = IngestFormat::parse(format_param)
            .map_err(|e| Response::error(Status::BadRequest, e))?;
        if server.platform().dashboard(dashboard).is_err() {
            return Err(Response::error(
                Status::NotFound,
                format!("no dashboard '{dashboard}'"),
            ));
        }
        let (tx, rx) = sync_channel::<SegmentJob>(SEGMENT_QUEUE);
        let rx = Arc::new(Mutex::new(rx));
        let results: Arc<Mutex<Vec<SegmentResult>>> = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::with_capacity(DECODE_WORKERS);
        for i in 0..DECODE_WORKERS {
            let rx = Arc::clone(&rx);
            let results = Arc::clone(&results);
            let metrics = server.platform().api_metrics().clone();
            let handle = std::thread::Builder::new()
                .name(format!("ingest-decode-{i}"))
                .spawn(move || decode_worker(&rx, &results, &metrics))
                .map_err(|e| {
                    Response::error(
                        Status::ServiceUnavailable,
                        format!("cannot spawn ingest decode worker: {e}"),
                    )
                })?;
            workers.push(handle);
        }
        Ok(IngestSession {
            server: server.clone(),
            dashboard: dashboard.to_string(),
            dataset: dataset.to_string(),
            format,
            decoder: None,
            pending: Vec::new(),
            seq: 0,
            bytes_in: 0,
            tx: Some(tx),
            workers,
            results,
            early_error: None,
        })
    }

    /// Feed one window of body bytes. Dispatches complete-record segments
    /// to the decode workers as soon as enough accumulate; blocks (socket
    /// backpressure) when the bounded queue is full.
    pub fn push(&mut self, data: &[u8]) {
        if self.early_error.is_some() {
            // Already failed: swallow the rest of the body so the
            // connection can drain to a clean response boundary.
            self.bytes_in += data.len() as u64;
            return;
        }
        self.bytes_in += data.len() as u64;
        self.pending.extend_from_slice(data);
        if self.decoder.is_none() && !self.try_init_decoder(false) {
            return; // first record still incomplete
        }
        while self.pending.len() >= SEGMENT_BYTES {
            // Split on the last record boundary in the window.
            let Some(cut) = self.pending.iter().rposition(|&b| b == b'\n') else {
                return; // one giant record, keep accumulating
            };
            let rest = self.pending.split_off(cut + 1);
            let segment = std::mem::replace(&mut self.pending, rest);
            self.dispatch(segment);
        }
    }

    /// Total body bytes pushed so far (metrics + span attributes).
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Derive the decoder from the first complete record. Returns false
    /// while the record is still incomplete (and `final_flush` is false).
    fn try_init_decoder(&mut self, final_flush: bool) -> bool {
        let newline = self.pending.iter().position(|&b| b == b'\n');
        let line_end = match newline {
            Some(i) => i,
            None if final_flush => self.pending.len(),
            None => return false,
        };
        if self.pending[..line_end].is_empty() {
            self.early_error = Some("ingest body starts with an empty record".to_string());
            return false;
        }
        let line = match std::str::from_utf8(&self.pending[..line_end]) {
            Ok(s) => s.trim_end_matches('\r').to_string(),
            Err(_) => {
                self.early_error = Some("ingest body is not valid UTF-8".to_string());
                return false;
            }
        };
        match self.format {
            IngestFormat::Csv => {
                // Parse the header through the CSV reader so quoting
                // rules match the data records.
                match read_csv(&format!("{line}\n"), &CsvOptions::default()) {
                    Ok(t) => {
                        let columns: Vec<String> =
                            t.schema().names().iter().map(|s| s.to_string()).collect();
                        // The header line is consumed, not decoded as data.
                        self.pending
                            .drain(..newline.map_or(self.pending.len(), |i| i + 1));
                        self.decoder = Some(Arc::new(SegmentDecoder::Csv { columns }));
                    }
                    Err(e) => self.early_error = Some(format!("ingest CSV header: {e}")),
                }
            }
            IngestFormat::JsonLines => match parse_json(&line) {
                Ok(JsonValue::Object(map)) => {
                    let entries: Vec<(String, String)> =
                        map.keys().map(|k| (k.clone(), k.clone())).collect();
                    // The first record is data too — it stays in pending.
                    self.decoder = Some(Arc::new(SegmentDecoder::JsonLines {
                        mapping: PathMapping::new(entries),
                    }));
                }
                Ok(_) => {
                    self.early_error =
                        Some("ingest JSON-lines records must be objects".to_string());
                }
                Err(e) => self.early_error = Some(format!("ingest JSON-lines first record: {e}")),
            },
        }
        self.decoder.is_some()
    }

    fn dispatch(&mut self, segment: Vec<u8>) {
        let Some(decoder) = self.decoder.clone() else {
            return;
        };
        let text = match String::from_utf8(segment) {
            Ok(s) => s,
            Err(_) => {
                self.early_error = Some("ingest body is not valid UTF-8".to_string());
                return;
            }
        };
        if text.trim().is_empty() {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        if let Some(tx) = &self.tx {
            // Blocking send: a full queue holds the socket read back,
            // which is exactly the bounded-memory contract.
            let _ = tx.send((seq, decoder, text));
        }
    }

    /// Drain the queue and join the workers (idempotent).
    fn shutdown_workers(&mut self) {
        self.tx = None; // closes the channel; workers exit on disconnect
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Abort the ingest, leaving the endpoint unchanged (client
    /// disconnect, over-cap body, timeout). Records the abort.
    pub fn abort(mut self) {
        self.shutdown_workers();
        self.server.platform().api_metrics().record_ingest_abort();
    }

    /// Body complete: flush the tail segment, reassemble decoded tables
    /// in order, and commit the append (endpoint swap + generation bump +
    /// warm-index merge). Any decode error aborts with a 400 and no
    /// side effects.
    pub fn finish(mut self, span: Option<&Span>) -> Response {
        if self.decoder.is_none() && self.early_error.is_none() {
            // Body ended before the first newline; the whole body is the
            // first (and only) record.
            self.try_init_decoder(true);
        }
        if self.early_error.is_none() && !self.pending.is_empty() {
            let tail = std::mem::take(&mut self.pending);
            self.dispatch(tail);
        }
        self.shutdown_workers();
        if let Some(e) = self.early_error.take() {
            self.server.platform().api_metrics().record_ingest_abort();
            return Response::error(Status::BadRequest, e);
        }
        let mut results = std::mem::take(&mut *self.results.lock());
        results.sort_by_key(|(seq, _)| *seq);
        let mut tables = Vec::with_capacity(results.len());
        for (_, r) in results {
            match r {
                Ok(t) => tables.push(t),
                Err(e) => {
                    self.server.platform().api_metrics().record_ingest_abort();
                    return Response::error(
                        Status::BadRequest,
                        format!("ingest segment decode: {e}"),
                    );
                }
            }
        }
        self.server.commit_ingest(
            &self.dashboard,
            &self.dataset,
            &tables,
            self.seq as u64,
            self.bytes_in,
            span,
        )
    }
}

/// One streamed ingest request being driven by a serve loop: the
/// [`BodyReader`] de-framing wire bytes, the [`IngestSession`] decoding
/// them, and the tracing + per-route metrics that
/// [`Server::handle_traced`](crate::router::Server::handle_traced) would
/// have provided had the body been buffered.
///
/// Lifecycle: [`StreamedIngest::begin`] after the head parses, then
/// either drain [`StreamedIngest::take_early`] (the route rejected the
/// request before any body byte), or loop `feed` until `body_complete`,
/// then `finish`. A vanished or stalled client calls `abort` instead —
/// the endpoint is untouched.
pub struct StreamedIngest {
    server: Server,
    reader: BodyReader,
    session: Option<IngestSession>,
    early: Option<Response>,
    root: Option<Span>,
    dispatch: Option<Span>,
    started: Instant,
    label: &'static str,
    path: String,
}

impl StreamedIngest {
    /// Start a streamed ingest for a parsed head whose route matched
    /// [`ingest_target`]. Never fails: pre-body rejections (unknown
    /// dashboard, bad format, announced over-cap body) surface through
    /// [`StreamedIngest::take_early`].
    pub fn begin(server: &Server, head: &ParsedHead, limits: &WireLimits) -> StreamedIngest {
        let request = &head.request;
        let label = {
            let segments = request.segments();
            crate::metrics::route_label(request.method, &segments)
        };
        let explicit = request.header("x-trace-id").and_then(TraceId::parse);
        let root = server.platform().tracer().start_trace(label, explicit);
        let dispatch = root.as_ref().map(|r| r.child("dispatch"));
        let reader = BodyReader::new(head.framing, limits);
        let mut early = None;
        let mut session = None;
        if reader.announced_over_cap() {
            early = Some(Response::error(
                Status::PayloadTooLarge,
                format!(
                    "request body exceeds {} bytes",
                    limits.max_stream_body_bytes
                ),
            ));
        } else {
            match ingest_target(request) {
                Some((dashboard, dataset)) => {
                    match IngestSession::start(
                        server,
                        &dashboard,
                        &dataset,
                        request.query.get("format").map(String::as_str),
                    ) {
                        Ok(s) => session = Some(s),
                        Err(resp) => early = Some(resp),
                    }
                }
                None => {
                    early = Some(Response::error(
                        Status::NotFound,
                        format!("no route for {} {}", request.method, request.path),
                    ));
                }
            }
        }
        StreamedIngest {
            server: server.clone(),
            reader,
            session,
            early,
            root,
            dispatch,
            started: Instant::now(),
            label,
            path: request.path.clone(),
        }
    }

    /// The pre-body rejection, if any. The caller sends it and closes the
    /// connection (the unread body makes resynchronising impossible).
    pub fn take_early(&mut self) -> Option<Response> {
        let resp = self.early.take()?;
        if let Some(session) = self.session.take() {
            session.abort();
        } else {
            self.server.platform().api_metrics().record_ingest_abort();
        }
        self.seal(Some(&resp), true);
        Some(resp)
    }

    /// Feed raw socket bytes through the body de-framer into the decode
    /// pipeline. Returns how many bytes of `buf` were consumed — bytes
    /// past a completed body belong to the next pipelined request and
    /// stay with the caller. A mid-transfer failure (over-cap body,
    /// malformed chunk framing) returns the terminal response to send
    /// before closing.
    pub fn feed(&mut self, buf: &[u8]) -> Result<usize, Response> {
        match self.reader.feed(buf) {
            Ok(progress) => {
                if let Some(session) = self.session.as_mut() {
                    session.push(&progress.data);
                }
                Ok(progress.consumed)
            }
            Err((status, message)) => {
                if let Some(session) = self.session.take() {
                    session.abort();
                } else {
                    self.server.platform().api_metrics().record_ingest_abort();
                }
                let resp = Response::error(status, message);
                self.seal(Some(&resp), true);
                Err(resp)
            }
        }
    }

    /// True once the whole body has been drained.
    pub fn body_complete(&self) -> bool {
        self.reader.finished()
    }

    /// Commit the ingest and produce its response (the body is
    /// complete). Records the per-route metric and finishes the trace.
    pub fn finish(mut self) -> Response {
        let Some(session) = self.session.take() else {
            // `take_early` should have drained this request first.
            let resp = Response::error(Status::BadRequest, "ingest rejected before body");
            self.seal(Some(&resp), true);
            return resp;
        };
        let resp = session.finish(self.dispatch.as_ref());
        self.seal(Some(&resp), true);
        resp
    }

    /// The client vanished or stalled mid-body: abort with the endpoint
    /// unchanged. `answered` is the status the serve loop sends (408 on a
    /// stall), `None` when the peer is already gone. The route metric is
    /// not recorded — the caller accounts the `(timeout)` / `(malformed)`
    /// pseudo-route, matching buffered-body semantics.
    pub fn abort(mut self, answered: Option<Status>) {
        if let Some(session) = self.session.take() {
            session.abort();
        } else {
            self.server.platform().api_metrics().record_ingest_abort();
        }
        let resp = answered.map(|status| Response::error(status, "aborted"));
        self.seal(resp.as_ref(), false);
    }

    /// Finish spans and (optionally) the per-route metric, exactly once.
    fn seal(&mut self, response: Option<&Response>, record_route: bool) {
        let elapsed_us = self.started.elapsed().as_micros() as u64;
        if let Some(span) = self.dispatch.take() {
            span.finish();
        }
        if let Some(mut root) = self.root.take() {
            root.set_attr("path", self.path.as_str());
            if let Some(resp) = response {
                root.set_attr("status", i64::from(resp.status.code()));
            }
            root.finish();
        }
        if record_route {
            let ok = response.is_some_and(Response::is_ok);
            self.server
                .platform()
                .api_metrics()
                .record(self.label, ok, elapsed_us);
        }
    }
}

/// True when a parsed head should be streamed through a
/// [`StreamedIngest`] instead of buffered whole: the ingest route, with
/// a body on the wire.
pub fn wants_streaming(head: &ParsedHead) -> bool {
    head.framing != BodyFraming::None && ingest_target(&head.request).is_some()
}

/// A decode worker: drain sequence-tagged segments off the shared queue,
/// decode each into a [`Table`], and record the per-segment telemetry.
fn decode_worker(
    rx: &Mutex<Receiver<SegmentJob>>,
    results: &Mutex<Vec<SegmentResult>>,
    metrics: &shareinsights_core::telemetry::ApiMetrics,
) {
    loop {
        // Take the lock only to pull one job so both workers drain the
        // queue concurrently while decoding outside the lock.
        let job = { rx.lock().recv() };
        let Ok((seq, decoder, text)) = job else {
            return; // channel closed: session finished or aborted
        };
        let bytes = text.len() as u64;
        let started = Instant::now();
        let decoded = decoder.decode(&text);
        metrics.record_ingest_segment(bytes, started.elapsed().as_micros() as u64);
        results.lock().push((seq, decoded));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parses_and_rejects() {
        assert_eq!(IngestFormat::parse(None).unwrap(), IngestFormat::Csv);
        assert_eq!(IngestFormat::parse(Some("csv")).unwrap(), IngestFormat::Csv);
        assert_eq!(
            IngestFormat::parse(Some("jsonl")).unwrap(),
            IngestFormat::JsonLines
        );
        assert_eq!(
            IngestFormat::parse(Some("ndjson")).unwrap(),
            IngestFormat::JsonLines
        );
        assert!(IngestFormat::parse(Some("parquet")).is_err());
    }

    #[test]
    fn target_matches_only_the_ingest_shape() {
        let hit = Request::new(
            Method::Post,
            "/dashboards/retail/ds/sales/ingest?format=csv",
        );
        assert_eq!(
            ingest_target(&hit),
            Some(("retail".to_string(), "sales".to_string()))
        );
        let wrong_method = Request::new(Method::Get, "/dashboards/retail/ds/sales/ingest");
        assert_eq!(ingest_target(&wrong_method), None);
        let other = Request::new(Method::Post, "/retail/ds/sales/sql");
        assert_eq!(ingest_target(&other), None);
    }
}
