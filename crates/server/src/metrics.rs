//! Route normalization and the `/stats` payload.
//!
//! Every request is attributed to a *route label* — the match arm shape
//! with path parameters replaced by `:name` placeholders — so per-route
//! counters aggregate across dashboards and datasets instead of exploding
//! per URL. The labels, counters and latency histograms live in
//! [`shareinsights_core::telemetry::ApiMetrics`]; this module renders them
//! (plus the query-cache counters) as the `/stats` JSON.

use crate::cache::CacheStats;
use crate::http::Method;
use shareinsights_core::telemetry::{ConnectionStats, RouteStats};
use std::collections::BTreeMap;

/// Pool-level rejection label (queue full → 503 before routing).
pub const ROUTE_REJECTED: &str = "(rejected)";
/// Pool-level deadline label (connection expired in the queue → 503).
pub const ROUTE_DEADLINE: &str = "(deadline)";
/// Wire-level parse failure label (unreadable HTTP → 400 before routing).
pub const ROUTE_MALFORMED: &str = "(malformed)";
/// Wire-level stall label (socket timed out mid-request → 408 when the head
/// was already parsed, silent close otherwise).
pub const ROUTE_TIMEOUT: &str = "(timeout)";

/// The normalized label a request is metered under.
pub fn route_label(method: Method, segments: &[&str]) -> &'static str {
    match (method, segments) {
        (Method::Get, ["stats"]) => "GET /stats",
        (Method::Get, ["dashboards"]) => "GET /dashboards",
        (Method::Post, ["dashboards", _, "create"]) => "POST /dashboards/:name/create",
        (Method::Put, ["dashboards", _, "flow"]) => "PUT /dashboards/:name/flow",
        (Method::Get, ["dashboards", _, "flow"]) => "GET /dashboards/:name/flow",
        (Method::Post, ["dashboards", _, "run"]) => "POST /dashboards/:name/run",
        (Method::Post, ["dashboards", _, "fork", _]) => "POST /dashboards/:name/fork/:to",
        (Method::Get, ["dashboards", _, "explore"]) => "GET /dashboards/:name/explore",
        (Method::Get, ["dashboards", _, "meta"]) => "GET /dashboards/:name/meta",
        (Method::Get, ["dashboards", _, "suggest", _]) => "GET /dashboards/:name/suggest/:object",
        (Method::Get, ["dashboards", _, "log"]) => "GET /dashboards/:name/log",
        (Method::Get, [_, "ds"]) => "GET /:dashboard/ds",
        (Method::Get, [_, "ds", _]) => "GET /:dashboard/ds/:dataset",
        (Method::Get, [_, "ds", _, ..]) => "GET /:dashboard/ds/:dataset/query",
        _ => "(unmatched)",
    }
}

/// Methods a path shape accepts, regardless of the method actually used —
/// the basis for 405 vs 404 responses.
pub fn allowed_methods(segments: &[&str]) -> &'static [Method] {
    match segments {
        ["stats"] | ["dashboards"] => &[Method::Get],
        ["dashboards", _, "create"] | ["dashboards", _, "run"] | ["dashboards", _, "fork", _] => {
            &[Method::Post]
        }
        ["dashboards", _, "flow"] => &[Method::Get, Method::Put],
        ["dashboards", _, "explore"]
        | ["dashboards", _, "meta"]
        | ["dashboards", _, "log"]
        | ["dashboards", _, "suggest", _] => &[Method::Get],
        [_, "ds"] | [_, "ds", _, ..] => &[Method::Get],
        _ => &[],
    }
}

/// Render the `/stats` document: per-route counters + cache counters +
/// connection-level counters.
pub fn stats_json(
    routes: &BTreeMap<String, RouteStats>,
    cache: &CacheStats,
    conns: &ConnectionStats,
) -> String {
    let mut out = String::from("{\"routes\": {");
    for (i, (label, s)) in routes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{}: {{\"count\": {}, \"errors\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"max_us\": {}, \"mean_us\": {}}}",
            crate::json::quote(label),
            s.count,
            s.errors,
            s.cache_hits,
            s.cache_misses,
            s.latency.quantile_us(0.50),
            s.latency.quantile_us(0.95),
            s.latency.max_us,
            s.latency.mean_us(),
        ));
    }
    out.push_str(&format!(
        "}}, \"cache\": {{\"entries\": {}, \"bytes\": {}, \"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"invalidations\": {}}}",
        cache.entries, cache.bytes, cache.hits, cache.misses, cache.evictions, cache.invalidations
    ));
    let buckets: Vec<String> = conns
        .requests_per_connection
        .iter()
        .map(|n| n.to_string())
        .collect();
    out.push_str(&format!(
        ", \"connections\": {{\"accepted\": {}, \"closed\": {}, \"reused\": {}, \
         \"requests\": {}, \"idle_timeouts\": {}, \"io_timeouts\": {}, \
         \"requests_per_connection\": [{}]}}}}",
        conns.accepted,
        conns.closed,
        conns.reused,
        conns.requests,
        conns.idle_timeouts,
        conns.io_timeouts,
        buckets.join(", ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_normalize_parameters() {
        assert_eq!(
            route_label(
                Method::Get,
                &["retail", "ds", "sales", "groupby", "a", "sum", "b"]
            ),
            "GET /:dashboard/ds/:dataset/query"
        );
        assert_eq!(
            route_label(Method::Get, &["retail", "ds", "sales"]),
            "GET /:dashboard/ds/:dataset"
        );
        assert_eq!(
            route_label(Method::Get, &["retail", "ds"]),
            "GET /:dashboard/ds"
        );
        assert_eq!(route_label(Method::Get, &["stats"]), "GET /stats");
        assert_eq!(
            route_label(Method::Post, &["dashboards", "x", "run"]),
            "POST /dashboards/:name/run"
        );
        assert_eq!(route_label(Method::Delete, &["dashboards"]), "(unmatched)");
    }

    #[test]
    fn allowed_methods_distinguish_404_from_405() {
        assert_eq!(allowed_methods(&["dashboards"]), &[Method::Get]);
        assert_eq!(
            allowed_methods(&["dashboards", "x", "flow"]),
            &[Method::Get, Method::Put]
        );
        assert!(allowed_methods(&["no", "such", "shape", "here"]).is_empty());
    }

    #[test]
    fn stats_json_parses() {
        let mut routes = BTreeMap::new();
        let mut s = RouteStats {
            count: 2,
            ..RouteStats::default()
        };
        s.latency.record(100);
        s.latency.record(300);
        routes.insert("GET /stats".to_string(), s);
        let mut conns = ConnectionStats {
            accepted: 3,
            closed: 2,
            reused: 1,
            requests: 9,
            idle_timeouts: 1,
            ..ConnectionStats::default()
        };
        conns.requests_per_connection[2] = 2;
        let json = stats_json(&routes, &CacheStats::default(), &conns);
        let doc = shareinsights_tabular::io::json::parse_json(&json).unwrap();
        assert_eq!(
            doc.path("routes.GET /stats.count")
                .unwrap()
                .to_value()
                .as_int(),
            Some(2)
        );
        assert_eq!(doc.path("cache.hits").unwrap().to_value().as_int(), Some(0));
        assert_eq!(
            doc.path("connections.accepted")
                .unwrap()
                .to_value()
                .as_int(),
            Some(3)
        );
        assert_eq!(
            doc.path("connections.reused").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("connections.requests_per_connection.2")
                .unwrap()
                .to_value()
                .as_int(),
            Some(2)
        );
    }
}
