//! Route normalization and the `/stats` payload.
//!
//! Every request is attributed to a *route label* — the match arm shape
//! with path parameters replaced by `:name` placeholders — so per-route
//! counters aggregate across dashboards and datasets instead of exploding
//! per URL. The labels, counters and latency histograms live in
//! [`shareinsights_core::telemetry::ApiMetrics`]; this module renders them
//! (plus the query-cache counters) as the `/stats` JSON.

use crate::cache::CacheStats;
use crate::http::Method;
use shareinsights_core::telemetry::{
    ConnectionStats, IndexStats, IngestStats, LatencyHistogram, OperatorStats, ProcessStats,
    ReactorStats, RouteStats, SelfScrapeStats, ShardStats, ShardWorkerStats, SqlStats, StreamStats,
    CONN_REQUESTS_BOUNDS, LATENCY_BOUNDS_US,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Pool-level rejection label (queue full → 503 before routing).
pub const ROUTE_REJECTED: &str = "(rejected)";
/// Pool-level deadline label (connection expired in the queue → 503).
pub const ROUTE_DEADLINE: &str = "(deadline)";
/// Wire-level parse failure label (unreadable HTTP → 400 before routing).
pub const ROUTE_MALFORMED: &str = "(malformed)";
/// Wire-level stall label (socket timed out mid-request → 408 when the head
/// was already parsed, silent close otherwise).
pub const ROUTE_TIMEOUT: &str = "(timeout)";

/// The normalized label a request is metered under.
pub fn route_label(method: Method, segments: &[&str]) -> &'static str {
    match (method, segments) {
        (Method::Get, ["stats"]) => "GET /stats",
        (Method::Get, ["metrics"]) => "GET /metrics",
        (Method::Get, ["trace", "recent"]) => "GET /trace/recent",
        (Method::Get, ["trace", _]) => "GET /trace/:id",
        (Method::Get, ["dashboards"]) => "GET /dashboards",
        (Method::Post, ["dashboards", _, "create"]) => "POST /dashboards/:name/create",
        (Method::Put, ["dashboards", _, "flow"]) => "PUT /dashboards/:name/flow",
        (Method::Get, ["dashboards", _, "flow"]) => "GET /dashboards/:name/flow",
        (Method::Post, ["dashboards", _, "run"]) => "POST /dashboards/:name/run",
        (Method::Post, ["dashboards", _, "fork", _]) => "POST /dashboards/:name/fork/:to",
        (Method::Get, ["dashboards", _, "explore"]) => "GET /dashboards/:name/explore",
        (Method::Get, ["dashboards", _, "meta"]) => "GET /dashboards/:name/meta",
        (Method::Get, ["dashboards", _, "suggest", _]) => "GET /dashboards/:name/suggest/:object",
        (Method::Get, ["dashboards", _, "log"]) => "GET /dashboards/:name/log",
        (Method::Post, ["dashboards", _, "stream", "start"]) => {
            "POST /dashboards/:name/stream/start"
        }
        (Method::Post, ["dashboards", _, "stream", "stop"]) => "POST /dashboards/:name/stream/stop",
        (Method::Post, ["dashboards", _, "stream", "push", _]) => {
            "POST /dashboards/:name/stream/push/:source"
        }
        (Method::Post, ["dashboards", _, "ds", _, "ingest"]) => {
            "POST /dashboards/:name/ds/:dataset/ingest"
        }
        (Method::Get, [_, "ds"]) => "GET /:dashboard/ds",
        (Method::Get, [_, "ds", _]) => "GET /:dashboard/ds/:dataset",
        (Method::Get, [_, "ds", _, "subscribe"]) => "GET /:dashboard/ds/:dataset/subscribe",
        (Method::Post, [_, "ds", _, "sql"]) => "POST /:dashboard/ds/:dataset/sql",
        (Method::Get, [_, "ds", _, ..]) => "GET /:dashboard/ds/:dataset/query",
        _ => "(unmatched)",
    }
}

/// Methods a path shape accepts, regardless of the method actually used —
/// the basis for 405 vs 404 responses.
pub fn allowed_methods(segments: &[&str]) -> &'static [Method] {
    match segments {
        ["stats"] | ["dashboards"] | ["metrics"] | ["trace", _] => &[Method::Get],
        ["dashboards", _, "create"] | ["dashboards", _, "run"] | ["dashboards", _, "fork", _] => {
            &[Method::Post]
        }
        ["dashboards", _, "stream", "start"]
        | ["dashboards", _, "stream", "stop"]
        | ["dashboards", _, "stream", "push", _]
        | ["dashboards", _, "ds", _, "ingest"] => &[Method::Post],
        ["dashboards", _, "flow"] => &[Method::Get, Method::Put],
        ["dashboards", _, "explore"]
        | ["dashboards", _, "meta"]
        | ["dashboards", _, "log"]
        | ["dashboards", _, "suggest", _] => &[Method::Get],
        // `/ds/<name>/sql` also matches the GET query grammar (where it
        // parses as an invalid op, a 400 — still a GET shape, not a 405).
        [_, "ds", _, "sql"] => &[Method::Get, Method::Post],
        [_, "ds"] | [_, "ds", _, ..] => &[Method::Get],
        _ => &[],
    }
}

/// Render the `/stats` document: per-route counters + cache counters +
/// connection-level counters + per-operator engine stats + index
/// acceleration counters + reactor event-loop counters + live-stream
/// counters + SQL frontend counters + streaming-ingest counters +
/// sharded data-plane counters (with a per-shard block) + telemetry
/// self-scrape counters + process-level gauges.
#[allow(clippy::too_many_arguments)]
pub fn stats_json(
    routes: &BTreeMap<String, RouteStats>,
    cache: &CacheStats,
    conns: &ConnectionStats,
    operators: &BTreeMap<String, OperatorStats>,
    index: &IndexStats,
    reactor: &ReactorStats,
    stream: &StreamStats,
    sql: &SqlStats,
    ingest: &IngestStats,
    shard: &ShardStats,
    shard_workers: &[ShardWorkerStats],
    selfscrape: &SelfScrapeStats,
    process: &ProcessStats,
) -> String {
    let mut out = String::from("{\"routes\": {");
    for (i, (label, s)) in routes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{}: {{\"count\": {}, \"errors\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"max_us\": {}, \"mean_us\": {}}}",
            crate::json::quote(label),
            s.count,
            s.errors,
            s.cache_hits,
            s.cache_misses,
            s.latency.quantile_us(0.50),
            s.latency.quantile_us(0.95),
            s.latency.max_us,
            s.latency.mean_us(),
        ));
    }
    out.push_str(&format!(
        "}}, \"cache\": {{\"entries\": {}, \"bytes\": {}, \"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"invalidations\": {}}}",
        cache.entries, cache.bytes, cache.hits, cache.misses, cache.evictions, cache.invalidations
    ));
    let buckets: Vec<String> = conns
        .requests_per_connection
        .iter()
        .map(|n| n.to_string())
        .collect();
    out.push_str(&format!(
        ", \"connections\": {{\"accepted\": {}, \"closed\": {}, \"reused\": {}, \
         \"requests\": {}, \"idle_timeouts\": {}, \"io_timeouts\": {}, \
         \"requests_per_connection\": [{}]}}",
        conns.accepted,
        conns.closed,
        conns.reused,
        conns.requests,
        conns.idle_timeouts,
        conns.io_timeouts,
        buckets.join(", ")
    ));
    out.push_str(", \"operators\": {");
    for (i, (name, s)) in operators.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{}: {{\"runs\": {}, \"rows_in\": {}, \"rows_out\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"max_us\": {}, \"mean_us\": {}}}",
            crate::json::quote(name),
            s.runs,
            s.rows_in,
            s.rows_out,
            s.latency.quantile_us(0.50),
            s.latency.quantile_us(0.95),
            s.latency.max_us,
            s.latency.mean_us(),
        ));
    }
    out.push('}');
    out.push_str(&format!(
        ", \"index\": {{\"builds\": {}, \"build_us\": {}, \"covered\": {}, \"fallback\": {}}}",
        index.builds, index.build_us, index.covered, index.fallback
    ));
    out.push_str(&format!(
        ", \"reactor\": {{\"registered\": {}, \"peak_registered\": {}, \"wakeups\": {}, \
         \"ready_events\": {}, \"epollout_rearms\": {}, \"dispatched\": {}}}",
        reactor.registered,
        reactor.peak_registered,
        reactor.wakeups,
        reactor.ready_events,
        reactor.epollout_rearms,
        reactor.dispatched
    ));
    out.push_str(&format!(
        ", \"stream\": {{\"ticks\": {}, \"rows_in\": {}, \"evicted_rows\": {}, \
         \"frames_sent\": {}, \"frame_bytes\": {}, \"subscribers\": {}, \
         \"peak_subscribers\": {}, \"dropped_subscribers\": {}}}",
        stream.ticks,
        stream.rows_in,
        stream.evicted_rows,
        stream.frames_sent,
        stream.frame_bytes,
        stream.subscribers,
        stream.peak_subscribers,
        stream.dropped_subscribers
    ));
    out.push_str(&format!(
        ", \"sql\": {{\"queries\": {}, \"parse_errors\": {}, \"path_shared\": {}, \
         \"parse_us\": {}, \"prepared_hits\": {}, \"prepared_evictions\": {}}}",
        sql.queries,
        sql.parse_errors,
        sql.path_shared,
        sql.parse_us,
        sql.prepared_hits,
        sql.prepared_evictions
    ));
    out.push_str(&format!(
        ", \"ingest\": {{\"requests\": {}, \"rows\": {}, \"bytes\": {}, \"segments\": {}, \
         \"decode_us\": {}, \"index_merges\": {}, \"index_merge_us\": {}, \
         \"cold_rebuilds\": {}, \"aborted\": {}}}",
        ingest.requests,
        ingest.rows,
        ingest.bytes,
        ingest.segments,
        ingest.decode_us,
        ingest.index_merges,
        ingest.index_merge_us,
        ingest.cold_rebuilds,
        ingest.aborted
    ));
    out.push_str(&format!(
        ", \"shard\": {{\"workers\": {}, \"scatters\": {}, \"subqueries\": {}, \
         \"partial_rows\": {}, \"gather_us\": {}, \"loads\": {}, \"load_rows\": {}, \
         \"invalidations\": {}, \"stale_retries\": {}, \"fallbacks\": {}, \"per_worker\": [",
        shard.workers,
        shard.scatters,
        shard.subqueries,
        shard.partial_rows,
        shard.gather_us,
        shard.loads,
        shard.load_rows,
        shard.invalidations,
        shard.stale_retries,
        shard.fallbacks
    ));
    for (i, w) in shard_workers.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"shard\": {}, \"slices\": {}, \"rows\": {}, \"queries\": {}, \
             \"result_hits\": {}, \"stale_rejects\": {}, \"busy_us\": {}}}",
            w.shard, w.slices, w.rows, w.queries, w.result_hits, w.stale_rejects, w.busy_us
        ));
    }
    out.push_str("]}");
    out.push_str(&format!(
        ", \"selfscrape\": {{\"scrapes\": {}, \"samples\": {}, \"evicted\": {}, \
         \"retained\": {}, \"elapsed_us\": {}}}",
        selfscrape.scrapes,
        selfscrape.samples,
        selfscrape.evicted,
        selfscrape.retained,
        selfscrape.elapsed_us
    ));
    out.push_str(&format!(
        ", \"process\": {{\"rss_bytes\": {}, \"open_fds\": {}, \"threads\": {}, \
         \"uptime_seconds\": {}}}}}",
        process.rss_bytes, process.open_fds, process.threads, process.uptime_seconds
    ));
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (`/metrics`)
// ---------------------------------------------------------------------------

/// Escape a Prometheus label value (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render microseconds as seconds, the canonical Prometheus unit.
fn seconds(us: u64) -> String {
    format!("{}", us as f64 / 1e6)
}

/// Append one cumulative histogram series (`_bucket`/`_sum`/`_count`) for
/// a latency histogram, bucketed by [`LATENCY_BOUNDS_US`] in seconds.
fn write_latency_histogram(out: &mut String, name: &str, labels: &str, h: &LatencyHistogram) {
    let mut cumulative = 0u64;
    for (i, bound) in LATENCY_BOUNDS_US.iter().enumerate() {
        cumulative += h.buckets[i];
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}le=\"{}\"}} {cumulative}",
            seconds(*bound)
        );
    }
    cumulative += h.buckets[LATENCY_BOUNDS_US.len()];
    let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {cumulative}");
    let _ = writeln!(
        out,
        "{name}_sum{{{labels_trim}}} {}",
        seconds(h.total_us),
        labels_trim = labels.trim_end_matches(',')
    );
    let _ = writeln!(
        out,
        "{name}_count{{{labels_trim}}} {}",
        h.count,
        labels_trim = labels.trim_end_matches(',')
    );
}

/// Render the `/metrics` document: Prometheus text exposition (format
/// 0.0.4) generated from the same registries that feed `/stats`. Counters
/// and histograms only appear once at least one series exists, so every
/// `# TYPE` line is followed by samples; bucket counts are cumulative with
/// `le` bounds in seconds.
#[allow(clippy::too_many_arguments)]
pub fn prometheus_text(
    routes: &BTreeMap<String, RouteStats>,
    cache: &CacheStats,
    conns: &ConnectionStats,
    operators: &BTreeMap<String, OperatorStats>,
    index: &IndexStats,
    reactor: &ReactorStats,
    stream: &StreamStats,
    sql: &SqlStats,
    ingest: &IngestStats,
    shard: &ShardStats,
    shard_workers: &[ShardWorkerStats],
    selfscrape: &SelfScrapeStats,
    process: &ProcessStats,
) -> String {
    let mut out = String::new();
    if !routes.is_empty() {
        out.push_str("# TYPE shareinsights_requests_total counter\n");
        for (label, s) in routes {
            let _ = writeln!(
                out,
                "shareinsights_requests_total{{route=\"{}\"}} {}",
                escape_label(label),
                s.count
            );
        }
        out.push_str("# TYPE shareinsights_request_errors_total counter\n");
        for (label, s) in routes {
            let _ = writeln!(
                out,
                "shareinsights_request_errors_total{{route=\"{}\"}} {}",
                escape_label(label),
                s.errors
            );
        }
        out.push_str("# TYPE shareinsights_route_cache_hits_total counter\n");
        for (label, s) in routes {
            let _ = writeln!(
                out,
                "shareinsights_route_cache_hits_total{{route=\"{}\"}} {}",
                escape_label(label),
                s.cache_hits
            );
        }
        out.push_str("# TYPE shareinsights_route_cache_misses_total counter\n");
        for (label, s) in routes {
            let _ = writeln!(
                out,
                "shareinsights_route_cache_misses_total{{route=\"{}\"}} {}",
                escape_label(label),
                s.cache_misses
            );
        }
        out.push_str("# TYPE shareinsights_request_duration_seconds histogram\n");
        for (label, s) in routes {
            let labels = format!("route=\"{}\",", escape_label(label));
            write_latency_histogram(
                &mut out,
                "shareinsights_request_duration_seconds",
                &labels,
                &s.latency,
            );
        }
    }

    // Query-result cache (entries/bytes are gauges: eviction shrinks them).
    out.push_str("# TYPE shareinsights_query_cache_entries gauge\n");
    let _ = writeln!(out, "shareinsights_query_cache_entries {}", cache.entries);
    out.push_str("# TYPE shareinsights_query_cache_bytes gauge\n");
    let _ = writeln!(out, "shareinsights_query_cache_bytes {}", cache.bytes);
    for (name, value) in [
        ("hits", cache.hits),
        ("misses", cache.misses),
        ("evictions", cache.evictions),
        ("invalidations", cache.invalidations),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_query_cache_{name}_total counter");
        let _ = writeln!(out, "shareinsights_query_cache_{name}_total {value}");
    }

    // Connection-level counters and the requests-per-connection histogram.
    for (name, value) in [
        ("accepted", conns.accepted),
        ("closed", conns.closed),
        ("reused", conns.reused),
        ("idle_timeouts", conns.idle_timeouts),
        ("io_timeouts", conns.io_timeouts),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_connections_{name}_total counter");
        let _ = writeln!(out, "shareinsights_connections_{name}_total {value}");
    }
    out.push_str("# TYPE shareinsights_requests_per_connection histogram\n");
    let mut cumulative = 0u64;
    for (i, bound) in CONN_REQUESTS_BOUNDS.iter().enumerate() {
        cumulative += conns.requests_per_connection[i];
        let _ = writeln!(
            out,
            "shareinsights_requests_per_connection_bucket{{le=\"{bound}\"}} {cumulative}"
        );
    }
    cumulative += conns.requests_per_connection[CONN_REQUESTS_BOUNDS.len()];
    let _ = writeln!(
        out,
        "shareinsights_requests_per_connection_bucket{{le=\"+Inf\"}} {cumulative}"
    );
    // Sum of requests over closed connections IS the histogram's sum.
    let _ = writeln!(
        out,
        "shareinsights_requests_per_connection_sum {}",
        conns.requests
    );
    let _ = writeln!(
        out,
        "shareinsights_requests_per_connection_count {}",
        conns.closed
    );

    // Per-operator engine histograms.
    if !operators.is_empty() {
        out.push_str("# TYPE shareinsights_operator_runs_total counter\n");
        for (name, s) in operators {
            let _ = writeln!(
                out,
                "shareinsights_operator_runs_total{{operator=\"{}\"}} {}",
                escape_label(name),
                s.runs
            );
        }
        out.push_str("# TYPE shareinsights_operator_rows_total counter\n");
        for (name, s) in operators {
            let escaped = escape_label(name);
            let _ = writeln!(
                out,
                "shareinsights_operator_rows_total{{operator=\"{escaped}\",direction=\"in\"}} {}",
                s.rows_in
            );
            let _ = writeln!(
                out,
                "shareinsights_operator_rows_total{{operator=\"{escaped}\",direction=\"out\"}} {}",
                s.rows_out
            );
        }
        out.push_str("# TYPE shareinsights_operator_duration_seconds histogram\n");
        for (name, s) in operators {
            let labels = format!("operator=\"{}\",", escape_label(name));
            write_latency_histogram(
                &mut out,
                "shareinsights_operator_duration_seconds",
                &labels,
                &s.latency,
            );
        }
    }

    // Index-acceleration counters: lazy per-column builds, and how query
    // evaluations routed (accelerated kernel vs scan fallback).
    for (name, value) in [
        ("builds", index.builds),
        ("covered_evals", index.covered),
        ("fallback_evals", index.fallback),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_index_{name}_total counter");
        let _ = writeln!(out, "shareinsights_index_{name}_total {value}");
    }
    out.push_str("# TYPE shareinsights_index_build_seconds_total counter\n");
    let _ = writeln!(
        out,
        "shareinsights_index_build_seconds_total {}",
        seconds(index.build_us)
    );

    // Reactor event-loop counters (all zero under thread-per-connection).
    for (name, value) in [
        ("registered_connections", reactor.registered),
        ("peak_registered_connections", reactor.peak_registered),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_reactor_{name} gauge");
        let _ = writeln!(out, "shareinsights_reactor_{name} {value}");
    }
    for (name, value) in [
        ("wakeups", reactor.wakeups),
        ("ready_events", reactor.ready_events),
        ("epollout_rearms", reactor.epollout_rearms),
        ("dispatched", reactor.dispatched),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_reactor_{name}_total counter");
        let _ = writeln!(out, "shareinsights_reactor_{name}_total {value}");
    }

    // Live-flow streaming: subscriber gauges plus per-tick/per-frame
    // counters (all zero until a stream starts).
    for (name, value) in [
        ("subscribers", stream.subscribers),
        ("peak_subscribers", stream.peak_subscribers),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_stream_{name} gauge");
        let _ = writeln!(out, "shareinsights_stream_{name} {value}");
    }
    for (name, value) in [
        ("ticks", stream.ticks),
        ("rows_in", stream.rows_in),
        ("evicted_rows", stream.evicted_rows),
        ("frames_sent", stream.frames_sent),
        ("frame_bytes", stream.frame_bytes),
        ("dropped_subscribers", stream.dropped_subscribers),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_stream_{name}_total counter");
        let _ = writeln!(out, "shareinsights_stream_{name}_total {value}");
    }

    // SQL frontend: parse/lower outcomes and the shared malformed-query
    // counter (all zero until an ad-hoc SQL query arrives).
    for (name, value) in [
        ("queries", sql.queries),
        ("parse_errors", sql.parse_errors),
        ("path_shared", sql.path_shared),
        ("prepared_hits", sql.prepared_hits),
        ("prepared_evictions", sql.prepared_evictions),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_sql_{name}_total counter");
        let _ = writeln!(out, "shareinsights_sql_{name}_total {value}");
    }
    out.push_str("# TYPE shareinsights_sql_parse_seconds_total counter\n");
    let _ = writeln!(
        out,
        "shareinsights_sql_parse_seconds_total {}",
        seconds(sql.parse_us)
    );

    // Streaming ingestion: bounded-window body reads, parallel segment
    // decode, and warm-index merges (all zero until the first ingest).
    for (name, value) in [
        ("requests", ingest.requests),
        ("rows", ingest.rows),
        ("bytes", ingest.bytes),
        ("segments", ingest.segments),
        ("index_merges", ingest.index_merges),
        ("cold_rebuilds", ingest.cold_rebuilds),
        ("aborted", ingest.aborted),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_ingest_{name}_total counter");
        let _ = writeln!(out, "shareinsights_ingest_{name}_total {value}");
    }
    out.push_str("# TYPE shareinsights_ingest_decode_seconds_total counter\n");
    let _ = writeln!(
        out,
        "shareinsights_ingest_decode_seconds_total {}",
        seconds(ingest.decode_us)
    );
    out.push_str("# TYPE shareinsights_ingest_index_merge_seconds_total counter\n");
    let _ = writeln!(
        out,
        "shareinsights_ingest_index_merge_seconds_total {}",
        seconds(ingest.index_merge_us)
    );

    // Sharded data plane: scatter/gather totals, plus per-shard series
    // (labelled by dense shard id) only when workers exist — every TYPE
    // line must be followed by at least one sample.
    out.push_str("# TYPE shareinsights_shard_workers gauge\n");
    let _ = writeln!(out, "shareinsights_shard_workers {}", shard.workers);
    for (name, value) in [
        ("scatters", shard.scatters),
        ("subqueries", shard.subqueries),
        ("partial_rows", shard.partial_rows),
        ("loads", shard.loads),
        ("load_rows", shard.load_rows),
        ("invalidations", shard.invalidations),
        ("stale_retries", shard.stale_retries),
        ("fallbacks", shard.fallbacks),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_shard_{name}_total counter");
        let _ = writeln!(out, "shareinsights_shard_{name}_total {value}");
    }
    out.push_str("# TYPE shareinsights_shard_gather_seconds_total counter\n");
    let _ = writeln!(
        out,
        "shareinsights_shard_gather_seconds_total {}",
        seconds(shard.gather_us)
    );
    if !shard_workers.is_empty() {
        for (name, get) in [
            (
                "slices",
                (|w: &ShardWorkerStats| w.slices) as fn(&ShardWorkerStats) -> u64,
            ),
            ("rows", |w| w.rows),
        ] {
            let _ = writeln!(out, "# TYPE shareinsights_shard_worker_{name} gauge");
            for w in shard_workers {
                let _ = writeln!(
                    out,
                    "shareinsights_shard_worker_{name}{{shard=\"{}\"}} {}",
                    w.shard,
                    get(w)
                );
            }
        }
        for (name, get) in [
            (
                "queries",
                (|w: &ShardWorkerStats| w.queries) as fn(&ShardWorkerStats) -> u64,
            ),
            ("result_hits", |w| w.result_hits),
            ("stale_rejects", |w| w.stale_rejects),
        ] {
            let _ = writeln!(
                out,
                "# TYPE shareinsights_shard_worker_{name}_total counter"
            );
            for w in shard_workers {
                let _ = writeln!(
                    out,
                    "shareinsights_shard_worker_{name}_total{{shard=\"{}\"}} {}",
                    w.shard,
                    get(w)
                );
            }
        }
        out.push_str("# TYPE shareinsights_shard_worker_busy_seconds_total counter\n");
        for w in shard_workers {
            let _ = writeln!(
                out,
                "shareinsights_shard_worker_busy_seconds_total{{shard=\"{}\"}} {}",
                w.shard,
                seconds(w.busy_us)
            );
        }
    }

    // Telemetry self-scrape: the scraper tick that feeds the `_system`
    // history ring (all zero until a scrape runs).
    for (name, value) in [
        ("scrapes", selfscrape.scrapes),
        ("samples", selfscrape.samples),
        ("evicted_samples", selfscrape.evicted),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_selfscrape_{name}_total counter");
        let _ = writeln!(out, "shareinsights_selfscrape_{name}_total {value}");
    }
    out.push_str("# TYPE shareinsights_selfscrape_retained_samples gauge\n");
    let _ = writeln!(
        out,
        "shareinsights_selfscrape_retained_samples {}",
        selfscrape.retained
    );
    out.push_str("# TYPE shareinsights_selfscrape_seconds_total counter\n");
    let _ = writeln!(
        out,
        "shareinsights_selfscrape_seconds_total {}",
        seconds(selfscrape.elapsed_us)
    );

    // Process-level gauges read from /proc/self (zero on non-Linux, but
    // the series always emit so every TYPE line has a sample).
    for (name, value) in [
        ("rss_bytes", process.rss_bytes),
        ("open_fds", process.open_fds),
        ("threads", process.threads),
        ("uptime_seconds", process.uptime_seconds),
    ] {
        let _ = writeln!(out, "# TYPE shareinsights_process_{name} gauge");
        let _ = writeln!(out, "shareinsights_process_{name} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_normalize_parameters() {
        assert_eq!(
            route_label(
                Method::Get,
                &["retail", "ds", "sales", "groupby", "a", "sum", "b"]
            ),
            "GET /:dashboard/ds/:dataset/query"
        );
        assert_eq!(
            route_label(Method::Get, &["retail", "ds", "sales"]),
            "GET /:dashboard/ds/:dataset"
        );
        assert_eq!(
            route_label(Method::Get, &["retail", "ds"]),
            "GET /:dashboard/ds"
        );
        assert_eq!(route_label(Method::Get, &["stats"]), "GET /stats");
        assert_eq!(
            route_label(Method::Post, &["dashboards", "x", "run"]),
            "POST /dashboards/:name/run"
        );
        assert_eq!(route_label(Method::Delete, &["dashboards"]), "(unmatched)");
    }

    #[test]
    fn allowed_methods_distinguish_404_from_405() {
        assert_eq!(allowed_methods(&["dashboards"]), &[Method::Get]);
        assert_eq!(
            allowed_methods(&["dashboards", "x", "flow"]),
            &[Method::Get, Method::Put]
        );
        assert!(allowed_methods(&["no", "such", "shape", "here"]).is_empty());
    }

    #[test]
    fn stats_json_parses() {
        let mut routes = BTreeMap::new();
        let mut s = RouteStats {
            count: 2,
            ..RouteStats::default()
        };
        s.latency.record(100);
        s.latency.record(300);
        routes.insert("GET /stats".to_string(), s);
        let mut conns = ConnectionStats {
            accepted: 3,
            closed: 2,
            reused: 1,
            requests: 9,
            idle_timeouts: 1,
            ..ConnectionStats::default()
        };
        conns.requests_per_connection[2] = 2;
        let mut operators = BTreeMap::new();
        let mut op = OperatorStats {
            runs: 3,
            rows_in: 1000,
            rows_out: 30,
            ..OperatorStats::default()
        };
        op.latency.record(200);
        operators.insert("groupby".to_string(), op);
        let index = IndexStats {
            builds: 2,
            build_us: 1500,
            covered: 4,
            fallback: 1,
        };
        let reactor = ReactorStats {
            registered: 5,
            peak_registered: 9,
            wakeups: 40,
            ready_events: 120,
            epollout_rearms: 3,
            dispatched: 100,
        };
        let stream = StreamStats {
            ticks: 4,
            rows_in: 200,
            evicted_rows: 10,
            frames_sent: 12,
            frame_bytes: 4096,
            subscribers: 2,
            peak_subscribers: 3,
            dropped_subscribers: 1,
        };
        let sql = SqlStats {
            queries: 8,
            parse_errors: 2,
            path_shared: 5,
            parse_us: 640,
            prepared_hits: 3,
            prepared_evictions: 2,
        };
        let ingest = IngestStats {
            requests: 2,
            rows: 4000,
            bytes: 65536,
            segments: 16,
            decode_us: 7000,
            index_merges: 2,
            index_merge_us: 1200,
            cold_rebuilds: 1,
            aborted: 1,
        };
        let shard = ShardStats {
            workers: 4,
            scatters: 6,
            subqueries: 24,
            partial_rows: 480,
            gather_us: 900,
            loads: 8,
            load_rows: 4000,
            invalidations: 2,
            stale_retries: 1,
            fallbacks: 3,
        };
        let shard_workers = vec![
            ShardWorkerStats {
                shard: 0,
                slices: 1,
                rows: 500,
                queries: 6,
                result_hits: 2,
                stale_rejects: 1,
                busy_us: 400,
            },
            ShardWorkerStats {
                shard: 1,
                slices: 1,
                rows: 500,
                queries: 6,
                result_hits: 2,
                stale_rejects: 0,
                busy_us: 380,
            },
        ];
        let selfscrape = SelfScrapeStats {
            scrapes: 3,
            samples: 120,
            evicted: 7,
            retained: 113,
            elapsed_us: 900,
        };
        let process = ProcessStats {
            rss_bytes: 8_388_608,
            open_fds: 12,
            threads: 6,
            uptime_seconds: 42,
        };
        let json = stats_json(
            &routes,
            &CacheStats::default(),
            &conns,
            &operators,
            &index,
            &reactor,
            &stream,
            &sql,
            &ingest,
            &shard,
            &shard_workers,
            &selfscrape,
            &process,
        );
        let doc = shareinsights_tabular::io::json::parse_json(&json).unwrap();
        assert_eq!(
            doc.path("routes.GET /stats.count")
                .unwrap()
                .to_value()
                .as_int(),
            Some(2)
        );
        assert_eq!(doc.path("cache.hits").unwrap().to_value().as_int(), Some(0));
        assert_eq!(
            doc.path("connections.accepted")
                .unwrap()
                .to_value()
                .as_int(),
            Some(3)
        );
        assert_eq!(
            doc.path("connections.reused").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("connections.requests_per_connection.2")
                .unwrap()
                .to_value()
                .as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path("operators.groupby.runs")
                .unwrap()
                .to_value()
                .as_int(),
            Some(3)
        );
        assert_eq!(
            doc.path("operators.groupby.rows_in")
                .unwrap()
                .to_value()
                .as_int(),
            Some(1000)
        );
        assert_eq!(
            doc.path("index.builds").unwrap().to_value().as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path("index.build_us").unwrap().to_value().as_int(),
            Some(1500)
        );
        assert_eq!(
            doc.path("index.covered").unwrap().to_value().as_int(),
            Some(4)
        );
        assert_eq!(
            doc.path("index.fallback").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("reactor.registered").unwrap().to_value().as_int(),
            Some(5)
        );
        assert_eq!(
            doc.path("reactor.peak_registered")
                .unwrap()
                .to_value()
                .as_int(),
            Some(9)
        );
        assert_eq!(
            doc.path("reactor.ready_events")
                .unwrap()
                .to_value()
                .as_int(),
            Some(120)
        );
        assert_eq!(
            doc.path("reactor.epollout_rearms")
                .unwrap()
                .to_value()
                .as_int(),
            Some(3)
        );
        assert_eq!(
            doc.path("stream.ticks").unwrap().to_value().as_int(),
            Some(4)
        );
        assert_eq!(
            doc.path("stream.subscribers").unwrap().to_value().as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path("stream.dropped_subscribers")
                .unwrap()
                .to_value()
                .as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("sql.queries").unwrap().to_value().as_int(),
            Some(8)
        );
        assert_eq!(
            doc.path("sql.parse_errors").unwrap().to_value().as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path("sql.path_shared").unwrap().to_value().as_int(),
            Some(5)
        );
        assert_eq!(
            doc.path("sql.parse_us").unwrap().to_value().as_int(),
            Some(640)
        );
        assert_eq!(
            doc.path("sql.prepared_hits").unwrap().to_value().as_int(),
            Some(3)
        );
        assert_eq!(
            doc.path("sql.prepared_evictions")
                .unwrap()
                .to_value()
                .as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path("ingest.requests").unwrap().to_value().as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path("ingest.rows").unwrap().to_value().as_int(),
            Some(4000)
        );
        assert_eq!(
            doc.path("ingest.index_merges").unwrap().to_value().as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path("ingest.aborted").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("ingest.cold_rebuilds")
                .unwrap()
                .to_value()
                .as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("shard.workers").unwrap().to_value().as_int(),
            Some(4)
        );
        assert_eq!(
            doc.path("shard.scatters").unwrap().to_value().as_int(),
            Some(6)
        );
        assert_eq!(
            doc.path("shard.stale_retries").unwrap().to_value().as_int(),
            Some(1)
        );
        assert_eq!(
            doc.path("shard.per_worker.1.rows")
                .unwrap()
                .to_value()
                .as_int(),
            Some(500)
        );
        assert_eq!(
            doc.path("shard.per_worker.0.result_hits")
                .unwrap()
                .to_value()
                .as_int(),
            Some(2)
        );
        assert_eq!(
            doc.path("selfscrape.scrapes").unwrap().to_value().as_int(),
            Some(3)
        );
        assert_eq!(
            doc.path("selfscrape.retained").unwrap().to_value().as_int(),
            Some(113)
        );
        assert_eq!(
            doc.path("process.rss_bytes").unwrap().to_value().as_int(),
            Some(8_388_608)
        );
        assert_eq!(
            doc.path("process.threads").unwrap().to_value().as_int(),
            Some(6)
        );
        assert_eq!(
            doc.path("process.uptime_seconds")
                .unwrap()
                .to_value()
                .as_int(),
            Some(42)
        );
    }

    /// One `name{labels} value` sample line.
    type Sample = (String, String, f64);

    /// Parse exposition text into (TYPE declarations, samples).
    fn parse_exposition(text: &str) -> (Vec<(String, String)>, Vec<Sample>) {
        let mut types = Vec::new();
        let mut samples = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                types.push((
                    it.next().unwrap().to_string(),
                    it.next().unwrap().to_string(),
                ));
                continue;
            }
            assert!(
                !line.starts_with('#'),
                "only TYPE comments expected: {line}"
            );
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            let (name, labels) = match series.split_once('{') {
                Some((n, l)) => (n.to_string(), l.trim_end_matches('}').to_string()),
                None => (series.to_string(), String::new()),
            };
            samples.push((name, labels, value.parse::<f64>().expect("numeric value")));
        }
        (types, samples)
    }

    fn sample_metrics() -> String {
        let mut routes = BTreeMap::new();
        let mut s = RouteStats {
            count: 3,
            errors: 1,
            cache_hits: 1,
            cache_misses: 2,
            ..RouteStats::default()
        };
        s.latency.record(80);
        s.latency.record(300);
        s.latency.record(9_000_000); // lands in the open-ended bucket
        routes.insert("GET /:dashboard/ds/:dataset/query".to_string(), s);
        let mut conns = ConnectionStats {
            accepted: 2,
            closed: 2,
            reused: 1,
            requests: 7,
            ..ConnectionStats::default()
        };
        conns.requests_per_connection[0] = 1;
        conns.requests_per_connection[3] = 1;
        let mut operators = BTreeMap::new();
        let mut op = OperatorStats {
            runs: 2,
            rows_in: 2000,
            rows_out: 50,
            ..OperatorStats::default()
        };
        op.latency.record(400);
        op.latency.record(600);
        operators.insert("groupby".to_string(), op);
        let cache = CacheStats {
            entries: 4,
            bytes: 1024,
            hits: 5,
            misses: 6,
            evictions: 1,
            invalidations: 2,
        };
        let index = IndexStats {
            builds: 3,
            build_us: 2_000_000,
            covered: 8,
            fallback: 2,
        };
        let reactor = ReactorStats {
            registered: 4,
            peak_registered: 6,
            wakeups: 10,
            ready_events: 25,
            epollout_rearms: 2,
            dispatched: 20,
        };
        let stream = StreamStats {
            ticks: 6,
            rows_in: 600,
            evicted_rows: 50,
            frames_sent: 18,
            frame_bytes: 9216,
            subscribers: 5,
            peak_subscribers: 7,
            dropped_subscribers: 2,
        };
        let sql = SqlStats {
            queries: 9,
            parse_errors: 4,
            path_shared: 6,
            parse_us: 3_000_000,
            prepared_hits: 5,
            prepared_evictions: 7,
        };
        let ingest = IngestStats {
            requests: 3,
            rows: 12_000,
            bytes: 262_144,
            segments: 24,
            decode_us: 5_000_000,
            index_merges: 2,
            index_merge_us: 2_000_000,
            cold_rebuilds: 3,
            aborted: 1,
        };
        let shard = ShardStats {
            workers: 2,
            scatters: 11,
            subqueries: 22,
            partial_rows: 700,
            gather_us: 4_000_000,
            loads: 4,
            load_rows: 9000,
            invalidations: 3,
            stale_retries: 1,
            fallbacks: 5,
        };
        let shard_workers = vec![ShardWorkerStats {
            shard: 0,
            slices: 2,
            rows: 4500,
            queries: 11,
            result_hits: 3,
            stale_rejects: 1,
            busy_us: 2_000_000,
        }];
        let selfscrape = SelfScrapeStats {
            scrapes: 5,
            samples: 250,
            evicted: 30,
            retained: 220,
            elapsed_us: 4_000_000,
        };
        let process = ProcessStats {
            rss_bytes: 16_777_216,
            open_fds: 24,
            threads: 9,
            uptime_seconds: 77,
        };
        prometheus_text(
            &routes,
            &cache,
            &conns,
            &operators,
            &index,
            &reactor,
            &stream,
            &sql,
            &ingest,
            &shard,
            &shard_workers,
            &selfscrape,
            &process,
        )
    }

    #[test]
    fn prometheus_every_type_has_samples_and_buckets_are_cumulative() {
        let text = sample_metrics();
        let (types, samples) = parse_exposition(&text);
        assert!(!types.is_empty());
        for (name, kind) in &types {
            let matching: Vec<_> = samples
                .iter()
                .filter(|(n, _, _)| n == name || (kind == "histogram" && n.starts_with(name)))
                .collect();
            assert!(!matching.is_empty(), "TYPE {name} has no samples");
        }
        // Histogram buckets: grouped per series, cumulative and monotone,
        // +Inf equals _count.
        for (hist, series_labels) in [
            (
                "shareinsights_request_duration_seconds",
                "route=\"GET /:dashboard/ds/:dataset/query\"",
            ),
            (
                "shareinsights_operator_duration_seconds",
                "operator=\"groupby\"",
            ),
            ("shareinsights_requests_per_connection", ""),
        ] {
            let bucket_name = format!("{hist}_bucket");
            let buckets: Vec<f64> = samples
                .iter()
                .filter(|(n, l, _)| *n == bucket_name && l.starts_with(series_labels))
                .map(|(_, _, v)| *v)
                .collect();
            assert!(!buckets.is_empty(), "{hist} has buckets");
            for w in buckets.windows(2) {
                assert!(
                    w[0] <= w[1],
                    "{hist} buckets must be cumulative: {buckets:?}"
                );
            }
            let count = samples
                .iter()
                .find(|(n, l, _)| *n == format!("{hist}_count") && l == series_labels)
                .map(|(_, _, v)| *v)
                .expect("count sample");
            assert_eq!(*buckets.last().unwrap(), count, "+Inf bucket == count");
        }
    }

    #[test]
    fn prometheus_values_and_units() {
        let text = sample_metrics();
        assert!(text.contains(
            "shareinsights_requests_total{route=\"GET /:dashboard/ds/:dataset/query\"} 3"
        ));
        assert!(text.contains(
            "shareinsights_request_errors_total{route=\"GET /:dashboard/ds/:dataset/query\"} 1"
        ));
        // 80 µs ≤ the 0.0001 s (100 µs) bound; both early samples ≤ 0.0005.
        assert!(
            text.contains("le=\"0.0001\"} 1"),
            "µs bounds render in seconds:\n{text}"
        );
        // The 9 s outlier only appears in +Inf.
        assert!(text.contains(
            "shareinsights_request_duration_seconds_bucket{route=\"GET /:dashboard/ds/:dataset/query\",le=\"+Inf\"} 3"
        ));
        assert!(text.contains("shareinsights_query_cache_hits_total 5"));
        assert!(text.contains("shareinsights_query_cache_entries 4"));
        assert!(text.contains("shareinsights_connections_accepted_total 2"));
        assert!(text.contains(
            "shareinsights_operator_rows_total{operator=\"groupby\",direction=\"in\"} 2000"
        ));
        assert!(text.contains(
            "shareinsights_operator_rows_total{operator=\"groupby\",direction=\"out\"} 50"
        ));
        // requests_per_connection sum/count come from connection totals.
        assert!(text.contains("shareinsights_requests_per_connection_sum 7"));
        assert!(text.contains("shareinsights_requests_per_connection_count 2"));
        // Index-acceleration counters, build time in seconds.
        assert!(text.contains("shareinsights_index_builds_total 3"));
        assert!(text.contains("shareinsights_index_covered_evals_total 8"));
        assert!(text.contains("shareinsights_index_fallback_evals_total 2"));
        assert!(text.contains("shareinsights_index_build_seconds_total 2"));
        // Reactor event-loop series.
        assert!(text.contains("shareinsights_reactor_registered_connections 4"));
        assert!(text.contains("shareinsights_reactor_peak_registered_connections 6"));
        assert!(text.contains("shareinsights_reactor_wakeups_total 10"));
        assert!(text.contains("shareinsights_reactor_ready_events_total 25"));
        assert!(text.contains("shareinsights_reactor_epollout_rearms_total 2"));
        assert!(text.contains("shareinsights_reactor_dispatched_total 20"));
        // Live-stream series.
        assert!(text.contains("shareinsights_stream_subscribers 5"));
        assert!(text.contains("shareinsights_stream_peak_subscribers 7"));
        assert!(text.contains("shareinsights_stream_ticks_total 6"));
        assert!(text.contains("shareinsights_stream_rows_in_total 600"));
        assert!(text.contains("shareinsights_stream_evicted_rows_total 50"));
        assert!(text.contains("shareinsights_stream_frames_sent_total 18"));
        assert!(text.contains("shareinsights_stream_frame_bytes_total 9216"));
        assert!(text.contains("shareinsights_stream_dropped_subscribers_total 2"));
        // SQL frontend series, parse time in seconds.
        assert!(text.contains("shareinsights_sql_queries_total 9"));
        assert!(text.contains("shareinsights_sql_parse_errors_total 4"));
        assert!(text.contains("shareinsights_sql_path_shared_total 6"));
        assert!(text.contains("shareinsights_sql_prepared_hits_total 5"));
        assert!(text.contains("shareinsights_sql_prepared_evictions_total 7"));
        assert!(text.contains("shareinsights_sql_parse_seconds_total 3"));
        // Streaming-ingest series, decode/merge time in seconds.
        assert!(text.contains("shareinsights_ingest_requests_total 3"));
        assert!(text.contains("shareinsights_ingest_rows_total 12000"));
        assert!(text.contains("shareinsights_ingest_bytes_total 262144"));
        assert!(text.contains("shareinsights_ingest_segments_total 24"));
        assert!(text.contains("shareinsights_ingest_index_merges_total 2"));
        assert!(text.contains("shareinsights_ingest_aborted_total 1"));
        assert!(text.contains("shareinsights_ingest_decode_seconds_total 5"));
        assert!(text.contains("shareinsights_ingest_index_merge_seconds_total 2"));
        assert!(text.contains("shareinsights_ingest_cold_rebuilds_total 3"));
        // Sharded data plane: global totals plus per-worker series.
        assert!(text.contains("shareinsights_shard_workers 2"));
        assert!(text.contains("shareinsights_shard_scatters_total 11"));
        assert!(text.contains("shareinsights_shard_subqueries_total 22"));
        assert!(text.contains("shareinsights_shard_partial_rows_total 700"));
        assert!(text.contains("shareinsights_shard_loads_total 4"));
        assert!(text.contains("shareinsights_shard_load_rows_total 9000"));
        assert!(text.contains("shareinsights_shard_invalidations_total 3"));
        assert!(text.contains("shareinsights_shard_stale_retries_total 1"));
        assert!(text.contains("shareinsights_shard_fallbacks_total 5"));
        assert!(text.contains("shareinsights_shard_gather_seconds_total 4"));
        assert!(text.contains("shareinsights_shard_worker_slices{shard=\"0\"} 2"));
        assert!(text.contains("shareinsights_shard_worker_rows{shard=\"0\"} 4500"));
        assert!(text.contains("shareinsights_shard_worker_queries_total{shard=\"0\"} 11"));
        assert!(text.contains("shareinsights_shard_worker_result_hits_total{shard=\"0\"} 3"));
        assert!(text.contains("shareinsights_shard_worker_stale_rejects_total{shard=\"0\"} 1"));
        assert!(text.contains("shareinsights_shard_worker_busy_seconds_total{shard=\"0\"} 2"));
        // Self-scrape series, scrape time in seconds; retained is a gauge.
        assert!(text.contains("shareinsights_selfscrape_scrapes_total 5"));
        assert!(text.contains("shareinsights_selfscrape_samples_total 250"));
        assert!(text.contains("shareinsights_selfscrape_evicted_samples_total 30"));
        assert!(text.contains("shareinsights_selfscrape_retained_samples 220"));
        assert!(text.contains("shareinsights_selfscrape_seconds_total 4"));
        // Process gauges.
        assert!(text.contains("shareinsights_process_rss_bytes 16777216"));
        assert!(text.contains("shareinsights_process_open_fds 24"));
        assert!(text.contains("shareinsights_process_threads 9"));
        assert!(text.contains("shareinsights_process_uptime_seconds 77"));
        // Label escaping.
        let mut routes = BTreeMap::new();
        routes.insert("a\"b\\c".to_string(), RouteStats::default());
        let escaped = prometheus_text(
            &routes,
            &CacheStats::default(),
            &ConnectionStats::default(),
            &BTreeMap::new(),
            &IndexStats::default(),
            &ReactorStats::default(),
            &StreamStats::default(),
            &SqlStats::default(),
            &IngestStats::default(),
            &ShardStats::default(),
            &[],
            &SelfScrapeStats::default(),
            &ProcessStats::default(),
        );
        assert!(escaped.contains("route=\"a\\\"b\\\\c\""), "{escaped}");
    }

    #[test]
    fn new_observability_routes_have_labels() {
        assert_eq!(route_label(Method::Get, &["metrics"]), "GET /metrics");
        assert_eq!(
            route_label(Method::Get, &["trace", "recent"]),
            "GET /trace/recent"
        );
        assert_eq!(
            route_label(Method::Get, &["trace", "00ff"]),
            "GET /trace/:id"
        );
        assert_eq!(allowed_methods(&["metrics"]), &[Method::Get]);
        assert_eq!(allowed_methods(&["trace", "recent"]), &[Method::Get]);
    }

    #[test]
    fn stream_routes_have_labels_and_methods() {
        assert_eq!(
            route_label(Method::Post, &["dashboards", "x", "stream", "start"]),
            "POST /dashboards/:name/stream/start"
        );
        assert_eq!(
            route_label(Method::Post, &["dashboards", "x", "stream", "push", "src"]),
            "POST /dashboards/:name/stream/push/:source"
        );
        // Subscribe matches before the generic query shape.
        assert_eq!(
            route_label(Method::Get, &["retail", "ds", "sales", "subscribe"]),
            "GET /:dashboard/ds/:dataset/subscribe"
        );
        assert_eq!(
            route_label(Method::Get, &["retail", "ds", "sales", "limit", "3"]),
            "GET /:dashboard/ds/:dataset/query"
        );
        assert_eq!(
            allowed_methods(&["dashboards", "x", "stream", "start"]),
            &[Method::Post]
        );
        assert_eq!(
            allowed_methods(&["dashboards", "x", "stream", "push", "src"]),
            &[Method::Post]
        );
    }

    #[test]
    fn ingest_route_has_label_and_methods() {
        assert_eq!(
            route_label(
                Method::Post,
                &["dashboards", "retail", "ds", "sales", "ingest"]
            ),
            "POST /dashboards/:name/ds/:dataset/ingest"
        );
        assert_eq!(
            allowed_methods(&["dashboards", "retail", "ds", "sales", "ingest"]),
            &[Method::Post]
        );
        // A GET on the ingest path is a 405, not a query-grammar parse.
        assert_eq!(
            route_label(
                Method::Get,
                &["dashboards", "retail", "ds", "sales", "ingest"]
            ),
            "(unmatched)"
        );
    }

    #[test]
    fn sql_route_has_label_and_methods() {
        assert_eq!(
            route_label(Method::Post, &["retail", "ds", "sales", "sql"]),
            "POST /:dashboard/ds/:dataset/sql"
        );
        // A GET on the same path falls through to the query grammar.
        assert_eq!(
            route_label(Method::Get, &["retail", "ds", "sales", "sql"]),
            "GET /:dashboard/ds/:dataset/query"
        );
        assert_eq!(
            allowed_methods(&["retail", "ds", "sales", "sql"]),
            &[Method::Get, Method::Post]
        );
        // POSTs elsewhere under /ds stay 405s.
        assert!(!allowed_methods(&["retail", "ds", "sales", "limit", "3"]).contains(&Method::Post));
    }
}
