//! The generation-stamped query-result cache.
//!
//! Widget interaction in the paper's §4.4 data explorer re-issues the same
//! ad-hoc query URL every time a user touches a filter, so the server keeps
//! the serialized JSON of recent query results keyed on
//! `(dashboard, dataset, normalized query path)`. Every entry is stamped
//! with the dataset's *data generation* — a counter the platform bumps on
//! each dashboard run and the publish registry bumps on each
//! publish/refresh. A lookup whose stamp no longer matches the live
//! generation is a miss (and evicts the stale entry), so invalidation
//! needs no coordination with the execution path.
//!
//! Eviction is LRU bounded by both an entry count and a byte budget over
//! the cached response bodies.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// Cache statistics for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached body.
    pub hits: u64,
    /// Lookups that found nothing (or found a stale generation).
    pub misses: u64,
    /// Entries dropped to stay within budget.
    pub evictions: u64,
    /// Entries dropped because their generation went stale.
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
    /// Bytes held by live entry bodies.
    pub bytes: usize,
}

struct Entry {
    body: String,
    generation: u64,
    lru_seq: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    /// lru_seq -> key, oldest first. Sequences are unique, so this is a
    /// total recency order.
    order: BTreeMap<u64, String>,
    next_seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// An LRU + byte-budget query-result cache with generation validation.
pub struct QueryCache {
    inner: Mutex<Inner>,
    max_entries: usize,
    max_bytes: usize,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::new(1024, 8 * 1024 * 1024)
    }
}

impl QueryCache {
    /// A cache bounded by `max_entries` entries and `max_bytes` of body
    /// bytes.
    pub fn new(max_entries: usize, max_bytes: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Inner::default()),
            max_entries: max_entries.max(1),
            max_bytes,
        }
    }

    /// Look up `key`; only an entry stamped with `generation` counts. A
    /// stale entry is removed (counted as invalidation + miss).
    pub fn get(&self, key: &str, generation: u64) -> Option<String> {
        enum Outcome {
            Hit(String, u64),
            Stale,
            Absent,
        }
        let mut inner = self.inner.lock();
        let outcome = match inner.entries.get(key) {
            Some(e) if e.generation == generation => Outcome::Hit(e.body.clone(), e.lru_seq),
            Some(_) => Outcome::Stale,
            None => Outcome::Absent,
        };
        match outcome {
            Outcome::Hit(body, old_seq) => {
                // Refresh recency.
                let new_seq = inner.next_seq;
                inner.next_seq += 1;
                inner.order.remove(&old_seq);
                inner.order.insert(new_seq, key.to_string());
                inner.entries.get_mut(key).expect("present").lru_seq = new_seq;
                inner.hits += 1;
                Some(body)
            }
            Outcome::Stale => {
                let e = inner.entries.remove(key).expect("present");
                inner.order.remove(&e.lru_seq);
                inner.bytes -= e.body.len();
                inner.invalidations += 1;
                inner.misses += 1;
                None
            }
            Outcome::Absent => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) the cached body for `key` at `generation`,
    /// evicting least-recently-used entries to stay within budget. Bodies
    /// larger than the whole byte budget are not cached.
    pub fn put(&self, key: &str, generation: u64, body: String) {
        if body.len() > self.max_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(key) {
            inner.order.remove(&old.lru_seq);
            inner.bytes -= old.body.len();
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.bytes += body.len();
        inner.order.insert(seq, key.to_string());
        inner.entries.insert(
            key.to_string(),
            Entry {
                body,
                generation,
                lru_seq: seq,
            },
        );
        while inner.entries.len() > self.max_entries || inner.bytes > self.max_bytes {
            let Some((&oldest, _)) = inner.order.iter().next() else {
                break;
            };
            let key = inner.order.remove(&oldest).expect("present");
            let e = inner.entries.remove(&key).expect("present");
            inner.bytes -= e.body.len();
            inner.evictions += 1;
        }
    }

    /// Drop every entry (hit/miss counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.order.clear();
        inner.bytes = 0;
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            entries: inner.entries.len(),
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_at_same_generation() {
        let c = QueryCache::new(4, 1024);
        assert_eq!(c.get("k", 1), None);
        c.put("k", 1, "body".into());
        assert_eq!(c.get("k", 1).as_deref(), Some("body"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 4));
    }

    #[test]
    fn generation_bump_invalidates() {
        let c = QueryCache::new(4, 1024);
        c.put("k", 1, "old".into());
        assert_eq!(c.get("k", 2), None, "stale generation is a miss");
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0, "stale entry dropped");
        c.put("k", 2, "new".into());
        assert_eq!(c.get("k", 2).as_deref(), Some("new"));
    }

    #[test]
    fn lru_eviction_by_entry_count() {
        let c = QueryCache::new(2, 1024);
        c.put("a", 1, "1".into());
        c.put("b", 1, "2".into());
        assert!(c.get("a", 1).is_some(), "touch a → b is now LRU");
        c.put("c", 1, "3".into());
        assert!(c.get("b", 1).is_none(), "b evicted");
        assert!(c.get("a", 1).is_some());
        assert!(c.get("c", 1).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_and_rejects_oversize() {
        let c = QueryCache::new(100, 10);
        c.put("a", 1, "aaaa".into()); // 4 bytes
        c.put("b", 1, "bbbb".into()); // 8 bytes total
        c.put("c", 1, "cccc".into()); // would be 12 → evict a
        assert!(c.get("a", 1).is_none());
        assert_eq!(c.stats().bytes, 8);
        // A body over the whole budget is not cached at all.
        c.put("huge", 1, "x".repeat(11));
        assert!(c.get("huge", 1).is_none());
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn replace_updates_bytes() {
        let c = QueryCache::new(4, 1024);
        c.put("k", 1, "aaaa".into());
        c.put("k", 1, "bb".into());
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (1, 2));
        assert_eq!(c.get("k", 1).as_deref(), Some("bb"));
    }

    #[test]
    fn clear_empties() {
        let c = QueryCache::new(4, 1024);
        c.put("k", 1, "v".into());
        c.clear();
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().bytes, 0);
        assert!(c.get("k", 1).is_none());
    }
}
