//! The generation-stamped, hash-sharded query-result cache.
//!
//! Widget interaction in the paper's §4.4 data explorer re-issues the same
//! ad-hoc query URL every time a user touches a filter, so the server keeps
//! the serialized JSON of recent query results keyed on
//! `(dashboard, dataset, normalized query path)`. Every entry is stamped
//! with the dataset's *data generation* — a counter the platform bumps on
//! each dashboard run and the publish registry bumps on each
//! publish/refresh. A lookup whose stamp no longer matches the live
//! generation is a miss (and evicts the stale entry), so invalidation
//! needs no coordination with the execution path.
//!
//! The cache is partitioned into N independent shards, each with its own
//! mutex, LRU list and budget. A key's shard is chosen by FNV-1a over the
//! normalized path, so concurrent workers touching different keys almost
//! never contend on the same lock — the single-mutex convoy the ROADMAP
//! called out disappears once worker counts grow past a handful.
//!
//! Eviction is LRU *per shard*, bounded by both an entry count and a byte
//! budget over the cached response bodies (the global budgets are divided
//! evenly across shards). [`QueryCache::new`] builds a single-shard cache
//! with strict global LRU order (what the unit tests pin down);
//! [`QueryCache::with_shards`] and [`QueryCache::default`] build the
//! sharded production configuration.

use parking_lot::Mutex;
use shareinsights_tabular::Table;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Shard count used by [`QueryCache::default`].
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Cache statistics for `/stats`. For a sharded cache, [`QueryCache::stats`]
/// returns the merge (field-wise sum) of every shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached body.
    pub hits: u64,
    /// Lookups that found nothing (or found a stale generation).
    pub misses: u64,
    /// Entries dropped to stay within budget.
    pub evictions: u64,
    /// Entries dropped because their generation went stale.
    pub invalidations: u64,
    /// Live entries.
    pub entries: usize,
    /// Bytes held by live entry bodies.
    pub bytes: usize,
}

impl CacheStats {
    /// Field-wise sum, used to merge per-shard snapshots.
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
            entries: self.entries + other.entries,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// FNV-1a 64-bit over the key bytes — cheap, deterministic, and good enough
/// spread for URL-shaped keys.
fn fnv1a(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    body: String,
    generation: u64,
    lru_seq: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    /// lru_seq -> key, oldest first. Sequences are unique, so this is a
    /// total recency order.
    order: BTreeMap<u64, String>,
    next_seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl Shard {
    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            entries: self.entries.len(),
            bytes: self.bytes,
        }
    }
}

/// An LRU + byte-budget query-result cache with generation validation,
/// hash-partitioned into independently locked shards.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    max_entries_per_shard: usize,
    max_bytes_per_shard: usize,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::with_shards(DEFAULT_CACHE_SHARDS, 1024, 8 * 1024 * 1024)
    }
}

impl QueryCache {
    /// A single-shard cache bounded by `max_entries` entries and
    /// `max_bytes` of body bytes, with strict global LRU order.
    pub fn new(max_entries: usize, max_bytes: usize) -> QueryCache {
        QueryCache::with_shards(1, max_entries, max_bytes)
    }

    /// A cache partitioned into `shards` shards; the entry and byte budgets
    /// are divided evenly across them (each shard holds at least one entry).
    pub fn with_shards(shards: usize, max_entries: usize, max_bytes: usize) -> QueryCache {
        let shards = shards.max(1);
        QueryCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            max_entries_per_shard: (max_entries / shards).max(1),
            max_bytes_per_shard: (max_bytes / shards).max(1),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize]
    }

    /// Look up `key`; only an entry stamped with `generation` counts. A
    /// stale entry is removed (counted as invalidation + miss).
    pub fn get(&self, key: &str, generation: u64) -> Option<String> {
        enum Outcome {
            Hit(String, u64),
            Stale,
            Absent,
        }
        let mut shard = self.shard_for(key).lock();
        let outcome = match shard.entries.get(key) {
            Some(e) if e.generation == generation => Outcome::Hit(e.body.clone(), e.lru_seq),
            Some(_) => Outcome::Stale,
            None => Outcome::Absent,
        };
        match outcome {
            Outcome::Hit(body, old_seq) => {
                // Refresh recency.
                let new_seq = shard.next_seq;
                shard.next_seq += 1;
                shard.order.remove(&old_seq);
                shard.order.insert(new_seq, key.to_string());
                shard.entries.get_mut(key).expect("present").lru_seq = new_seq;
                shard.hits += 1;
                Some(body)
            }
            Outcome::Stale => {
                let e = shard.entries.remove(key).expect("present");
                shard.order.remove(&e.lru_seq);
                shard.bytes -= e.body.len();
                shard.invalidations += 1;
                shard.misses += 1;
                None
            }
            Outcome::Absent => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) the cached body for `key` at `generation`,
    /// evicting least-recently-used entries from the key's shard to stay
    /// within its budget. Bodies larger than a whole shard's byte budget
    /// are not cached.
    pub fn put(&self, key: &str, generation: u64, body: String) {
        if body.len() > self.max_bytes_per_shard {
            return;
        }
        let mut shard = self.shard_for(key).lock();
        if let Some(old) = shard.entries.remove(key) {
            shard.order.remove(&old.lru_seq);
            shard.bytes -= old.body.len();
        }
        let seq = shard.next_seq;
        shard.next_seq += 1;
        shard.bytes += body.len();
        shard.order.insert(seq, key.to_string());
        shard.entries.insert(
            key.to_string(),
            Entry {
                body,
                generation,
                lru_seq: seq,
            },
        );
        while shard.entries.len() > self.max_entries_per_shard
            || shard.bytes > self.max_bytes_per_shard
        {
            let Some((&oldest, _)) = shard.order.iter().next() else {
                break;
            };
            let key = shard.order.remove(&oldest).expect("present");
            let e = shard.entries.remove(&key).expect("present");
            shard.bytes -= e.body.len();
            shard.evictions += 1;
        }
    }

    /// Drop every entry in every shard (hit/miss counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.entries.clear();
            shard.order.clear();
            shard.bytes = 0;
        }
    }

    /// Merged statistics snapshot: the field-wise sum over all shards.
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merge(s))
    }

    /// Per-shard statistics snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.lock().stats()).collect()
    }
}

// ---------------------------------------------------------------------------
// Unpaged query-result cache
// ---------------------------------------------------------------------------

/// Default entry bound for [`ResultCache`].
pub const DEFAULT_RESULT_CACHE_ENTRIES: usize = 128;

struct ResultEntry {
    table: Arc<Table>,
    generation: u64,
    lru_seq: u64,
}

#[derive(Default)]
struct ResultShard {
    entries: HashMap<String, ResultEntry>,
    order: BTreeMap<u64, String>,
    next_seq: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// A generation-stamped LRU cache of *unpaged* query results.
///
/// The [`QueryCache`] above holds serialized page bodies keyed on the full
/// URL (including `offset`/`limit`), so paging through a result used to
/// re-evaluate the whole query per page. This cache sits underneath it,
/// keyed on the query alone: the first page evaluates the pipeline once,
/// and every later page slices the cached [`Table`]. Entries are stamped
/// with the same data generation as the body cache, so runs and publishes
/// invalidate both in lockstep.
pub struct ResultCache {
    inner: Mutex<ResultShard>,
    max_entries: usize,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(DEFAULT_RESULT_CACHE_ENTRIES)
    }
}

impl ResultCache {
    /// A cache bounded by `max_entries` results (at least one).
    pub fn new(max_entries: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(ResultShard::default()),
            max_entries: max_entries.max(1),
        }
    }

    /// Look up the unpaged result for `key` at `generation`; a stale entry
    /// is removed (counted as invalidation + miss).
    pub fn get(&self, key: &str, generation: u64) -> Option<Arc<Table>> {
        let mut inner = self.inner.lock();
        let outcome = match inner.entries.get(key) {
            Some(e) if e.generation == generation => Some((Arc::clone(&e.table), e.lru_seq)),
            Some(_) => None,
            None => {
                inner.misses += 1;
                return None;
            }
        };
        match outcome {
            Some((table, old_seq)) => {
                let seq = inner.next_seq;
                inner.next_seq += 1;
                inner.order.remove(&old_seq);
                inner.order.insert(seq, key.to_string());
                inner.entries.get_mut(key).expect("present").lru_seq = seq;
                inner.hits += 1;
                Some(table)
            }
            None => {
                let e = inner.entries.remove(key).expect("present");
                inner.order.remove(&e.lru_seq);
                inner.invalidations += 1;
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) the result for `key` at `generation`, evicting
    /// the least-recently-used entries beyond the bound.
    pub fn put(&self, key: &str, generation: u64, table: Arc<Table>) {
        let mut inner = self.inner.lock();
        if let Some(old) = inner.entries.remove(key) {
            inner.order.remove(&old.lru_seq);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.order.insert(seq, key.to_string());
        inner.entries.insert(
            key.to_string(),
            ResultEntry {
                table,
                generation,
                lru_seq: seq,
            },
        );
        while inner.entries.len() > self.max_entries {
            let Some((&oldest, _)) = inner.order.iter().next() else {
                break;
            };
            let key = inner.order.remove(&oldest).expect("present");
            inner.entries.remove(&key);
            inner.evictions += 1;
        }
    }

    /// Drop every entry (hit/miss counters survive). Bench harnesses use
    /// this to force cold evaluations without restarting the server.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.order.clear();
    }

    /// Statistics snapshot (the `bytes` field stays zero: entries are
    /// shared `Arc<Table>`s, not owned bodies).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            entries: inner.entries.len(),
            bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_at_same_generation() {
        let c = QueryCache::new(4, 1024);
        assert_eq!(c.get("k", 1), None);
        c.put("k", 1, "body".into());
        assert_eq!(c.get("k", 1).as_deref(), Some("body"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 4));
    }

    #[test]
    fn generation_bump_invalidates() {
        let c = QueryCache::new(4, 1024);
        c.put("k", 1, "old".into());
        assert_eq!(c.get("k", 2), None, "stale generation is a miss");
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0, "stale entry dropped");
        c.put("k", 2, "new".into());
        assert_eq!(c.get("k", 2).as_deref(), Some("new"));
    }

    #[test]
    fn lru_eviction_by_entry_count() {
        let c = QueryCache::new(2, 1024);
        c.put("a", 1, "1".into());
        c.put("b", 1, "2".into());
        assert!(c.get("a", 1).is_some(), "touch a → b is now LRU");
        c.put("c", 1, "3".into());
        assert!(c.get("b", 1).is_none(), "b evicted");
        assert!(c.get("a", 1).is_some());
        assert!(c.get("c", 1).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_and_rejects_oversize() {
        let c = QueryCache::new(100, 10);
        c.put("a", 1, "aaaa".into()); // 4 bytes
        c.put("b", 1, "bbbb".into()); // 8 bytes total
        c.put("c", 1, "cccc".into()); // would be 12 → evict a
        assert!(c.get("a", 1).is_none());
        assert_eq!(c.stats().bytes, 8);
        // A body over the whole budget is not cached at all.
        c.put("huge", 1, "x".repeat(11));
        assert!(c.get("huge", 1).is_none());
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn replace_updates_bytes() {
        let c = QueryCache::new(4, 1024);
        c.put("k", 1, "aaaa".into());
        c.put("k", 1, "bb".into());
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (1, 2));
        assert_eq!(c.get("k", 1).as_deref(), Some("bb"));
    }

    #[test]
    fn clear_empties() {
        let c = QueryCache::new(4, 1024);
        c.put("k", 1, "v".into());
        c.clear();
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().bytes, 0);
        assert!(c.get("k", 1).is_none());
    }

    #[test]
    fn shards_spread_keys_and_merge_stats() {
        // Budgets leave headroom: FNV spread over 4 shards is not exactly
        // even, and no shard may evict for this test to see all 64 keys.
        let c = QueryCache::with_shards(4, 256, 256 * 1024);
        assert_eq!(c.shard_count(), 4);
        for i in 0..64 {
            c.put(&format!("key-{i}"), 1, format!("body-{i}"));
        }
        // FNV spreads 64 URL-shaped keys over 4 shards: every shard gets some.
        let per_shard = c.shard_stats();
        assert!(per_shard.iter().all(|s| s.entries > 0), "{per_shard:?}");
        for i in 0..64 {
            assert_eq!(
                c.get(&format!("key-{i}"), 1).as_deref(),
                Some(format!("body-{i}").as_str())
            );
        }
        let merged = c.stats();
        let summed = c
            .shard_stats()
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merge(s));
        assert_eq!(merged, summed);
        assert_eq!(merged.entries, 64);
        assert_eq!(merged.hits, 64);
    }

    #[test]
    fn sharded_budgets_divide_evenly() {
        // 4 shards x (8 entries / 4) = 2 entries per shard; hammering one
        // shard's worth of colliding keys evicts within that shard only.
        let c = QueryCache::with_shards(4, 8, 4096);
        for i in 0..32 {
            c.put(&format!("k{i}"), 1, "x".into());
        }
        let s = c.stats();
        assert!(s.entries <= 8, "per-shard budgets bound the total: {s:?}");
        assert!(s.evictions >= 24, "{s:?}");
    }

    #[test]
    fn concurrent_get_put_bump_never_serves_stale() {
        // M threads hammer get/put across shards while a bumper advances the
        // generation; the invariant: a get at generation g only ever returns
        // a body that was put at exactly g (no lost invalidations).
        use std::sync::atomic::{AtomicU64, Ordering};
        let c = QueryCache::with_shards(8, 256, 1 << 20);
        let generation = AtomicU64::new(1);
        let threads = 8;
        let iters = 400;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let c = &c;
                let generation = &generation;
                scope.spawn(move || {
                    for i in 0..iters {
                        let key = format!("key-{}", (t * 7 + i * 13) % 31);
                        let g = generation.load(Ordering::SeqCst);
                        c.put(&key, g, g.to_string());
                        let g2 = generation.load(Ordering::SeqCst);
                        if let Some(body) = c.get(&key, g2) {
                            // The stamp check is the invalidation: a hit at
                            // g2 must carry g2's body, never an older one.
                            assert_eq!(body, g2.to_string(), "stale body served");
                        }
                        if i % 50 == 0 {
                            generation.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        let merged = c.stats();
        let summed = c
            .shard_stats()
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merge(s));
        assert_eq!(merged, summed, "merged stats are the sum of shard stats");
        assert_eq!(
            merged.hits + merged.misses,
            (threads * iters) as u64,
            "every get is either a hit or a miss"
        );
    }

    fn one_row(v: i64) -> Arc<Table> {
        Arc::new(Table::from_rows(&["a"], &[shareinsights_tabular::row![v]]).unwrap())
    }

    #[test]
    fn result_cache_stamps_generations_and_evicts_lru() {
        let c = ResultCache::new(2);
        assert!(c.get("q1", 1).is_none());
        c.put("q1", 1, one_row(1));
        let hit = c.get("q1", 1).expect("hit");
        assert_eq!(hit.num_rows(), 1);
        // Stale generation invalidates.
        assert!(c.get("q1", 2).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
        // Capacity 2: inserting a third evicts the oldest.
        c.put("q1", 2, one_row(1));
        c.put("q2", 2, one_row(2));
        let _ = c.get("q1", 2); // refresh q1 → q2 is now oldest
        c.put("q3", 2, one_row(3));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(c.get("q2", 2).is_none(), "q2 was LRU-evicted");
        assert!(c.get("q1", 2).is_some());
        assert!(c.get("q3", 2).is_some());
    }
}
