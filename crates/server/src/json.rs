//! JSON serialisation of tables for the data API.

use shareinsights_tabular::{Table, Value};

/// JSON-escape and quote a string.
pub fn quote(s: &str) -> String {
    shareinsights_tabular::io::json::quote_json(s)
}

fn value_to_json(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.is_finite() {
                f.to_string()
            } else {
                "null".to_string()
            }
        }
        Value::Str(s) => quote(s),
        Value::Date(_) => quote(&v.to_string()),
    }
}

/// Serialise a table as `{"columns": [...], "rows": [[...]]}` — the payload
/// shape the figure-28 endpoint browse returns.
pub fn table_to_json(table: &Table) -> String {
    let mut out = String::from("{\"columns\": [");
    for (i, name) in table.schema().names().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&quote(name));
    }
    out.push_str("], \"rows\": [");
    for r in 0..table.num_rows() {
        if r > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (c, col) in table.columns().iter().enumerate() {
            if c > 0 {
                out.push_str(", ");
            }
            out.push_str(&value_to_json(&col.value(r)));
        }
        out.push(']');
    }
    out.push_str(&format!("], \"total_rows\": {}}}", table.num_rows()));
    out
}

/// Serialise a string list as a JSON array.
pub fn string_list(items: &[impl AsRef<str>]) -> String {
    let mut out = String::from("[");
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&quote(s.as_ref()));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;

    #[test]
    fn table_serialises_and_reparses() {
        let t = Table::from_rows(
            &["name", "n", "f"],
            &[
                row!["a\"quote", 1i64, 2.5],
                row![Value::Null, 2i64, Value::Null],
            ],
        )
        .unwrap();
        let json = table_to_json(&t);
        let doc = shareinsights_tabular::io::json::parse_json(&json).unwrap();
        assert_eq!(doc.path("total_rows").unwrap().to_value().as_int(), Some(2));
        assert_eq!(doc.path("rows.0.0").unwrap().as_str(), Some("a\"quote"));
        assert_eq!(
            doc.path("rows.1.0"),
            Some(&shareinsights_tabular::io::json::JsonValue::Null)
        );
        assert_eq!(doc.path("columns.2").unwrap().as_str(), Some("f"));
    }

    #[test]
    fn string_list_escapes() {
        assert_eq!(string_list(&["a", "b\"c"]), r#"["a", "b\"c"]"#);
        assert_eq!(string_list(&[] as &[&str]), "[]");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let t = Table::from_rows(&["f"], &[row![f64::NAN]]).unwrap();
        let json = table_to_json(&t);
        assert!(json.contains("null"));
        shareinsights_tabular::io::json::parse_json(&json).unwrap();
    }
}
