//! A dependency-free safe wrapper over Linux `epoll`.
//!
//! The build environment vendors no crates, so the three syscalls the
//! reactor needs — `epoll_create1`, `epoll_ctl`, `epoll_wait` — are
//! declared here as raw FFI against the C library every Rust binary on
//! Linux already links. The wrapper owns the epoll instance fd (closed
//! on drop via [`OwnedFd`]) and speaks in tokens: callers register a
//! file descriptor under an arbitrary `u64` token and get that token
//! back in readiness events, which insulates the connection table from
//! fd reuse races.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable readiness (`EPOLLIN`).
pub const EVENT_READ: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EVENT_WRITE: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EVENT_ERROR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`) — always reported, never requested.
pub const EVENT_HANGUP: u32 = 0x010;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// The kernel's `struct epoll_event`. Packed on x86-64 (a quirk the ABI
/// inherited from aligning with 32-bit layouts); naturally aligned
/// everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    token: u64,
}

impl EpollEvent {
    /// Zeroed event, for sizing wait buffers.
    pub fn empty() -> EpollEvent {
        EpollEvent {
            events: 0,
            token: 0,
        }
    }

    /// The readiness bitmask (`EVENT_*`).
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The token the fd was registered under.
    pub fn token(&self) -> u64 {
        self.token
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 has no memory arguments; a non-negative
        // return is a freshly created fd this process owns.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            token,
        };
        let ev_ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, ev_ptr) })?;
        Ok(())
    }

    /// Register `fd` under `token` for the `interest` events
    /// (level-triggered).
    pub fn register(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Remove `fd` from the interest list.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` for readiness, filling `events`. Returns
    /// the number of events delivered (0 on timeout). A signal-interrupted
    /// wait is reported as 0 events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a valid, writable slice; the kernel fills
        // at most `events.len()` entries.
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    #[test]
    fn registered_sockets_report_readiness_under_their_token() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        ep.register(b.as_raw_fd(), EVENT_READ, 42).unwrap();

        // Nothing readable yet: wait times out.
        let mut events = vec![EpollEvent::empty(); 8];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].events() & EVENT_READ, 0);

        // Modify to write interest: an empty socket buffer is writable.
        ep.modify(b.as_raw_fd(), EVENT_WRITE, 43).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 43);
        assert_ne!(events[0].events() & EVENT_WRITE, 0);

        // Deregistered fds never fire again.
        ep.deregister(b.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn hangup_is_reported_even_without_interest() {
        let ep = Epoll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        // Interest 0: only the always-on error/hangup events can fire.
        ep.register(b.as_raw_fd(), 0, 7).unwrap();
        drop(a);
        let mut events = vec![EpollEvent::empty(); 8];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].events() & EVENT_HANGUP, 0);
    }
}
