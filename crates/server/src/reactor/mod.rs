//! The event-driven serving core: one epoll loop, many connections.
//!
//! `serve_reactor` is the [`ServeMode::Reactor`](crate::serve::ServeMode)
//! implementation behind [`crate::serve()`]. Where the thread-per-connection
//! mode parks a worker thread on every open socket — so 2 000 idle
//! keep-alive dashboards wedge a 4-thread pool solid — the reactor
//! registers every connection with a single `Epoll` instance and parks
//! exactly one thread in `epoll_wait`. Idle connections cost one table
//! entry; the worker pool only ever executes requests that have fully
//! arrived.
//!
//! Shape of the loop:
//!
//! * **Token 0** is the listener: readiness means `accept` until
//!   `WouldBlock`, registering each connection under a fresh token
//!   (tokens, not fds, key the connection table — an fd number can be
//!   reused by the kernel the instant a connection closes).
//! * **Token 1** is the waker, the read half of a `UnixStream` pair.
//!   Workers finish a request, push the response onto the completion
//!   list, and write one byte — which pops the reactor out of
//!   `epoll_wait` to stream responses out.
//! * **Every other token** is a connection walking the
//!   `Reading → Dispatched → Writing` machine in `conn`. Requests are
//!   parsed incrementally with [`wire::try_parse`]; responses stream
//!   through [`wire::ResponseStream`] so a body bigger than the chunk
//!   budget never sits fully framed in memory; a partial write re-arms
//!   the connection for `EPOLLOUT` instead of blocking anything.
//!
//! Timeout semantics are byte-for-byte those of the blocking mode —
//! idle connections close silently (`idle_timeouts`), a mid-head stall
//! closes silently under the `(timeout)` pseudo-route, a mid-body stall
//! answers 408 first — enforced by a periodic deadline sweep instead of
//! socket timeouts (nonblocking sockets never block to time out).

pub(crate) mod conn;
pub(crate) mod epoll;

use self::conn::{Conn, ConnState, ReadProgress, WriteProgress};
use self::epoll::{Epoll, EpollEvent, EVENT_ERROR, EVENT_HANGUP, EVENT_READ, EVENT_WRITE};
use crate::http::{Request, Response, Status};
use crate::metrics::{ROUTE_DEADLINE, ROUTE_MALFORMED, ROUTE_REJECTED, ROUTE_TIMEOUT};
use crate::router::Server;
use crate::serve::{log_request_events, ServeOptions, ServiceHandle};
use crate::stream::{StreamHub, Subscription, SubscriptionEnd};
use crate::wire::{self, KeepAliveTerms, Parsed};
use shareinsights_core::ApiMetrics;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Token of the accepting listener.
const TOKEN_LISTENER: u64 = 0;
/// Token of the worker-completion waker.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// `epoll_wait` timeout; doubles as the deadline-sweep granularity, so
/// idle/io timeouts are enforced within ~this much slack.
const WAIT_MS: i32 = 25;
/// Readiness events drained per `epoll_wait` call.
const EVENT_BATCH: usize = 1024;
/// Per-connection unflushed-stream-byte soft cap: while at or above it,
/// the pump stops pulling frames off the subscription queue, so
/// backpressure lands in the hub's bounded queue (and its eviction
/// policy) instead of growing the connection's out-buffer without bound.
const STREAM_OUT_SOFT_CAP: usize = 256 * 1024;

/// A parsed, ready request on its way to the worker pool.
struct Job {
    token: u64,
    work: Work,
    /// Keep-alive terms to advertise (None ⇒ `Connection: close`).
    keep: Option<KeepAliveTerms>,
    enqueued: Instant,
}

/// What a worker executes for one job.
enum Work {
    /// A fully buffered request: dispatch through the router.
    Request(Request),
    /// A streamed ingest whose body has fully drained: commit it
    /// (reassemble + append + index merge) off the event loop. Boxed:
    /// the session carries segment buffers and worker handles, far
    /// larger than a buffered request.
    IngestFinish(Box<crate::ingest::StreamedIngest>),
}

/// A handled request on its way back to the event loop.
struct Completion {
    token: u64,
    response: Response,
    keep: Option<KeepAliveTerms>,
    /// A subscribe request: the connection switches into SSE streaming
    /// instead of writing `response`.
    stream: Option<Arc<Subscription>>,
}

/// Bind `addr` and serve `server` through the epoll event loop.
pub(crate) fn serve_reactor(
    server: Server,
    addr: &str,
    options: ServeOptions,
) -> io::Result<ServiceHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;

    // Published stream frames land in subscriber queues off-loop (the
    // push handler runs on a worker); a waker byte tells the event loop
    // to pump them out. A full waker buffer already means a wakeup is
    // pending, so the lost write is harmless.
    let stream_waker = wake_tx.try_clone()?;
    server.stream_hub().set_notifier(Box::new(move || {
        let _ = (&stream_waker).write(&[1]);
    }));

    let (tx, rx) = sync_channel::<Job>(options.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let completions = Arc::new(Mutex::new(Vec::<Completion>::new()));

    let mut threads = Vec::with_capacity(options.workers.max(1) + 1);
    {
        let stop = Arc::clone(&stop);
        let server = server.clone();
        let opts = options.clone();
        let completions = Arc::clone(&completions);
        threads.push(std::thread::spawn(move || {
            event_loop(&server, &listener, wake_rx, tx, &completions, &opts, &stop);
        }));
    }
    for _ in 0..options.workers.max(1) {
        let rx = Arc::clone(&rx);
        let server = server.clone();
        let opts = options.clone();
        let completions = Arc::clone(&completions);
        let waker = wake_tx.try_clone()?;
        threads.push(std::thread::spawn(move || {
            worker_loop(&server, &rx, &opts, &completions, &waker);
        }));
    }

    Ok(ServiceHandle::new(bound, stop, threads, Some(wake_tx)))
}

/// Execute ready requests off the job queue; push responses back through
/// the completion list and kick the waker.
fn worker_loop(
    server: &Server,
    rx: &Mutex<Receiver<Job>>,
    opts: &ServeOptions,
    completions: &Mutex<Vec<Completion>>,
    waker: &UnixStream,
) {
    loop {
        // Hold the lock only while dequeuing, not while handling.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // reactor gone and queue drained
        };
        let waited = job.enqueued.elapsed();
        let (response, keep, stream) = if waited > opts.deadline {
            server.platform().api_metrics().record(
                ROUTE_DEADLINE,
                false,
                waited.as_micros() as u64,
            );
            if let Work::IngestFinish(ingest) = job.work {
                // The decoded body is dropped with the session — the
                // endpoint stays unchanged, like any shed request.
                ingest.abort(Some(Status::ServiceUnavailable));
            }
            let resp = Response::error(Status::ServiceUnavailable, "deadline exceeded in queue");
            (resp, None, None)
        } else {
            match job.work {
                Work::Request(request) => {
                    let handled = server.handle_traced(&request);
                    log_request_events(opts, &request, &handled);
                    (handled.response, job.keep, handled.stream)
                }
                Work::IngestFinish(ingest) => (ingest.finish(), job.keep, None),
            }
        };
        completions.lock().push(Completion {
            token: job.token,
            response,
            keep,
            stream,
        });
        // One byte per completion batch member is fine; a full (unread)
        // waker buffer already guarantees a pending wakeup.
        let _ = (&*waker).write(&[1]);
    }
}

struct Reactor<'a> {
    metrics: ApiMetrics,
    epoll: Epoll,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    tx: SyncSender<Job>,
    opts: &'a ServeOptions,
    hub: Arc<StreamHub>,
    server: &'a Server,
}

fn event_loop(
    server: &Server,
    listener: &TcpListener,
    mut wake_rx: UnixStream,
    tx: SyncSender<Job>,
    completions: &Mutex<Vec<Completion>>,
    opts: &ServeOptions,
    stop: &AtomicBool,
) {
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(e) => {
            emit_loop_error(opts, &format!("epoll_create1 failed: {e}"));
            return;
        }
    };
    if let Err(e) = epoll
        .register(listener.as_raw_fd(), EVENT_READ, TOKEN_LISTENER)
        .and_then(|()| epoll.register(wake_rx.as_raw_fd(), EVENT_READ, TOKEN_WAKER))
    {
        emit_loop_error(opts, &format!("epoll registration failed: {e}"));
        return;
    }
    let mut r = Reactor {
        metrics: server.platform().api_metrics().clone(),
        epoll,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        tx,
        opts,
        hub: Arc::clone(server.stream_hub()),
        server,
    };
    let mut events = vec![EpollEvent::empty(); EVENT_BATCH];
    let mut last_sweep = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        let n = match r.epoll.wait(&mut events, WAIT_MS) {
            Ok(n) => n,
            Err(e) => {
                emit_loop_error(opts, &format!("epoll_wait failed: {e}"));
                return;
            }
        };
        if n > 0 {
            r.metrics.record_reactor_wakeup(n as u64);
        }
        let mut accept = false;
        let mut drain = false;
        for ev in &events[..n] {
            match ev.token() {
                TOKEN_LISTENER => accept = true,
                TOKEN_WAKER => drain = true,
                token => r.conn_event(token, ev.events()),
            }
        }
        if drain {
            r.drain_completions(&mut wake_rx, completions);
        }
        if accept {
            r.accept_ready(listener);
        }
        if last_sweep.elapsed().as_millis() >= WAIT_MS as u128 {
            r.sweep();
            last_sweep = Instant::now();
        }
    }
    // Shutdown: dropping the reactor drops `tx`, which lets the workers
    // drain the queue and exit; every registered connection closes with
    // its socket. Late completions are simply discarded. Subscriptions
    // are marked closed so any in-process subscriber handles see the end.
    server.stream_hub().close_all();
}

fn emit_loop_error(opts: &ServeOptions, message: &str) {
    opts.event_log.emit("error", &[("message", message.into())]);
}

impl Reactor<'_> {
    /// Accept until `WouldBlock`, registering each connection.
    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .register(stream.as_raw_fd(), EVENT_READ, token)
                        .is_err()
                    {
                        continue;
                    }
                    self.metrics.record_conn_accepted();
                    self.metrics.record_reactor_register();
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Route one readiness event to its connection's state machine.
    fn conn_event(&mut self, token: u64, mask: u32) {
        if mask & (EVENT_ERROR | EVENT_HANGUP) != 0 {
            // Both halves are gone; nothing useful can be written.
            self.close(token);
            return;
        }
        if mask & EVENT_WRITE != 0 {
            match self.conns.get(&token).map(|c| c.state) {
                Some(ConnState::Writing) => self.drive_write(token),
                Some(ConnState::Streaming) => self.pump_stream(token),
                _ => {}
            }
        }
        if mask & EVENT_READ != 0 {
            match self.conns.get(&token).map(|c| c.state) {
                Some(ConnState::Reading) => {
                    let progress = match self.conns.get_mut(&token) {
                        Some(conn) => conn.read_some(),
                        None => return,
                    };
                    match progress {
                        ReadProgress::Read(_) => self.try_dispatch(token),
                        ReadProgress::WouldBlock => {}
                        ReadProgress::Eof => {
                            // Same split as the blocking loop: a clean quiet close
                            // just goes away; a half-sent request gets 400 first.
                            if self.conns.get(&token).is_some_and(|c| !c.buf.is_empty()) {
                                self.metrics.record(ROUTE_MALFORMED, false, 0);
                                self.respond_and_close(
                                    token,
                                    Response::error(
                                        Status::BadRequest,
                                        "connection closed mid-request",
                                    ),
                                );
                            } else {
                                self.close(token);
                            }
                        }
                        ReadProgress::Error => self.close(token),
                    }
                }
                Some(ConnState::Ingesting) => {
                    let progress = match self.conns.get_mut(&token) {
                        Some(conn) => conn.read_some(),
                        None => return,
                    };
                    match progress {
                        ReadProgress::Read(_) => self.drive_ingest(token),
                        ReadProgress::WouldBlock => {}
                        ReadProgress::Eof | ReadProgress::Error => {
                            // Disconnect mid-body: the pipeline is aborted
                            // in `close` and the endpoint stays unchanged.
                            self.metrics.record(ROUTE_MALFORMED, false, 0);
                            self.close(token);
                        }
                    }
                }
                Some(ConnState::Streaming) => {
                    // A subscriber only ever *reads*; inbound bytes are
                    // discarded, and EOF is the unsubscribe signal.
                    let progress = match self.conns.get_mut(&token) {
                        Some(conn) => conn.read_some(),
                        None => return,
                    };
                    match progress {
                        ReadProgress::Read(_) => {
                            if let Some(conn) = self.conns.get_mut(&token) {
                                conn.buf.clear();
                            }
                        }
                        ReadProgress::WouldBlock => {}
                        ReadProgress::Eof | ReadProgress::Error => self.close(token),
                    }
                }
                _ => {}
            }
        }
    }

    /// Parse the buffer; dispatch a complete request to the worker pool,
    /// answer wire errors, or keep waiting.
    fn try_dispatch(&mut self, token: u64) {
        enum Next {
            Wait,
            Reject(Status, String),
            Dispatch(Job),
            Close,
            /// The head matched a streaming route: the connection enters
            /// `Ingesting` and body bytes feed the pipeline as they come.
            Ingest,
        }
        let next = {
            let Reactor {
                conns,
                epoll,
                metrics,
                opts,
                server,
                ..
            } = self;
            let Some(conn) = conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Reading {
                return;
            }
            // Streaming routes take over as soon as the head parses —
            // the body is fed to the pipeline window by window instead of
            // accumulating in `conn.buf`.
            let streamed = match wire::try_parse_head(&conn.buf, &opts.limits) {
                wire::HeadParsed::Head(head) if crate::ingest::wants_streaming(&head) => Some(head),
                _ => None,
            };
            if let Some(head) = streamed {
                conn.buf.drain(..head.consumed);
                conn.head_complete = true;
                conn.served += 1;
                let max = opts.max_requests_per_connection.max(1) as u64;
                conn.pending_keep =
                    (head.keep_alive && conn.served < max).then(|| KeepAliveTerms {
                        timeout: opts.idle_timeout,
                        max: max - conn.served,
                    });
                conn.ingest = Some(crate::ingest::StreamedIngest::begin(
                    server,
                    &head,
                    &opts.limits,
                ));
                conn.state = ConnState::Ingesting;
                Next::Ingest
            } else {
                match wire::try_parse(&conn.buf, &opts.limits) {
                    Parsed::Incomplete { head_complete } => {
                        conn.head_complete = head_complete;
                        Next::Wait
                    }
                    Parsed::Error { status, message } => Next::Reject(status, message),
                    Parsed::Complete(parsed) => {
                        conn.buf.drain(..parsed.consumed);
                        conn.head_complete = false;
                        conn.served += 1;
                        let max = opts.max_requests_per_connection.max(1) as u64;
                        let keep =
                            (parsed.keep_alive && conn.served < max).then(|| KeepAliveTerms {
                                timeout: opts.idle_timeout,
                                max: max - conn.served,
                            });
                        // Quiesce read interest while the worker runs: the
                        // kernel socket buffer is the pipelining backpressure.
                        conn.state = ConnState::Dispatched;
                        if conn.interest != 0 {
                            if epoll.modify(conn.stream.as_raw_fd(), 0, token).is_err() {
                                Next::Close
                            } else {
                                conn.interest = 0;
                                metrics.record_reactor_dispatch();
                                Next::Dispatch(Job {
                                    token,
                                    work: Work::Request(parsed.request),
                                    keep,
                                    enqueued: Instant::now(),
                                })
                            }
                        } else {
                            metrics.record_reactor_dispatch();
                            Next::Dispatch(Job {
                                token,
                                work: Work::Request(parsed.request),
                                keep,
                                enqueued: Instant::now(),
                            })
                        }
                    }
                }
            }
        };
        match next {
            Next::Wait => {}
            Next::Close => self.close(token),
            Next::Ingest => self.drive_ingest(token),
            Next::Reject(status, message) => {
                self.metrics.record(ROUTE_MALFORMED, false, 0);
                self.respond_and_close(token, Response::error(status, message));
            }
            Next::Dispatch(job) => match self.tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    // Same shedding contract as the blocking acceptor: a
                    // full queue answers 503 immediately.
                    self.metrics.record(ROUTE_REJECTED, false, 0);
                    self.respond_and_close(
                        token,
                        Response::error(Status::ServiceUnavailable, "queue full"),
                    );
                }
                Err(TrySendError::Disconnected(_)) => self.close(token),
            },
        }
    }

    /// Feed buffered body bytes into an `Ingesting` connection's
    /// pipeline. Early rejections (unknown dashboard, announced over-cap
    /// body) and mid-transfer framing errors answer and close; body
    /// completion dispatches the commit to the worker pool so the event
    /// loop never runs the reassemble + append + index merge. The
    /// pipeline's bounded segment queue is the memory cap: a stall there
    /// briefly holds the loop, bounded by two in-flight segment decodes.
    fn drive_ingest(&mut self, token: u64) {
        enum After {
            Wait,
            Respond(Response),
            Finish(Job),
            Close,
        }
        let after = {
            let Reactor {
                conns,
                epoll,
                metrics,
                ..
            } = self;
            let Some(conn) = conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Ingesting {
                return;
            }
            let Some(ingest) = conn.ingest.as_mut() else {
                return;
            };
            if let Some(resp) = ingest.take_early() {
                conn.ingest = None;
                After::Respond(resp)
            } else {
                match ingest.feed(&conn.buf) {
                    Err(resp) => {
                        conn.ingest = None;
                        After::Respond(resp)
                    }
                    Ok(consumed) => {
                        conn.buf.drain(..consumed);
                        if ingest.body_complete() {
                            let ingest = conn.ingest.take().expect("checked above");
                            conn.head_complete = false;
                            // Quiesce read interest while the worker
                            // commits, exactly like a dispatched request.
                            conn.state = ConnState::Dispatched;
                            if conn.interest != 0
                                && epoll.modify(conn.stream.as_raw_fd(), 0, token).is_err()
                            {
                                ingest.abort(None);
                                After::Close
                            } else {
                                if conn.interest != 0 {
                                    conn.interest = 0;
                                }
                                metrics.record_reactor_dispatch();
                                After::Finish(Job {
                                    token,
                                    work: Work::IngestFinish(Box::new(ingest)),
                                    keep: conn.pending_keep.take(),
                                    enqueued: Instant::now(),
                                })
                            }
                        } else {
                            After::Wait
                        }
                    }
                }
            }
        };
        match after {
            After::Wait => {}
            After::Close => self.close(token),
            After::Respond(response) => self.respond_and_close(token, response),
            After::Finish(job) => match self.tx.try_send(job) {
                Ok(()) => {}
                Err(err) => {
                    let (job, full) = match err {
                        TrySendError::Full(job) => (job, true),
                        TrySendError::Disconnected(job) => (job, false),
                    };
                    if let Work::IngestFinish(ingest) = job.work {
                        ingest.abort(None);
                    }
                    if full {
                        // Same shedding contract as a buffered request.
                        self.metrics.record(ROUTE_REJECTED, false, 0);
                        self.respond_and_close(
                            token,
                            Response::error(Status::ServiceUnavailable, "queue full"),
                        );
                    } else {
                        self.close(token);
                    }
                }
            },
        }
    }

    /// Install `response` on the connection and stream it out.
    fn start_response(&mut self, token: u64, response: Response, keep: Option<KeepAliveTerms>) {
        let budget = self.opts.chunk_budget;
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.start_response(response, keep, budget);
        }
        self.drive_write(token);
    }

    /// Answer `response` with `Connection: close`, then close.
    fn respond_and_close(&mut self, token: u64, response: Response) {
        self.start_response(token, response, None);
    }

    /// Push pending response bytes; arm `EPOLLOUT` on backpressure, and
    /// return the connection to `Reading` (or close it) when done.
    fn drive_write(&mut self, token: u64) {
        let progress = match self.conns.get_mut(&token) {
            Some(conn) => conn.write_some(),
            None => return,
        };
        match progress {
            WriteProgress::Finished => {
                if self.conns.get(&token).is_none_or(|c| c.close_after_write) {
                    self.close(token);
                    return;
                }
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.state = ConnState::Reading;
                    conn.head_complete = false;
                    conn.last_activity = Instant::now();
                }
                if !self.set_interest(token, EVENT_READ) {
                    self.close(token);
                    return;
                }
                // A pipelined successor may already be buffered.
                self.try_dispatch(token);
            }
            WriteProgress::Blocked => {
                let newly = self
                    .conns
                    .get(&token)
                    .is_some_and(|c| c.interest != EVENT_WRITE);
                if self.set_interest(token, EVENT_WRITE) {
                    if newly {
                        self.metrics.record_reactor_rearm();
                    }
                } else {
                    self.close(token);
                }
            }
            WriteProgress::Error => self.close(token),
        }
    }

    /// Point the connection's epoll registration at `mask`. False means
    /// the kernel refused (the caller should close).
    fn set_interest(&mut self, token: u64, mask: u32) -> bool {
        let Reactor { conns, epoll, .. } = self;
        let Some(conn) = conns.get_mut(&token) else {
            return false;
        };
        if conn.interest == mask {
            return true;
        }
        if epoll.modify(conn.stream.as_raw_fd(), mask, token).is_err() {
            return false;
        }
        conn.interest = mask;
        true
    }

    /// Deregister and drop one connection, unhooking any subscription.
    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.deregister(conn.stream.as_raw_fd());
            self.metrics.record_conn_closed(conn.served);
            self.metrics.record_reactor_deregister();
            if let Some(ingest) = conn.ingest {
                // A half-fed pipeline dies with its connection; the
                // endpoint is untouched.
                ingest.abort(None);
            }
            if let Some(sub) = conn.sub {
                sub.close();
                self.hub.unsubscribe(&sub);
                self.metrics.record_stream_unsubscribe();
            }
        }
    }

    /// Absorb the waker bytes and stream out every finished response.
    fn drain_completions(
        &mut self,
        wake_rx: &mut UnixStream,
        completions: &Mutex<Vec<Completion>>,
    ) {
        let mut sink = [0u8; 256];
        while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        let batch = std::mem::take(&mut *completions.lock());
        for c in batch {
            if let Some(sub) = c.stream {
                // A subscribe: switch the connection into SSE streaming
                // (`c.response` is the in-process acknowledgement body and
                // never hits the wire — the SSE head takes its place).
                if self.conns.contains_key(&c.token) {
                    self.begin_stream(c.token, sub);
                } else {
                    // Died while dispatched: tidy the registration.
                    sub.close();
                    self.hub.unsubscribe(&sub);
                    self.metrics.record_stream_unsubscribe();
                }
            } else if self.conns.contains_key(&c.token) {
                // The connection may have died (hangup) while dispatched.
                self.start_response(c.token, c.response, c.keep);
            }
        }
        // The same waker byte announces newly published frames.
        self.pump_streams();
    }

    /// Put a freshly subscribed connection on the SSE wire: response head
    /// first, then whatever frames (the initial snapshot) already queued.
    fn begin_stream(&mut self, token: u64, sub: Arc<Subscription>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.start_streaming(sub, wire::sse_head());
        self.pump_stream(token);
    }

    /// Move published frames from every streaming connection's
    /// subscription queue onto its socket.
    fn pump_streams(&mut self) {
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Streaming)
            .map(|(&t, _)| t)
            .collect();
        for token in tokens {
            self.pump_stream(token);
        }
    }

    /// Pull frames for one streaming connection and flush. Pulling stops
    /// while the unflushed backlog sits above the soft cap, so a slow
    /// reader backs up into the hub's bounded queue and gets evicted
    /// there rather than growing this buffer without limit.
    fn pump_stream(&mut self, token: u64) {
        let mut evicted = false;
        {
            let Reactor { conns, .. } = self;
            let Some(conn) = conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Streaming {
                return;
            }
            if !conn.ending && conn.out_backlog() < STREAM_OUT_SOFT_CAP {
                if let Some(sub) = conn.sub.clone() {
                    let (frames, end) = sub.try_take();
                    for frame in &frames {
                        conn.enqueue_stream_bytes(frame);
                    }
                    match end {
                        SubscriptionEnd::Open => {}
                        SubscriptionEnd::Closed => {
                            conn.enqueue_stream_bytes(wire::sse_done());
                            conn.ending = true;
                        }
                        SubscriptionEnd::Evicted => {
                            evicted = true;
                            conn.enqueue_stream_bytes(wire::sse_done());
                            conn.ending = true;
                        }
                    }
                }
            }
        }
        if evicted {
            self.metrics.record_stream_dropped();
        }
        self.drive_stream_write(token);
    }

    /// Flush a streaming connection's queued bytes; arm `EPOLLOUT` on
    /// backpressure, close once the terminal chunk has drained.
    fn drive_stream_write(&mut self, token: u64) {
        let progress = match self.conns.get_mut(&token) {
            Some(conn) => conn.write_stream(),
            None => return,
        };
        match progress {
            WriteProgress::Finished => {
                if self.conns.get(&token).is_some_and(|c| c.ending) {
                    self.close(token);
                    return;
                }
                // Drained: watch for the peer hanging up between frames.
                if !self.set_interest(token, EVENT_READ) {
                    self.close(token);
                }
            }
            WriteProgress::Blocked => {
                let newly = self
                    .conns
                    .get(&token)
                    .is_some_and(|c| c.interest != EVENT_WRITE);
                if self.set_interest(token, EVENT_WRITE) {
                    if newly {
                        self.metrics.record_reactor_rearm();
                    }
                } else {
                    self.close(token);
                }
            }
            WriteProgress::Error => self.close(token),
        }
    }

    /// Enforce idle and io deadlines — the nonblocking analog of the
    /// blocking mode's socket timeouts, with identical classification.
    fn sweep(&mut self) {
        let now = Instant::now();
        let mut idle = Vec::new();
        let mut stalled: Vec<(u64, bool)> = Vec::new();
        let mut broken = Vec::new();
        for (&token, conn) in &self.conns {
            let quiet = now.duration_since(conn.last_activity);
            match conn.state {
                ConnState::Reading if conn.buf.is_empty() => {
                    if quiet > self.opts.idle_timeout {
                        idle.push(token);
                    }
                }
                ConnState::Reading => {
                    if quiet > self.opts.io_timeout {
                        stalled.push((token, conn.head_complete));
                    }
                }
                // A response the peer will not read: give up quietly, as
                // the blocking mode's write timeout does.
                ConnState::Writing => {
                    if quiet > self.opts.io_timeout {
                        broken.push(token);
                    }
                }
                // The worker owns the request; the queue deadline governs.
                ConnState::Dispatched => {}
                // Mid-body by definition: a stall answers 408 (the
                // pipeline is aborted when the close lands).
                ConnState::Ingesting => {
                    if quiet > self.opts.io_timeout {
                        stalled.push((token, true));
                    }
                }
                // Subscriptions idle indefinitely by design; only a peer
                // that stopped draining a pending write is given up on.
                ConnState::Streaming => {
                    if conn.out_backlog() > 0 && quiet > self.opts.io_timeout {
                        broken.push(token);
                    }
                }
            }
        }
        for token in idle {
            self.metrics.record_idle_timeout();
            self.close(token);
        }
        for (token, head_complete) in stalled {
            self.metrics.record(ROUTE_TIMEOUT, false, 0);
            self.metrics.record_io_timeout();
            if head_complete {
                // The head parsed, so the client speaks HTTP — tell it
                // what happened before closing.
                self.respond_and_close(
                    token,
                    Response::error(Status::RequestTimeout, "timed out reading request body"),
                );
            } else {
                self.close(token);
            }
        }
        for token in broken {
            self.close(token);
        }
    }
}
