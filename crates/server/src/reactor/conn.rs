//! The reactor's per-connection state machine.
//!
//! A connection moves `Reading → Dispatched → Writing → Reading …` until
//! it closes: readable bytes accumulate in a capped buffer until
//! [`crate::wire::try_parse`] produces a request, the request executes on
//! the worker pool while the connection sits quiet (no read interest —
//! kernel socket buffering is the pipelining backpressure), and the
//! response streams out through a [`ResponseStream`] whose partial writes
//! re-arm `EPOLLOUT` instead of blocking a thread. All methods here are
//! socket-local; the event loop in [`super`] owns the epoll registration
//! and the state transitions.

use super::epoll::EVENT_READ;
use crate::http::Response;
use crate::stream::Subscription;
use crate::wire::{KeepAliveTerms, ResponseStream};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Per-read-event byte cap: keeps one chatty connection from starving
/// the loop (level-triggered epoll re-reports whatever is left).
const READ_BUDGET_PER_EVENT: usize = 256 * 1024;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Waiting for (more of) a request head or body.
    Reading,
    /// A complete request is executing on the worker pool.
    Dispatched,
    /// A response is streaming out.
    Writing,
    /// A long-lived SSE subscription: generation-delta frames flow out
    /// as they are published; the connection never returns to `Reading`.
    Streaming,
    /// A streamed request body is draining into an ingest pipeline
    /// (`Conn::ingest`): each readable event feeds the de-framer, and
    /// body completion dispatches the commit to the worker pool.
    Ingesting,
}

/// What one readable-event drain produced.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ReadProgress {
    /// Appended `n > 0` bytes to the buffer.
    Read(usize),
    /// Nothing more to read right now.
    WouldBlock,
    /// Peer closed its sending half (EOF).
    Eof,
    /// Unrecoverable socket error.
    Error,
}

/// What one writable-event drain produced.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum WriteProgress {
    /// The whole response went out.
    Finished,
    /// The socket buffer filled; re-arm for `EPOLLOUT`.
    Blocked,
    /// Unrecoverable socket error.
    Error,
}

/// One multiplexed connection.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Unparsed request bytes (including pipelined successors).
    pub(crate) buf: Vec<u8>,
    pub(crate) state: ConnState,
    /// Requests served (counting the one in flight once dispatched).
    pub(crate) served: u64,
    /// Last socket progress — the timeout sweeps measure from here.
    pub(crate) last_activity: Instant,
    /// True once the in-flight request's head parsed (stall ⇒ 408, not a
    /// silent close).
    pub(crate) head_complete: bool,
    /// Close instead of returning to `Reading` after the current write.
    pub(crate) close_after_write: bool,
    /// Epoll interest mask currently registered for this connection.
    pub(crate) interest: u32,
    /// The hub subscription feeding this connection while `Streaming`.
    pub(crate) sub: Option<Arc<Subscription>>,
    /// The terminal chunk is queued; close once the out-buffer drains.
    pub(crate) ending: bool,
    /// The streamed-body pipeline this connection feeds while `Ingesting`.
    pub(crate) ingest: Option<crate::ingest::StreamedIngest>,
    /// Keep-alive terms for the eventual ingest response (decided when
    /// the head parsed, like a dispatched request's `Job::keep`).
    pub(crate) pending_keep: Option<KeepAliveTerms>,
    response: Option<ResponseStream>,
    out: Vec<u8>,
    out_pos: usize,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::with_capacity(1024),
            state: ConnState::Reading,
            served: 0,
            last_activity: Instant::now(),
            head_complete: false,
            close_after_write: false,
            interest: EVENT_READ,
            sub: None,
            ending: false,
            ingest: None,
            pending_keep: None,
            response: None,
            out: Vec::new(),
            out_pos: 0,
        }
    }

    /// Drain the socket into the buffer, up to the per-event budget.
    pub(crate) fn read_some(&mut self) -> ReadProgress {
        let mut total = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if total > 0 {
                        self.last_activity = Instant::now();
                        ReadProgress::Read(total)
                    } else {
                        ReadProgress::Eof
                    }
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    total += n;
                    if total >= READ_BUDGET_PER_EVENT {
                        self.last_activity = Instant::now();
                        return ReadProgress::Read(total);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return if total > 0 {
                        self.last_activity = Instant::now();
                        ReadProgress::Read(total)
                    } else {
                        ReadProgress::WouldBlock
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadProgress::Error,
            }
        }
    }

    /// Install a response to stream out and enter `Writing`.
    pub(crate) fn start_response(
        &mut self,
        response: Response,
        keep: Option<KeepAliveTerms>,
        chunk_budget: Option<usize>,
    ) {
        self.close_after_write = keep.is_none();
        self.response = Some(ResponseStream::new(response, keep, chunk_budget));
        self.out.clear();
        self.out_pos = 0;
        self.state = ConnState::Writing;
        self.last_activity = Instant::now();
    }

    /// Push response bytes until done, blocked, or broken. The out-buffer
    /// holds at most one [`ResponseStream`] refill — the chunk budget —
    /// at a time, so per-connection write memory stays bounded.
    pub(crate) fn write_some(&mut self) -> WriteProgress {
        let Some(stream) = self.response.as_mut() else {
            return WriteProgress::Finished;
        };
        loop {
            if self.out_pos == self.out.len() {
                if !stream.next_wire(&mut self.out) {
                    self.response = None;
                    return WriteProgress::Finished;
                }
                self.out_pos = 0;
            }
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return WriteProgress::Error,
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return WriteProgress::Blocked;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return WriteProgress::Error,
            }
        }
    }

    /// Switch into `Streaming` with `head` (the SSE response head) queued
    /// as the first bytes out. Any pending batch response is abandoned.
    pub(crate) fn start_streaming(&mut self, sub: Arc<Subscription>, head: &[u8]) {
        self.response = None;
        self.out.clear();
        self.out_pos = 0;
        self.out.extend_from_slice(head);
        self.sub = Some(sub);
        self.ending = false;
        self.close_after_write = true;
        self.state = ConnState::Streaming;
        self.last_activity = Instant::now();
    }

    /// Queue raw, pre-framed bytes (one SSE frame or the terminal chunk)
    /// behind whatever is still unflushed.
    pub(crate) fn enqueue_stream_bytes(&mut self, bytes: &[u8]) {
        if self.out_pos > 0 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// Bytes queued but not yet on the wire.
    pub(crate) fn out_backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Flush queued stream bytes. `Finished` here means *drained*, not
    /// that the connection is done — streaming connections stay open
    /// until the subscription ends or the peer goes away.
    pub(crate) fn write_stream(&mut self) -> WriteProgress {
        loop {
            if self.out_pos == self.out.len() {
                return WriteProgress::Finished;
            }
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return WriteProgress::Error,
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return WriteProgress::Blocked;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return WriteProgress::Error,
            }
        }
    }
}
