//! The TCP front end: a real socket server over the in-process router.
//!
//! A [`std::net::TcpListener`] accepts connections and hands them to a
//! fixed pool of worker threads through a *bounded* queue. When the queue
//! is full the accept loop answers 503 immediately instead of letting the
//! backlog grow (load shedding), and a connection that waited in the queue
//! past its deadline is also answered 503 without being parsed. Both
//! conditions are visible in `/stats` under the `(rejected)` and
//! `(deadline)` pseudo-routes.
//!
//! The wire format is a small HTTP/1.1 subset: request line, headers
//! (`Content-Length` and `Connection` drive framing; everything else —
//! notably `X-Trace-Id` — is passed through to the router), optional body.
//! Connections are **persistent**: HTTP/1.1 requests keep the connection
//! open by default (HTTP/1.0 only with an explicit `Connection:
//! keep-alive`), a worker loops reading requests off the same socket until
//! the client sends `Connection: close`, goes idle past
//! [`ServeOptions::idle_timeout`], or exhausts
//! [`ServeOptions::max_requests_per_connection`]. Pipelined requests are
//! handled in order: bytes past the current request's body carry over into
//! the next parse. A client that stalls *mid-request* past
//! [`ServeOptions::io_timeout`] is counted under the `(timeout)`
//! pseudo-route and — when its request head already parsed — answered 408
//! before the close.
//!
//! Operationally interesting requests go to a structured
//! [`EventLog`] as JSON lines: any
//! response with a 5xx status (`"event": "error"`) and any request slower
//! than [`ServeOptions::slow_request_threshold`] (`"event":
//! "slow_request"`), each carrying the trace id when the request was
//! sampled.

use crate::http::{Request, Response, Status};
use crate::ingest::StreamedIngest;
use crate::metrics::{ROUTE_DEADLINE, ROUTE_MALFORMED, ROUTE_REJECTED, ROUTE_TIMEOUT};
use crate::router::Server;
use crate::wire::{
    self, dechunk, find_head_end, KeepAliveTerms, Parsed, ParsedHead, ResponseStream, WireLimits,
};
use shareinsights_core::trace::{AttrValue, EventLog};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Which serving architecture [`serve`] runs. Request semantics — framing,
/// keep-alive terms, timeout classification, caches, tracing — are
/// identical in both; the modes differ only in how connections map onto
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// A pooled worker thread owns each connection for its whole life.
    /// Simple and predictable, but every idle keep-alive connection pins
    /// a worker, so a few thousand quiet dashboards starve the pool.
    #[default]
    ThreadPerConnection,
    /// One epoll event loop multiplexes every connection and the worker
    /// pool only executes requests that have fully arrived — idle
    /// connections cost a table entry, not a thread (see
    /// [`crate::reactor`]).
    Reactor,
}

/// Tuning for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded queue depth between the acceptor and the workers; a full
    /// queue means immediate 503s.
    pub queue_depth: usize,
    /// Maximum time a connection may wait in the queue before it is
    /// answered 503 instead of being served.
    pub deadline: Duration,
    /// Socket read/write timeout *within* a request (guards against
    /// clients that stall mid-head or mid-body).
    pub io_timeout: Duration,
    /// How long a kept-alive connection may sit idle *between* requests
    /// before the server closes it quietly.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server answers the
    /// last one with `Connection: close` (bounds how long a worker can be
    /// owned by a single client).
    pub max_requests_per_connection: usize,
    /// Requests whose handling latency meets or exceeds this threshold are
    /// written to [`ServeOptions::event_log`] as `slow_request` events
    /// (with trace id, when sampled). `None` disables slow-request
    /// logging.
    pub slow_request_threshold: Option<Duration>,
    /// Where `slow_request` / `error` events go (JSON lines). Defaults to
    /// standard error.
    pub event_log: EventLog,
    /// Serving architecture (see [`ServeMode`]).
    pub serve_mode: ServeMode,
    /// Responses whose body exceeds this many bytes are framed with
    /// `Transfer-Encoding: chunked`, buffering at most one budget-sized
    /// chunk of wire bytes at a time — bounding per-in-flight-response
    /// memory regardless of body size. `None` always frames with
    /// `Content-Length` in a single buffer.
    pub chunk_budget: Option<usize>,
    /// Request parsing byte caps: an oversized head is answered
    /// `431 Request Header Fields Too Large`, an oversized body 400.
    pub limits: WireLimits,
    /// When set, a scraper thread samples the telemetry registry into the
    /// `_system/telemetry` history ring at this interval (see
    /// [`Server::scrape_telemetry`]). `None` (the default) disables the
    /// scraper; the `_system` dashboard then serves an empty history.
    pub scrape_interval: Option<Duration>,
    /// Shared-nothing data-plane width: with `shards >= 2`, [`serve`]
    /// attaches a scatter/gather shard set via [`Server::with_shards`]
    /// (unless the server already carries one), so both serve modes get
    /// sharded execution from the same switch. `0` or `1` (the default)
    /// keeps single-shard execution.
    pub shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 128,
            slow_request_threshold: None,
            event_log: EventLog::stderr(),
            serve_mode: ServeMode::ThreadPerConnection,
            chunk_budget: None,
            limits: WireLimits::default(),
            scrape_interval: None,
            shards: 0,
        }
    }
}

struct Job {
    stream: TcpStream,
    accepted: Instant,
}

/// A running service; dropping it (or calling [`ServiceHandle::shutdown`])
/// stops the acceptor and joins the workers.
pub struct ServiceHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Reactor-mode wake handle: one byte pops the event loop out of
    /// `epoll_wait`, so shutdown is prompt instead of waiting out a poll
    /// interval.
    waker: Option<UnixStream>,
}

impl ServiceHandle {
    pub(crate) fn new(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        threads: Vec<JoinHandle<()>>,
        waker: Option<UnixStream>,
    ) -> ServiceHandle {
        ServiceHandle {
            addr,
            stop,
            threads,
            waker,
        }
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the queue, and join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(waker) = &self.waker {
            let _ = (&*waker).write(&[1]);
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `server` in the
/// architecture [`ServeOptions::serve_mode`] selects. With
/// [`ServeOptions::scrape_interval`] set, a telemetry scraper thread rides
/// along on the handle — same lifecycle as the serving threads, in either
/// mode.
pub fn serve(server: Server, addr: &str, options: ServeOptions) -> io::Result<ServiceHandle> {
    // Both serve modes share the router, so attaching the shard set (and
    // pointing data-plane events at the serve log) here once covers them
    // equally. A server that already carries a shard set keeps it.
    let server = if options.shards >= 2 && server.shards().is_none() {
        server
            .with_shards(options.shards)
            .with_event_log(options.event_log.clone())
    } else {
        server.with_event_log(options.event_log.clone())
    };
    let scrape_interval = options.scrape_interval;
    let scraper_server = scrape_interval.map(|_| server.clone());
    let mut handle = match options.serve_mode {
        ServeMode::ThreadPerConnection => serve_threads(server, addr, options),
        ServeMode::Reactor => crate::reactor::serve_reactor(server, addr, options),
    }?;
    if let (Some(interval), Some(server)) = (scrape_interval, scraper_server) {
        let stop = Arc::clone(&handle.stop);
        handle.threads.push(std::thread::spawn(move || {
            scraper_loop(&server, interval, &stop)
        }));
    }
    Ok(handle)
}

/// The telemetry self-scrape tick: sample the registry into the `_system`
/// history ring immediately (so the dashboard has data before the first
/// interval elapses), then every `interval` until shutdown. Sleeps in
/// short slices so shutdown stays prompt even with long intervals.
fn scraper_loop(server: &Server, interval: Duration, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        server.scrape_telemetry();
        let deadline = Instant::now() + interval;
        while !stop.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10).min(interval));
        }
    }
}

/// The [`ServeMode::ThreadPerConnection`] implementation: a bounded queue
/// between one acceptor and a pool of workers that each own a connection
/// at a time.
fn serve_threads(server: Server, addr: &str, options: ServeOptions) -> io::Result<ServiceHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = sync_channel::<Job>(options.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::with_capacity(options.workers.max(1));
    for _ in 0..options.workers.max(1) {
        let rx = Arc::clone(&rx);
        let stop = Arc::clone(&stop);
        let server = server.clone();
        let opts = options.clone();
        workers.push(std::thread::spawn(move || {
            worker_loop(&server, &rx, &opts, &stop)
        }));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        let server = server.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        // Responses are written in one buffer, so Nagle only
                        // adds delayed-ACK stalls on persistent connections.
                        let _ = stream.set_nodelay(true);
                        match tx.try_send(Job {
                            stream,
                            accepted: Instant::now(),
                        }) {
                            Ok(()) => {}
                            Err(TrySendError::Full(job)) => {
                                server
                                    .platform()
                                    .api_metrics()
                                    .record(ROUTE_REJECTED, false, 0);
                                let resp =
                                    Response::error(Status::ServiceUnavailable, "queue full");
                                let _ = write_response(&job.stream, resp, None, None);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            // End every live stream so parked subscription writers wake
            // promptly; tx drops here and workers drain the queue.
            server.stream_hub().close_all();
        })
    };

    let mut threads = vec![acceptor];
    threads.append(&mut workers);
    Ok(ServiceHandle::new(bound, stop, threads, None))
}

fn worker_loop(server: &Server, rx: &Mutex<Receiver<Job>>, opts: &ServeOptions, stop: &AtomicBool) {
    loop {
        // Hold the lock only while dequeuing, not while handling.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // acceptor gone and queue drained
        };
        let waited = job.accepted.elapsed();
        if waited > opts.deadline {
            server.platform().api_metrics().record(
                ROUTE_DEADLINE,
                false,
                waited.as_micros() as u64,
            );
            let resp = Response::error(Status::ServiceUnavailable, "deadline exceeded in queue");
            let _ = write_response(&job.stream, resp, None, None);
            continue;
        }
        handle_connection(server, &job.stream, opts, stop);
    }
}

/// Serve requests off one connection until it closes: the keep-alive loop.
fn handle_connection(server: &Server, stream: &TcpStream, opts: &ServeOptions, stop: &AtomicBool) {
    let metrics = server.platform().api_metrics();
    metrics.record_conn_accepted();
    let _ = stream.set_write_timeout(Some(opts.io_timeout));
    let max_requests = opts.max_requests_per_connection.max(1) as u64;
    let mut carry: Vec<u8> = Vec::with_capacity(1024);
    let mut served: u64 = 0;
    loop {
        match read_request(stream, &mut carry, opts) {
            ReadOutcome::Request(request, client_keep_alive) => {
                served += 1;
                let keep = client_keep_alive && served < max_requests;
                let handled = server.handle_traced(&request);
                log_request_events(opts, &request, &handled);
                if let Some(sub) = handled.stream {
                    // The connection switches into SSE streaming mode and
                    // never returns to request/response service.
                    stream_blocking(server, stream, &sub, stop);
                    server.stream_hub().unsubscribe(&sub);
                    server.platform().api_metrics().record_stream_unsubscribe();
                    break;
                }
                let response = handled.response;
                let remaining = max_requests - served;
                let header = keep.then_some(KeepAliveTerms {
                    timeout: opts.idle_timeout,
                    max: remaining,
                });
                if write_response(stream, response, header, opts.chunk_budget).is_err() || !keep {
                    break;
                }
            }
            ReadOutcome::StreamedBody(head) => {
                served += 1;
                let keep = head.keep_alive && served < max_requests;
                match stream_ingest_body(server, stream, &mut carry, &head, opts) {
                    StreamedResult::Respond { response, close } => {
                        let keep = keep && !close;
                        let remaining = max_requests - served;
                        let header = keep.then_some(KeepAliveTerms {
                            timeout: opts.idle_timeout,
                            max: remaining,
                        });
                        if write_response(stream, response, header, opts.chunk_budget).is_err()
                            || !keep
                        {
                            break;
                        }
                    }
                    StreamedResult::Hangup => break,
                }
            }
            ReadOutcome::Closed => break,
            ReadOutcome::IdleTimeout => {
                // The client simply went quiet between requests; close
                // without fanfare (it is not an error on any route).
                metrics.record_idle_timeout();
                break;
            }
            ReadOutcome::TimedOutMidHead => {
                // Bytes arrived but the head never completed: there is no
                // parseable request to answer, so just account and close.
                metrics.record(ROUTE_TIMEOUT, false, 0);
                metrics.record_io_timeout();
                break;
            }
            ReadOutcome::TimedOutMidBody => {
                // The head parsed, so the client speaks HTTP — tell it what
                // happened before closing.
                metrics.record(ROUTE_TIMEOUT, false, 0);
                metrics.record_io_timeout();
                let resp =
                    Response::error(Status::RequestTimeout, "timed out reading request body");
                let _ = write_response(stream, resp, None, opts.chunk_budget);
                break;
            }
            ReadOutcome::Bad(status, message) => {
                metrics.record(ROUTE_MALFORMED, false, 0);
                let resp = Response::error(status, message);
                let _ = write_response(stream, resp, None, opts.chunk_budget);
                break;
            }
        }
    }
    metrics.record_conn_closed(served);
}

/// How a streamed-body request ended.
enum StreamedResult {
    /// Send `response`; `close` forces `Connection: close` (the body was
    /// not fully drained, so the stream cannot be resynchronised).
    Respond { response: Response, close: bool },
    /// The peer is gone (disconnect mid-body); nothing to send.
    Hangup,
}

/// Drain one streamed request body into an ingest pipeline: feed bytes
/// already read past the head, then keep reading the socket under
/// `io_timeout` until the body framing says done. Memory stays bounded —
/// only the de-framer window and the pipeline's bounded segment queue are
/// ever held. Leftover bytes past the body stay in `carry` for the next
/// pipelined request.
fn stream_ingest_body(
    server: &Server,
    mut stream: &TcpStream,
    carry: &mut Vec<u8>,
    head: &ParsedHead,
    opts: &ServeOptions,
) -> StreamedResult {
    let metrics = server.platform().api_metrics();
    let mut ingest = StreamedIngest::begin(server, head, &opts.limits);
    if let Some(response) = ingest.take_early() {
        return StreamedResult::Respond {
            response,
            close: true,
        };
    }
    loop {
        if !carry.is_empty() {
            match ingest.feed(carry) {
                Ok(consumed) => {
                    carry.drain(..consumed);
                }
                Err(response) => {
                    return StreamedResult::Respond {
                        response,
                        close: true,
                    }
                }
            }
        }
        if ingest.body_complete() {
            break;
        }
        let _ = stream.set_read_timeout(Some(opts.io_timeout));
        let mut chunk = [0u8; 65536];
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Disconnect mid-body: abort with the endpoint unchanged.
                ingest.abort(None);
                metrics.record(ROUTE_MALFORMED, false, 0);
                return StreamedResult::Hangup;
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                // Same classification as a buffered mid-body stall: the
                // head parsed, so answer 408 before closing.
                ingest.abort(Some(Status::RequestTimeout));
                metrics.record(ROUTE_TIMEOUT, false, 0);
                metrics.record_io_timeout();
                return StreamedResult::Respond {
                    response: Response::error(
                        Status::RequestTimeout,
                        "timed out reading request body",
                    ),
                    close: true,
                };
            }
            Err(e) => {
                ingest.abort(None);
                return StreamedResult::Respond {
                    response: Response::error(Status::BadRequest, format!("read error: {e}")),
                    close: true,
                };
            }
        }
    }
    StreamedResult::Respond {
        response: ingest.finish(),
        close: false,
    }
}

/// Drive one SSE subscription over a blocking socket (thread-per-
/// connection mode): write the fixed stream head, then park on the
/// subscription's condvar and write whatever frames it yields, probing
/// the socket for client disconnect between waits. Returns when the
/// subscription ends (close/eviction), the client disconnects, the
/// socket errors, or the service is stopping.
fn stream_blocking(
    server: &Server,
    mut stream: &TcpStream,
    sub: &Arc<crate::stream::Subscription>,
    stop: &AtomicBool,
) {
    use crate::stream::SubscriptionEnd;
    if stream.write_all(wire::sse_head()).is_err() {
        sub.close();
        return;
    }
    let _ = stream.flush();
    loop {
        if stop.load(Ordering::SeqCst) {
            sub.close();
        }
        let (frames, end) = sub.wait_frames(Duration::from_millis(100));
        for frame in &frames {
            if stream.write_all(frame).is_err() {
                sub.close();
                return;
            }
        }
        if !frames.is_empty() {
            let _ = stream.flush();
        }
        match end {
            SubscriptionEnd::Open => {}
            SubscriptionEnd::Closed | SubscriptionEnd::Evicted => {
                if end == SubscriptionEnd::Evicted {
                    server.platform().api_metrics().record_stream_dropped();
                }
                let _ = stream.write_all(wire::sse_done());
                let _ = stream.flush();
                return;
            }
        }
        if frames.is_empty() {
            // Nothing arrived this wait: probe for client disconnect so
            // an abandoned subscriber doesn't pin a worker forever. A
            // timeout just means the client is (correctly) quiet.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
            let mut probe = [0u8; 16];
            match stream.read(&mut probe) {
                Ok(0) => {
                    sub.close();
                    return;
                }
                Ok(_) => {} // clients have nothing valid to say mid-stream
                Err(e) if is_timeout(&e) => {}
                Err(_) => {
                    sub.close();
                    return;
                }
            }
        }
    }
}

/// Emit `error` / `slow_request` events for one handled request. The trace
/// id rides along when the request was sampled, so a log line links
/// straight to `GET /trace/<id>`.
pub(crate) fn log_request_events(
    opts: &ServeOptions,
    request: &Request,
    handled: &crate::router::Handled,
) {
    let code = handled.response.status.code();
    let slow = opts
        .slow_request_threshold
        .is_some_and(|t| handled.elapsed_us >= t.as_micros() as u64);
    if code < 500 && !slow {
        return;
    }
    let mut fields: Vec<(&str, AttrValue)> = vec![
        ("method", request.method.to_string().into()),
        ("path", request.path.as_str().into()),
        ("status", i64::from(code).into()),
        ("elapsed_us", handled.elapsed_us.into()),
    ];
    if let Some(id) = handled.trace_id {
        fields.push(("trace_id", id.to_string().into()));
    }
    if code >= 500 {
        opts.event_log.emit("error", &fields);
    }
    if slow {
        opts.event_log.emit("slow_request", &fields);
    }
}

/// What reading the next request off a persistent connection produced.
enum ReadOutcome {
    /// A complete request, plus whether the client permits keep-alive.
    Request(Request, bool),
    /// A complete *head* for a streaming route: the body is still (partly)
    /// on the wire and the caller drains it through a [`StreamedIngest`].
    /// `carry` holds whatever body bytes were already read.
    StreamedBody(Box<ParsedHead>),
    /// Peer closed cleanly before sending any byte of a new request.
    Closed,
    /// No byte of a new request arrived within the idle window.
    IdleTimeout,
    /// The socket timed out after some head bytes arrived.
    TimedOutMidHead,
    /// The socket timed out after the head parsed, mid-body.
    TimedOutMidBody,
    /// Unacceptable request: answer `status` with the message and close
    /// (400 for malformed, 431 for an oversized head).
    Bad(Status, String),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Parse one HTTP/1.1 request off the socket via the shared incremental
/// parser. `carry` holds bytes already read past the previous request
/// (pipelining); on success it is left holding any bytes past this
/// request's body. The first byte of a new request is allowed the
/// (usually longer) idle window; once the request has started, the
/// stricter io_timeout applies.
fn read_request(mut stream: &TcpStream, carry: &mut Vec<u8>, opts: &ServeOptions) -> ReadOutcome {
    loop {
        // Streaming routes take over as soon as the head parses: the body
        // is handed to the handler window by window instead of being
        // buffered whole (and so is exempt from the buffered-body cap).
        if let wire::HeadParsed::Head(head) = wire::try_parse_head(carry, &opts.limits) {
            if crate::ingest::wants_streaming(&head) {
                carry.drain(..head.consumed);
                return ReadOutcome::StreamedBody(head);
            }
        }
        let head_complete = match wire::try_parse(carry, &opts.limits) {
            Parsed::Complete(p) => {
                carry.drain(..p.consumed);
                return ReadOutcome::Request(p.request, p.keep_alive);
            }
            Parsed::Error { status, message } => return ReadOutcome::Bad(status, message),
            Parsed::Incomplete { head_complete } => head_complete,
        };
        let started = !carry.is_empty();
        let timeout = if started {
            opts.io_timeout
        } else {
            opts.idle_timeout
        };
        let _ = stream.set_read_timeout(Some(timeout));
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) if started => {
                return ReadOutcome::Bad(
                    Status::BadRequest,
                    "connection closed mid-request".to_string(),
                )
            }
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                return if head_complete {
                    ReadOutcome::TimedOutMidBody
                } else if started {
                    ReadOutcome::TimedOutMidHead
                } else {
                    ReadOutcome::IdleTimeout
                }
            }
            Err(_) if !started => return ReadOutcome::Closed,
            Err(e) => return ReadOutcome::Bad(Status::BadRequest, format!("read error: {e}")),
        }
    }
}

/// Write one response through the shared [`ResponseStream`] framer. `keep`
/// carries the keep-alive terms when the connection stays open; `None`
/// announces `Connection: close`. With a chunk budget, large bodies go out
/// chunked a bounded buffer at a time; small responses stay the classic
/// one-buffer write (which sidesteps Nagle/delayed-ACK stalls).
fn write_response(
    mut stream: &TcpStream,
    resp: Response,
    keep: Option<KeepAliveTerms>,
    chunk_budget: Option<usize>,
) -> io::Result<()> {
    let mut response = ResponseStream::new(resp, keep, chunk_budget);
    let mut out = Vec::new();
    while response.next_wire(&mut out) {
        stream.write_all(&out)?;
    }
    stream.flush()
}

// ---------------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------------

/// A blocking client that holds one persistent connection and issues
/// sequential requests over it — what a dashboard session looks like to the
/// server. Responses are framed by `Content-Length`; when the server
/// announces `Connection: close` the connection is marked dead and further
/// requests error with [`io::ErrorKind::NotConnected`].
pub struct ClientConnection {
    stream: TcpStream,
    buf: Vec<u8>,
    closed: bool,
}

impl ClientConnection {
    /// Connect to `addr` with generous socket timeouts.
    pub fn connect(addr: SocketAddr) -> io::Result<ClientConnection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(ClientConnection {
            stream,
            buf: Vec::new(),
            closed: false,
        })
    }

    /// True once the server announced `Connection: close` on a response.
    pub fn server_closed(&self) -> bool {
        self.closed
    }

    /// GET over the persistent connection.
    pub fn get(&mut self, target: &str) -> io::Result<(u16, String)> {
        self.request("GET", target, "")
    }

    /// One request over the persistent connection (keep-alive announced).
    pub fn request(&mut self, method: &str, target: &str, body: &str) -> io::Result<(u16, String)> {
        self.send(method, target, body, true, &[])
    }

    /// One keep-alive request with extra headers (e.g. `X-Trace-Id`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<(u16, String)> {
        self.send(method, target, body, true, headers)
    }

    /// Subscribe to a live flow (`/:dashboard/ds/:dataset/subscribe`),
    /// consuming the connection: the server switches it into SSE
    /// streaming mode, so no further request/response exchanges are
    /// possible on it. A non-200 answer is surfaced as an error carrying
    /// the status code.
    pub fn subscribe(mut self, target: &str) -> io::Result<SseSubscriber> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "server closed the connection",
            ));
        }
        let wire_req =
            format!("GET {target} HTTP/1.1\r\nHost: shareinsights\r\nContent-Length: 0\r\n\r\n");
        self.stream.write_all(wire_req.as_bytes())?;
        self.stream.flush()?;
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before the stream head",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let status: u16 = head
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        if status != 200 {
            return Err(io::Error::other(format!("subscribe failed: {status}")));
        }
        if !head.to_ascii_lowercase().contains("text/event-stream") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "subscribe answered a non-SSE response",
            ));
        }
        let mut parser = wire::SseParser::new();
        let mut ready = Vec::new();
        let leftover = self.buf.split_off(head_end + 4);
        if !leftover.is_empty() {
            ready = parser
                .feed(&leftover)
                .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
        }
        Ok(SseSubscriber {
            stream: self.stream,
            parser,
            ready: ready.into(),
            closed: false,
        })
    }

    /// One request announcing `Connection: close` — the server responds,
    /// then closes; this connection is dead afterwards.
    pub fn request_close(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
    ) -> io::Result<(u16, String)> {
        self.send(method, target, body, false, &[])
    }

    fn send(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
        keep: bool,
        headers: &[(&str, &str)],
    ) -> io::Result<(u16, String)> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "server closed the connection",
            ));
        }
        let connection = if keep { "keep-alive" } else { "close" };
        let mut wire = format!(
            "{method} {target} HTTP/1.1\r\nHost: shareinsights\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
            body.len()
        );
        for (name, value) in headers {
            wire.push_str(&format!("{name}: {value}\r\n"));
        }
        wire.push_str("\r\n");
        wire.push_str(body);
        self.stream.write_all(wire.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => {
                    self.closed = true;
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before a full response head",
                    ));
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let status: u16 = head
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        let mut close = false;
        let mut chunked = false;
        for line in head.lines().skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                } else if name.eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
                {
                    close = true;
                } else if name.eq_ignore_ascii_case("transfer-encoding")
                    && value.trim().eq_ignore_ascii_case("chunked")
                {
                    chunked = true;
                }
            }
        }
        if chunked {
            // De-chunk: read until the terminating 0-chunk, decode, and
            // leave pipelined bytes past it in the buffer.
            let body_start = head_end + 4;
            loop {
                match dechunk(&self.buf[body_start..]) {
                    Some(Ok((body, used))) => {
                        self.buf.drain(..body_start + used);
                        if close {
                            self.closed = true;
                        }
                        return Ok((status, body));
                    }
                    Some(Err(message)) => {
                        return Err(io::Error::new(io::ErrorKind::InvalidData, message));
                    }
                    None => {
                        let mut chunk = [0u8; 4096];
                        match self.stream.read(&mut chunk)? {
                            0 => {
                                self.closed = true;
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    "truncated chunked body",
                                ));
                            }
                            n => self.buf.extend_from_slice(&chunk[..n]),
                        }
                    }
                }
            }
        }
        let total = head_end + 4 + content_length;
        while self.buf.len() < total {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk)? {
                0 => {
                    self.closed = true;
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "truncated body: {} of {content_length} bytes",
                            self.buf.len() - head_end - 4
                        ),
                    ));
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = String::from_utf8_lossy(&self.buf[head_end + 4..total]).into_owned();
        self.buf.drain(..total);
        if close {
            self.closed = true;
        }
        Ok((status, body))
    }
}

/// A live-flow subscription held by [`ClientConnection::subscribe`]:
/// reads and parses SSE frames off its dedicated connection.
pub struct SseSubscriber {
    stream: TcpStream,
    parser: wire::SseParser,
    /// Events parsed but not yet handed to the caller.
    ready: std::collections::VecDeque<wire::SseEvent>,
    /// True once the socket hit EOF.
    closed: bool,
}

impl SseSubscriber {
    /// Block until at least one event is available, the stream ends, or
    /// `timeout` elapses. An empty result means no event arrived in the
    /// window — check [`SseSubscriber::terminated`] to distinguish a
    /// finished stream from a quiet one. EOF mid-frame (the server died
    /// with a frame half-written) is an error.
    pub fn next_events(&mut self, timeout: Duration) -> io::Result<Vec<wire::SseEvent>> {
        if !self.ready.is_empty() {
            return Ok(self.ready.drain(..).collect());
        }
        let deadline = Instant::now() + timeout;
        loop {
            if self.terminated() {
                return Ok(Vec::new());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(Vec::new());
            }
            self.stream
                .set_read_timeout(Some(remaining.min(Duration::from_millis(250))))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.closed = true;
                    if self.parser.mid_frame() {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream closed mid-frame",
                        ));
                    }
                    return Ok(Vec::new());
                }
                Ok(n) => {
                    let events = self
                        .parser
                        .feed(&chunk[..n])
                        .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
                    if !events.is_empty() {
                        return Ok(events);
                    }
                }
                Err(e) if is_timeout(&e) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// True once the stream ended — terminal chunk received or EOF.
    pub fn terminated(&self) -> bool {
        self.parser.terminated() || self.closed
    }
}

/// A minimal blocking client for tests and examples: one request,
/// `Connection: close`, returns `(status code, body)`.
pub fn blocking_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    ClientConnection::connect(addr)?.request_close(method, target, body)
}

/// GET shorthand over [`blocking_request`].
pub fn blocking_get(addr: SocketAddr, target: &str) -> io::Result<(u16, String)> {
    blocking_request(addr, "GET", target, "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_core::Platform;

    fn service() -> ServiceHandle {
        let platform = Platform::new();
        platform.upload_data("demo", "t.csv", "k,v\na,1\nb,2\n");
        platform.create_dashboard("demo").unwrap();
        let server = Server::new(platform);
        serve(server, "127.0.0.1:0", ServeOptions::default()).expect("bind")
    }

    #[test]
    fn serves_requests_over_tcp() {
        let mut svc = service();
        let (code, body) = blocking_get(svc.local_addr(), "/dashboards").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "[\"demo\"]");
        let (code, _) = blocking_get(svc.local_addr(), "/nope/nope/nope/nope").unwrap();
        assert_eq!(code, 404);
        svc.shutdown();
    }

    #[test]
    fn put_body_round_trips() {
        let mut svc = service();
        let flow = "D:\n  t: [k, v]\nD.t:\n  source: 't.csv'\n  format: csv\nT:\n  by_k:\n    type: groupby\n    groupby: [k]\nF:\n  +D.out: D.t | T.by_k\n";
        let (code, body) =
            blocking_request(svc.local_addr(), "PUT", "/dashboards/demo/flow", flow).unwrap();
        assert_eq!(code, 200, "{body}");
        let (code, body) =
            blocking_request(svc.local_addr(), "POST", "/dashboards/demo/run", "").unwrap();
        assert_eq!(code, 200, "{body}");
        let (code, body) = blocking_get(svc.local_addr(), "/demo/ds/out").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"total_rows\": 2"), "{body}");
        svc.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let svc = service();
        let mut stream = TcpStream::connect(svc.local_addr()).unwrap();
        stream.write_all(b"NONSENSE /x SMTP/9\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
    }

    #[test]
    fn persistent_connection_serves_many_requests() {
        let mut svc = service();
        let mut conn = ClientConnection::connect(svc.local_addr()).unwrap();
        for _ in 0..5 {
            let (code, body) = conn.get("/dashboards").unwrap();
            assert_eq!(code, 200);
            assert_eq!(body, "[\"demo\"]");
            assert!(!conn.server_closed());
        }
        let (code, _) = conn.request_close("GET", "/dashboards", "").unwrap();
        assert_eq!(code, 200);
        assert!(conn.server_closed());
        assert!(conn.get("/dashboards").is_err(), "dead after close");
        svc.shutdown();
    }

    #[test]
    fn pipelined_requests_answered_in_order() {
        let mut svc = service();
        let mut stream = TcpStream::connect(svc.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Two requests in one write; the second closes.
        let batch = "GET /dashboards HTTP/1.1\r\nContent-Length: 0\r\n\r\n\
                     GET /nope/nope/nope/nope HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
        stream.write_all(batch.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let first = out.find("HTTP/1.1 200 OK").expect("first response");
        let second = out.find("HTTP/1.1 404 Not Found").expect("second response");
        assert!(first < second, "in order: {out}");
        svc.shutdown();
    }

    #[test]
    fn max_requests_per_connection_is_bounded() {
        let platform = Platform::new();
        platform.create_dashboard("demo").unwrap();
        let opts = ServeOptions {
            max_requests_per_connection: 3,
            ..ServeOptions::default()
        };
        let mut svc = serve(Server::new(platform), "127.0.0.1:0", opts).expect("bind");
        let mut conn = ClientConnection::connect(svc.local_addr()).unwrap();
        for i in 0..3 {
            let (code, _) = conn.get("/dashboards").unwrap();
            assert_eq!(code, 200, "request {i}");
        }
        assert!(conn.server_closed(), "3rd response must announce close");
        svc.shutdown();
    }

    #[test]
    fn slow_request_events_carry_trace_ids() {
        // Threshold zero: every request is "slow", so the in-memory log
        // captures each one with its trace id.
        let platform = Platform::new();
        platform.create_dashboard("demo").unwrap();
        let log = EventLog::in_memory();
        let opts = ServeOptions {
            slow_request_threshold: Some(Duration::ZERO),
            event_log: log.clone(),
            ..ServeOptions::default()
        };
        let mut svc = serve(Server::new(platform), "127.0.0.1:0", opts).expect("bind");
        let mut conn = ClientConnection::connect(svc.local_addr()).unwrap();
        let (code, _) = conn
            .request_with_headers(
                "GET",
                "/dashboards",
                "",
                &[("X-Trace-Id", "feed00000000beef")],
            )
            .unwrap();
        assert_eq!(code, 200);
        svc.shutdown();
        let lines = log.lines();
        assert!(!lines.is_empty(), "slow-request events recorded");
        let line = &lines[0];
        let doc = shareinsights_tabular::io::json::parse_json(line).unwrap();
        assert_eq!(
            doc.path("event").unwrap().to_value().as_str(),
            Some("slow_request")
        );
        assert_eq!(
            doc.path("path").unwrap().to_value().as_str(),
            Some("/dashboards")
        );
        assert_eq!(doc.path("status").unwrap().to_value().as_int(), Some(200));
        assert_eq!(
            doc.path("trace_id").unwrap().to_value().as_str(),
            Some("feed00000000beef")
        );
        assert!(doc.path("unix_us").unwrap().to_value().as_int().unwrap() > 0);
    }

    #[test]
    fn trace_ids_propagate_through_the_tcp_path() {
        let mut svc = service();
        let mut conn = ClientConnection::connect(svc.local_addr()).unwrap();
        let (code, _) = conn
            .request_with_headers("GET", "/dashboards", "", &[("X-Trace-Id", "ab01")])
            .unwrap();
        assert_eq!(code, 200);
        let (code, body) = conn.get("/trace/ab01").unwrap();
        assert_eq!(code, 200, "{body}");
        assert!(body.contains("\"000000000000ab01\""), "{body}");
        assert!(body.contains("\"GET /dashboards\""), "{body}");
        svc.shutdown();
    }

    #[test]
    fn scraper_thread_fills_system_history_in_both_modes() {
        for mode in [ServeMode::ThreadPerConnection, ServeMode::Reactor] {
            let platform = Platform::new();
            platform.create_dashboard("demo").unwrap();
            let opts = ServeOptions {
                scrape_interval: Some(Duration::from_millis(20)),
                serve_mode: mode,
                ..ServeOptions::default()
            };
            let mut svc = serve(Server::new(platform), "127.0.0.1:0", opts).expect("bind");
            let mut populated = false;
            for _ in 0..200 {
                let (code, body) = blocking_get(svc.local_addr(), "/_system/ds/telemetry").unwrap();
                assert_eq!(code, 200, "{body}");
                if !body.contains("\"total_rows\": 0") {
                    populated = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            assert!(populated, "scraper fills the history ring ({mode:?})");
            svc.shutdown();
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_drops_cleanly() {
        let mut svc = service();
        let addr = svc.local_addr();
        svc.shutdown();
        svc.shutdown();
        drop(svc);
        assert!(TcpStream::connect(addr).is_err() || blocking_get(addr, "/dashboards").is_err());
    }

    #[test]
    fn queue_overflow_returns_503() {
        // One worker, depth-1 queue, and the worker is wedged on a slow
        // client that never sends its head — so the queue fills and the
        // acceptor starts shedding.
        let platform = Platform::new();
        let server = Server::new(platform);
        let opts = ServeOptions {
            workers: 1,
            queue_depth: 1,
            deadline: Duration::from_secs(30),
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(10),
            ..ServeOptions::default()
        };
        let mut svc = serve(server, "127.0.0.1:0", opts).expect("bind");
        let addr = svc.local_addr();
        // Wedge the worker + fill the queue with idle connections.
        let _wedge: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
        std::thread::sleep(Duration::from_millis(100));
        // Subsequent connections are rejected fast.
        let mut saw_503 = false;
        for _ in 0..5 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut out = String::new();
            if s.read_to_string(&mut out).is_ok() && out.starts_with("HTTP/1.1 503") {
                saw_503 = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_503, "expected a 503 from the full queue");
        drop(_wedge);
        svc.shutdown();
    }
}
