//! The TCP front end: a real socket server over the in-process router.
//!
//! A [`std::net::TcpListener`] accepts connections and hands them to a
//! fixed pool of worker threads through a *bounded* queue. When the queue
//! is full the accept loop answers 503 immediately instead of letting the
//! backlog grow (load shedding), and a request that waited in the queue
//! past its deadline is also answered 503 without being parsed. Both
//! conditions are visible in `/stats` under the `(rejected)` and
//! `(deadline)` pseudo-routes.
//!
//! The wire format is a deliberately small HTTP/1.1 subset: request line,
//! headers (only `Content-Length` is interpreted), optional body, and
//! `Connection: close` semantics — one request per connection.

use crate::http::{Method, Request, Response, Status};
use crate::metrics::{ROUTE_DEADLINE, ROUTE_MALFORMED, ROUTE_REJECTED};
use crate::router::Server;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body (flow files are small).
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Tuning for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue depth between the acceptor and the workers; a full
    /// queue means immediate 503s.
    pub queue_depth: usize,
    /// Maximum time a request may wait in the queue before it is answered
    /// 503 instead of being processed.
    pub deadline: Duration,
    /// Socket read/write timeout (guards against stuck clients).
    pub io_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
        }
    }
}

struct Job {
    stream: TcpStream,
    accepted: Instant,
}

/// A running service; dropping it (or calling [`ServiceHandle::shutdown`])
/// stops the acceptor and joins the workers.
pub struct ServiceHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the queue, and join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `server` on a worker pool.
pub fn serve(server: Server, addr: &str, options: ServeOptions) -> io::Result<ServiceHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = sync_channel::<Job>(options.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::with_capacity(options.workers.max(1));
    for _ in 0..options.workers.max(1) {
        let rx = Arc::clone(&rx);
        let server = server.clone();
        let opts = options.clone();
        workers.push(std::thread::spawn(move || worker_loop(&server, &rx, &opts)));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        let server = server.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        match tx.try_send(Job {
                            stream,
                            accepted: Instant::now(),
                        }) {
                            Ok(()) => {}
                            Err(TrySendError::Full(job)) => {
                                server
                                    .platform()
                                    .api_metrics()
                                    .record(ROUTE_REJECTED, false, 0);
                                let resp =
                                    Response::error(Status::ServiceUnavailable, "queue full");
                                let _ = write_response(&job.stream, &resp);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            // tx drops here; workers drain the queue and exit.
        })
    };

    Ok(ServiceHandle {
        addr: bound,
        stop,
        acceptor: Some(acceptor),
        workers,
    })
}

fn worker_loop(server: &Server, rx: &Mutex<Receiver<Job>>, opts: &ServeOptions) {
    loop {
        // Hold the lock only while dequeuing, not while handling.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // acceptor gone and queue drained
        };
        let waited = job.accepted.elapsed();
        if waited > opts.deadline {
            server.platform().api_metrics().record(
                ROUTE_DEADLINE,
                false,
                waited.as_micros() as u64,
            );
            let resp = Response::error(Status::ServiceUnavailable, "deadline exceeded in queue");
            let _ = write_response(&job.stream, &resp);
            continue;
        }
        let _ = job.stream.set_read_timeout(Some(opts.io_timeout));
        let _ = job.stream.set_write_timeout(Some(opts.io_timeout));
        let resp = match read_request(&job.stream) {
            Ok(request) => server.handle(&request),
            Err(message) => {
                server
                    .platform()
                    .api_metrics()
                    .record(ROUTE_MALFORMED, false, 0);
                Response::error(Status::BadRequest, message)
            }
        };
        let _ = write_response(&job.stream, &resp);
    }
}

/// Parse one HTTP/1.1 request off the socket.
fn read_request(mut stream: &TcpStream) -> Result<Request, String> {
    // Read until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err("request head too large".to_string());
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-request".to_string()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read error: {e}")),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| format!("unsupported method in {request_line:?}"))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or_else(|| format!("bad request target in {request_line:?}"))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {:?}", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds limit"));
    }
    // Body: whatever followed the head in the buffer, then the rest.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-body".to_string()),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let request = Request::new(method, target).with_body(body);
    Ok(request)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(mut stream: &TcpStream, resp: &Response) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status.code(),
        resp.status.reason(),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

/// A minimal blocking client for tests, examples and load generation:
/// one request, `Connection: close`, returns `(status code, body)`.
pub fn blocking_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: shareinsights\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"))?;
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let expected: Option<usize> = head
        .lines()
        .find_map(|l| {
            l.split_once(':')
                .filter(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
        })
        .and_then(|(_, v)| v.trim().parse().ok());
    if let Some(len) = expected {
        if payload.len() != len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("truncated body: {} of {len} bytes", payload.len()),
            ));
        }
    }
    Ok((status, payload.to_string()))
}

/// GET shorthand over [`blocking_request`].
pub fn blocking_get(addr: SocketAddr, target: &str) -> io::Result<(u16, String)> {
    blocking_request(addr, "GET", target, "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_core::Platform;

    fn service() -> ServiceHandle {
        let platform = Platform::new();
        platform.upload_data("demo", "t.csv", "k,v\na,1\nb,2\n");
        platform.create_dashboard("demo").unwrap();
        let server = Server::new(platform);
        serve(server, "127.0.0.1:0", ServeOptions::default()).expect("bind")
    }

    #[test]
    fn serves_requests_over_tcp() {
        let mut svc = service();
        let (code, body) = blocking_get(svc.local_addr(), "/dashboards").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "[\"demo\"]");
        let (code, _) = blocking_get(svc.local_addr(), "/nope/nope/nope/nope").unwrap();
        assert_eq!(code, 404);
        svc.shutdown();
    }

    #[test]
    fn put_body_round_trips() {
        let mut svc = service();
        let flow = "D:\n  t: [k, v]\nD.t:\n  source: 't.csv'\n  format: csv\nT:\n  by_k:\n    type: groupby\n    groupby: [k]\nF:\n  +D.out: D.t | T.by_k\n";
        let (code, body) =
            blocking_request(svc.local_addr(), "PUT", "/dashboards/demo/flow", flow).unwrap();
        assert_eq!(code, 200, "{body}");
        let (code, body) =
            blocking_request(svc.local_addr(), "POST", "/dashboards/demo/run", "").unwrap();
        assert_eq!(code, 200, "{body}");
        let (code, body) = blocking_get(svc.local_addr(), "/demo/ds/out").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"total_rows\": 2"), "{body}");
        svc.shutdown();
    }

    #[test]
    fn malformed_requests_get_400() {
        let svc = service();
        let mut stream = TcpStream::connect(svc.local_addr()).unwrap();
        stream.write_all(b"NONSENSE /x SMTP/9\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400 Bad Request"), "{out}");
    }

    #[test]
    fn shutdown_is_idempotent_and_drops_cleanly() {
        let mut svc = service();
        let addr = svc.local_addr();
        svc.shutdown();
        svc.shutdown();
        drop(svc);
        assert!(TcpStream::connect(addr).is_err() || blocking_get(addr, "/dashboards").is_err());
    }

    #[test]
    fn queue_overflow_returns_503() {
        // One worker, depth-1 queue, and the worker is wedged on a slow
        // client that never sends its head — so the queue fills and the
        // acceptor starts shedding.
        let platform = Platform::new();
        let server = Server::new(platform);
        let opts = ServeOptions {
            workers: 1,
            queue_depth: 1,
            deadline: Duration::from_secs(30),
            io_timeout: Duration::from_secs(10),
        };
        let mut svc = serve(server, "127.0.0.1:0", opts).expect("bind");
        let addr = svc.local_addr();
        // Wedge the worker + fill the queue with idle connections.
        let _wedge: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
        std::thread::sleep(Duration::from_millis(100));
        // Subsequent connections are rejected fast.
        let mut saw_503 = false;
        for _ in 0..5 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut out = String::new();
            if s.read_to_string(&mut out).is_ok() && out.starts_with("HTTP/1.1 503") {
                saw_503 = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(saw_503, "expected a 503 from the full queue");
        drop(_wedge);
        svc.shutdown();
    }
}
