//! Minimal in-process HTTP types.

use std::collections::BTreeMap;
use std::fmt;

/// Request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
}

impl Method {
    /// Parse an HTTP method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        })
    }
}

/// Response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200
    Ok,
    /// 201
    Created,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 405 — the path exists but not for this method.
    MethodNotAllowed,
    /// 408 — the client stalled mid-request past the socket timeout.
    RequestTimeout,
    /// 409
    Conflict,
    /// 413 — the request body outgrew the configured cap (announced by
    /// Content-Length, or detected mid-transfer on a streamed body).
    PayloadTooLarge,
    /// 422 — flow-file level errors (compile/validate).
    Unprocessable,
    /// 431 — the request head outgrew the per-connection cap.
    RequestHeaderFieldsTooLarge,
    /// 503 — worker queue full or per-request deadline exceeded.
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::RequestTimeout => 408,
            Status::Conflict => 409,
            Status::PayloadTooLarge => 413,
            Status::Unprocessable => 422,
            Status::RequestHeaderFieldsTooLarge => 431,
            Status::ServiceUnavailable => 503,
        }
    }

    /// HTTP/1.1 reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::BadRequest => "Bad Request",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::RequestTimeout => "Request Timeout",
            Status::Conflict => "Conflict",
            Status::PayloadTooLarge => "Payload Too Large",
            Status::Unprocessable => "Unprocessable Entity",
            Status::RequestHeaderFieldsTooLarge => "Request Header Fields Too Large",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// An in-process request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Path (no query string).
    pub path: String,
    /// Parsed query parameters.
    pub query: BTreeMap<String, String>,
    /// Request headers, keys lowercased (`x-trace-id`, `content-length`…).
    pub headers: BTreeMap<String, String>,
    /// Body (flow-file text for saves).
    pub body: String,
}

impl Request {
    /// Build from a URL that may carry a query string.
    pub fn new(method: Method, url: &str) -> Request {
        let (path, query_str) = match url.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (url, None),
        };
        let mut query = BTreeMap::new();
        if let Some(q) = query_str {
            for pair in q.split('&') {
                if let Some((k, v)) = pair.split_once('=') {
                    query.insert(k.to_string(), v.to_string());
                } else if !pair.is_empty() {
                    query.insert(pair.to_string(), String::new());
                }
            }
        }
        Request {
            method,
            path: path.to_string(),
            query,
            headers: BTreeMap::new(),
            body: String::new(),
        }
    }

    /// GET shorthand.
    pub fn get(url: &str) -> Request {
        Request::new(Method::Get, url)
    }

    /// Attach a body.
    pub fn with_body(mut self, body: impl Into<String>) -> Request {
        self.body = body.into();
        self
    }

    /// Attach a header (key lowercased).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.insert(name.to_ascii_lowercase(), value.into());
        self
    }

    /// Header lookup, case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Path segments (empty segments dropped).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Query parameter as usize.
    pub fn query_usize(&self, key: &str) -> Option<usize> {
        self.query.get(key).and_then(|v| v.parse().ok())
    }
}

/// An in-process response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status.
    pub status: Status,
    /// Body (JSON or plain text).
    pub body: String,
    /// Content type.
    pub content_type: &'static str,
}

impl Response {
    /// 200 JSON.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: Status::Ok,
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// 200 text.
    pub fn text(body: impl Into<String>) -> Response {
        Response {
            status: Status::Ok,
            body: body.into(),
            content_type: "text/plain",
        }
    }

    /// Error with a status.
    pub fn error(status: Status, message: impl Into<String>) -> Response {
        Response {
            status,
            body: format!("{{\"error\": {}}}", crate::json::quote(&message.into())),
            content_type: "application/json",
        }
    }

    /// True for 2xx.
    pub fn is_ok(&self) -> bool {
        self.status.code() < 300
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing() {
        let r = Request::get("/apache/ds/projects?limit=10&offset=5&flag");
        assert_eq!(r.path, "/apache/ds/projects");
        assert_eq!(r.segments(), vec!["apache", "ds", "projects"]);
        assert_eq!(r.query_usize("limit"), Some(10));
        assert_eq!(r.query_usize("offset"), Some(5));
        assert_eq!(r.query.get("flag").map(String::as_str), Some(""));
        assert_eq!(r.query_usize("missing"), None);
    }

    #[test]
    fn headers_are_case_insensitive() {
        let r = Request::get("/stats").with_header("X-Trace-Id", "10adc0de00000001");
        assert_eq!(r.header("x-trace-id"), Some("10adc0de00000001"));
        assert_eq!(r.header("X-TRACE-ID"), Some("10adc0de00000001"));
        assert_eq!(r.header("x-other"), None);
    }

    #[test]
    fn statuses_and_errors() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::Unprocessable.code(), 422);
        let e = Response::error(Status::NotFound, "no dataset 'x'");
        assert!(!e.is_ok());
        assert!(e.body.contains("no dataset"));
        assert!(Response::json("{}").is_ok());
        assert_eq!(Method::Put.to_string(), "PUT");
    }
}
