//! # shareinsights-server
//!
//! The development/data REST surface of §4.3–4.4, as an in-process router
//! (deterministic and offline; the URL grammar, status codes and payload
//! shapes are what the paper specifies):
//!
//! | route | paper reference |
//! |---|---|
//! | `GET /dashboards` | dashboard listing |
//! | `POST /dashboards/<name>/create` | §4.3.1 create-by-URL |
//! | `PUT /dashboards/<name>/flow` | editor save |
//! | `GET /dashboards/<name>/flow` | editor load |
//! | `POST /dashboards/<name>/run` | execute the pipeline |
//! | `GET /dashboards/<name>/explore` | §4.4 data explorer (headless mode, figure 29) |
//! | `GET /<dashboard>/ds` | figure 27: endpoint data listing |
//! | `GET /<dashboard>/ds/<dataset>` | figure 28: browse endpoint data (`?limit=&offset=`) |
//! | `GET /<dashboard>/ds/<dataset>/groupby/<col>/<agg>/<col>` | figure 30: ad-hoc query |
//!
//! Ad-hoc query paths compose left to right:
//! `/ds/sales/filter/region/north/groupby/brand/sum/revenue/limit/10`.

pub mod http;
pub mod json;
pub mod query;
pub mod router;

pub use http::{Method, Request, Response, Status};
pub use json::table_to_json;
pub use router::Server;
