//! # shareinsights-server
//!
//! The development/data REST surface of §4.3–4.4, as an in-process router
//! (deterministic and offline; the URL grammar, status codes and payload
//! shapes are what the paper specifies):
//!
//! | route | paper reference |
//! |---|---|
//! | `GET /dashboards` | dashboard listing |
//! | `POST /dashboards/<name>/create` | §4.3.1 create-by-URL |
//! | `PUT /dashboards/<name>/flow` | editor save |
//! | `GET /dashboards/<name>/flow` | editor load |
//! | `POST /dashboards/<name>/run` | execute the pipeline |
//! | `GET /dashboards/<name>/explore` | §4.4 data explorer (headless mode, figure 29) |
//! | `GET /<dashboard>/ds` | figure 27: endpoint data listing |
//! | `GET /<dashboard>/ds/<dataset>` | figure 28: browse endpoint data (`?limit=&offset=`) |
//! | `GET /<dashboard>/ds/<dataset>/groupby/<col>/<agg>/<col>` | figure 30: ad-hoc query |
//! | `POST /dashboards/<name>/stream/start` | start a continuous execution context |
//! | `POST /dashboards/<name>/stream/push/<source>` | push one CSV micro-batch |
//! | `GET /<dashboard>/ds/<dataset>/subscribe` | SSE stream of generation deltas |
//! | `GET /stats` | per-route counters/latency + query-cache + operator stats |
//! | `GET /metrics` | Prometheus text exposition of the same registry |
//! | `GET /trace/recent` | recent span trees (`?limit=`) |
//! | `GET /trace/<id>` | one trace by hex id (`X-Trace-Id` to set it) |
//!
//! [`serve()`] puts the router behind a real `TcpListener` with a bounded
//! worker pool (see [`serve::ServeOptions`]). Connections are persistent
//! (HTTP/1.1 keep-alive, bounded per-connection request counts and idle
//! windows); [`ClientConnection`] is the matching persistent client. Query
//! results are cached in a generation-stamped, hash-sharded [`QueryCache`]
//! invalidated by dashboard runs and publishes.
//!
//! Ad-hoc query paths compose left to right:
//! `/ds/sales/filter/region/north/groupby/brand/sum/revenue/limit/10`.

pub mod cache;
pub mod http;
pub mod ingest;
pub mod json;
pub mod metrics;
pub mod query;
pub mod reactor;
pub mod router;
pub mod serve;
pub mod shard;
pub mod sql;
pub mod stream;
pub mod traces;
pub mod wire;

pub use cache::{
    CacheStats, QueryCache, ResultCache, DEFAULT_CACHE_SHARDS, DEFAULT_RESULT_CACHE_ENTRIES,
};
pub use http::{Method, Request, Response, Status};
pub use json::table_to_json;
pub use router::{Handled, Server};
pub use serve::{
    blocking_get, blocking_request, serve, ClientConnection, ServeMode, ServeOptions,
    ServiceHandle, SseSubscriber,
};
pub use shard::{plan::ScatterPlan, ShardSet};
pub use stream::{StreamHub, Subscription, SubscriptionEnd};
pub use traces::{trace_json, trace_list_json};
pub use wire::{dechunk, sse_frame, sse_head, ResponseStream, SseEvent, SseParser, WireLimits};
