//! Subscriber hub for live-flow SSE streams.
//!
//! The router publishes pre-framed generation-delta bytes here once per
//! stream tick; the hub fans them out to every subscriber of the touched
//! `dashboard/dataset` pair. Delivery is pull-based so both serve modes
//! work from the same state:
//!
//! * the blocking thread-per-connection writer parks on the
//!   subscription's condvar ([`Subscription::wait_frames`]) and writes
//!   whatever it drains;
//! * the epoll reactor registers a notifier ([`StreamHub::set_notifier`])
//!   that pokes its waker pipe, then drains ready subscriptions with
//!   [`Subscription::try_take`] on the event-loop thread.
//!
//! Backpressure is per subscriber and byte-bounded: a reader that cannot
//! keep up accumulates queued frames until [`MAX_QUEUED_BYTES`], at which
//! point the hub *evicts* the subscription — the stream is closed rather
//! than buffering without bound or stalling the publisher. Slow readers
//! lose their stream, never their server. The cap bounds backlog, not
//! frame size: one oversized frame into an empty queue is delivered, so
//! large initial snapshots never evict a subscriber that is keeping up.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Per-subscriber cap on queued-but-unwritten frame bytes. Crossing it
/// marks the subscription evicted and drops the queue.
pub const MAX_QUEUED_BYTES: usize = 256 * 1024;

/// Why a drained subscription has no more frames coming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionEnd {
    /// Still live; more frames may arrive.
    Open,
    /// Closed deliberately (server shutdown or stream stop).
    Closed,
    /// Evicted for falling behind [`MAX_QUEUED_BYTES`].
    Evicted,
}

#[derive(Debug, Default)]
struct SubState {
    /// Pre-framed wire bytes awaiting the writer, FIFO.
    frames: Vec<Vec<u8>>,
    queued_bytes: usize,
    closed: bool,
    evicted: bool,
}

/// One subscriber's handle: a bounded frame queue plus a condvar the
/// blocking writer parks on.
#[derive(Debug)]
pub struct Subscription {
    /// `dashboard/dataset` key this subscription listens to.
    pub key: String,
    state: Mutex<SubState>,
    ready: Condvar,
}

impl Subscription {
    fn new(key: String) -> Self {
        Subscription {
            key,
            state: Mutex::new(SubState::default()),
            ready: Condvar::new(),
        }
    }

    /// Queue one pre-framed chunk of wire bytes (the router uses this
    /// directly for a new subscriber's initial snapshot frame; ticks go
    /// through [`StreamHub::publish`]). Returns false when the
    /// subscription can no longer accept frames (closed or just evicted
    /// for exceeding the byte cap). The cap bounds *backlog*, not frame
    /// size: a frame offered to an empty queue is always accepted — the
    /// writer drains it immediately — so a snapshot larger than the cap
    /// (a full `_system` telemetry ring, a wide endpoint) starts the
    /// stream instead of evicting the brand-new subscriber.
    pub fn offer(&self, frame: &[u8]) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.closed || st.evicted {
            return false;
        }
        if !st.frames.is_empty() && st.queued_bytes + frame.len() > MAX_QUEUED_BYTES {
            // Slow reader: drop the whole queue and end the stream.
            st.evicted = true;
            st.frames.clear();
            st.queued_bytes = 0;
            self.ready.notify_all();
            return false;
        }
        st.queued_bytes += frame.len();
        st.frames.push(frame.to_vec());
        self.ready.notify_all();
        true
    }

    /// Drain queued frames without blocking (reactor path).
    pub fn try_take(&self) -> (Vec<Vec<u8>>, SubscriptionEnd) {
        let mut st = self.state.lock().unwrap();
        let frames = std::mem::take(&mut st.frames);
        st.queued_bytes = 0;
        (frames, end_of(&st))
    }

    /// Park until frames arrive, the stream ends, or `timeout` elapses
    /// (blocking thread-mode path; the timeout bounds how long a writer
    /// goes without probing its socket for client disconnect).
    pub fn wait_frames(&self, timeout: Duration) -> (Vec<Vec<u8>>, SubscriptionEnd) {
        let mut st = self.state.lock().unwrap();
        if st.frames.is_empty() && !st.closed && !st.evicted {
            let (guard, _) = self.ready.wait_timeout(st, timeout).unwrap();
            st = guard;
        }
        let frames = std::mem::take(&mut st.frames);
        st.queued_bytes = 0;
        (frames, end_of(&st))
    }

    /// End the stream deliberately; the parked writer wakes and sees
    /// [`SubscriptionEnd::Closed`].
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        st.frames.clear();
        st.queued_bytes = 0;
        self.ready.notify_all();
    }

    /// Bytes queued and not yet drained by the writer.
    pub fn queued_bytes(&self) -> usize {
        self.state.lock().unwrap().queued_bytes
    }
}

fn end_of(st: &SubState) -> SubscriptionEnd {
    if st.evicted {
        SubscriptionEnd::Evicted
    } else if st.closed {
        SubscriptionEnd::Closed
    } else {
        SubscriptionEnd::Open
    }
}

/// Result of publishing one frame to a dataset's subscribers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishReport {
    /// Subscribers the frame was queued for.
    pub delivered: usize,
    /// Subscribers evicted by this frame for being over the byte cap.
    pub evicted: usize,
}

/// Fan-out registry keyed by `dashboard/dataset`.
#[derive(Default)]
pub struct StreamHub {
    subs: Mutex<HashMap<String, Vec<Arc<Subscription>>>>,
    /// Called after any publish that queued at least one frame — the
    /// reactor installs its waker poke here; thread mode needs none
    /// (writers park on their own condvar).
    notifier: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for StreamHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHub")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

impl StreamHub {
    /// Empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the publish notifier (reactor waker). Replaces any prior.
    pub fn set_notifier(&self, f: Box<dyn Fn() + Send + Sync>) {
        *self.notifier.lock().unwrap() = Some(f);
    }

    /// Register a subscriber for `dashboard/dataset` frames.
    pub fn subscribe(&self, dashboard: &str, dataset: &str) -> Arc<Subscription> {
        // The id keeps Arc identity debuggable; delivery is key-based.
        self.next_id.fetch_add(1, Ordering::Relaxed);
        let key = format!("{dashboard}/{dataset}");
        let sub = Arc::new(Subscription::new(key.clone()));
        self.subs
            .lock()
            .unwrap()
            .entry(key)
            .or_default()
            .push(Arc::clone(&sub));
        sub
    }

    /// Drop a subscription from the registry (writer finished with it).
    pub fn unsubscribe(&self, sub: &Arc<Subscription>) {
        let mut subs = self.subs.lock().unwrap();
        if let Some(list) = subs.get_mut(&sub.key) {
            list.retain(|s| !Arc::ptr_eq(s, sub));
            if list.is_empty() {
                subs.remove(&sub.key);
            }
        }
    }

    /// Queue `frame` for every subscriber of `dashboard/dataset`,
    /// evicting any that would exceed their byte cap. Subscribers that
    /// were already closed/evicted are pruned from the registry.
    pub fn publish(&self, dashboard: &str, dataset: &str, frame: &[u8]) -> PublishReport {
        let key = format!("{dashboard}/{dataset}");
        let mut report = PublishReport::default();
        {
            let mut subs = self.subs.lock().unwrap();
            let Some(list) = subs.get_mut(&key) else {
                return report;
            };
            list.retain(|sub| {
                let was_live = {
                    let st = sub.state.lock().unwrap();
                    !st.closed && !st.evicted
                };
                if !was_live {
                    return false;
                }
                if sub.offer(frame) {
                    report.delivered += 1;
                    true
                } else {
                    // offer() only fails live subscriptions by evicting.
                    report.evicted += 1;
                    false
                }
            });
            if list.is_empty() {
                subs.remove(&key);
            }
        }
        if report.delivered > 0 {
            if let Some(f) = self.notifier.lock().unwrap().as_ref() {
                f();
            }
        }
        report
    }

    /// Close every subscription (server shutdown).
    pub fn close_all(&self) {
        let subs = std::mem::take(&mut *self.subs.lock().unwrap());
        for (_, list) in subs {
            for sub in list {
                sub.close();
            }
        }
    }

    /// Currently registered subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Whether anyone is subscribed to `dashboard/dataset`. Publishers
    /// with expensive frames (the telemetry scraper serialising its
    /// per-tick delta) check this first and skip the serialisation
    /// entirely when nobody is listening.
    pub fn has_subscribers(&self, dashboard: &str, dataset: &str) -> bool {
        let key = format!("{dashboard}/{dataset}");
        self.subs
            .lock()
            .unwrap()
            .get(&key)
            .is_some_and(|list| !list.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn publish_fans_out_to_matching_subscribers_only() {
        let hub = StreamHub::new();
        let a = hub.subscribe("dash", "sales");
        let b = hub.subscribe("dash", "sales");
        let other = hub.subscribe("dash", "inventory");
        assert_eq!(hub.subscriber_count(), 3);

        let report = hub.publish("dash", "sales", b"frame-1");
        assert_eq!(
            report,
            PublishReport {
                delivered: 2,
                evicted: 0
            }
        );
        let (frames, end) = a.try_take();
        assert_eq!(frames, vec![b"frame-1".to_vec()]);
        assert_eq!(end, SubscriptionEnd::Open);
        let (frames, _) = b.try_take();
        assert_eq!(frames.len(), 1);
        let (frames, _) = other.try_take();
        assert!(frames.is_empty(), "different dataset");

        hub.unsubscribe(&a);
        hub.unsubscribe(&b);
        hub.unsubscribe(&other);
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn wait_frames_wakes_on_publish_and_on_close() {
        let hub = Arc::new(StreamHub::new());
        let sub = hub.subscribe("d", "x");
        let writer = {
            let sub = Arc::clone(&sub);
            thread::spawn(move || sub.wait_frames(Duration::from_secs(5)))
        };
        // Give the writer a moment to park, then publish.
        thread::sleep(Duration::from_millis(20));
        hub.publish("d", "x", b"tick");
        let (frames, end) = writer.join().unwrap();
        assert_eq!(frames, vec![b"tick".to_vec()]);
        assert_eq!(end, SubscriptionEnd::Open);

        let writer = {
            let sub = Arc::clone(&sub);
            thread::spawn(move || sub.wait_frames(Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        sub.close();
        let (frames, end) = writer.join().unwrap();
        assert!(frames.is_empty());
        assert_eq!(end, SubscriptionEnd::Closed);
    }

    #[test]
    fn slow_reader_grows_bounded_then_evicts() {
        let hub = StreamHub::new();
        let sub = hub.subscribe("d", "x");
        // A reader that never drains: queued bytes grow, stay bounded by
        // the cap, then the subscription is evicted and the queue drops.
        let frame = vec![b'z'; 64 * 1024];
        for i in 0..4 {
            let report = hub.publish("d", "x", &frame);
            assert_eq!(report.delivered, 1, "publish {i} under the cap");
            assert!(sub.queued_bytes() <= MAX_QUEUED_BYTES);
        }
        assert_eq!(sub.queued_bytes(), MAX_QUEUED_BYTES);
        // One more byte over the cap: evicted, queue cleared, pruned.
        let report = hub.publish("d", "x", b"overflow");
        assert_eq!(
            report,
            PublishReport {
                delivered: 0,
                evicted: 1
            }
        );
        assert_eq!(sub.queued_bytes(), 0);
        let (frames, end) = sub.try_take();
        assert!(frames.is_empty(), "evicted queues are dropped, not drained");
        assert_eq!(end, SubscriptionEnd::Evicted);
        assert_eq!(hub.subscriber_count(), 0, "evicted subs are pruned");
        // Publishing to a fully evicted key is a no-op.
        assert_eq!(hub.publish("d", "x", b"late"), PublishReport::default());
    }

    #[test]
    fn oversized_frame_into_empty_queue_is_delivered_not_evicted() {
        let hub = StreamHub::new();
        let sub = hub.subscribe("d", "x");
        // A snapshot bigger than the whole cap (a full telemetry ring, a
        // wide endpoint) must start the stream, not evict the brand-new
        // subscriber: the cap bounds backlog, not frame size.
        let snapshot = vec![b'z'; MAX_QUEUED_BYTES + 1];
        assert!(sub.offer(&snapshot), "empty queue accepts any frame size");
        let (frames, end) = sub.try_take();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].len(), MAX_QUEUED_BYTES + 1);
        assert_eq!(end, SubscriptionEnd::Open);
        // Drained, later ticks flow normally.
        assert!(sub.offer(b"tick"));
        // An oversized frame behind an undrained backlog still evicts.
        let report = hub.publish("d", "x", &snapshot);
        assert_eq!(
            report,
            PublishReport {
                delivered: 0,
                evicted: 1
            }
        );
    }

    #[test]
    fn notifier_fires_only_when_frames_were_queued() {
        let hub = StreamHub::new();
        let pokes = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&pokes);
        hub.set_notifier(Box::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        hub.publish("d", "x", b"nobody-listening");
        assert_eq!(pokes.load(Ordering::SeqCst), 0);
        let sub = hub.subscribe("d", "x");
        hub.publish("d", "x", b"tick");
        assert_eq!(pokes.load(Ordering::SeqCst), 1);
        sub.close();
        hub.publish("d", "x", b"tock");
        assert_eq!(pokes.load(Ordering::SeqCst), 1, "closed sub queues nothing");
    }

    #[test]
    fn close_all_ends_every_stream() {
        let hub = StreamHub::new();
        let a = hub.subscribe("d", "x");
        let b = hub.subscribe("e", "y");
        hub.close_all();
        assert_eq!(a.try_take().1, SubscriptionEnd::Closed);
        assert_eq!(b.try_take().1, SubscriptionEnd::Closed);
        assert_eq!(hub.subscriber_count(), 0);
    }
}
