//! The ad-hoc query language over endpoint data (§4.4, figure 30).
//!
//! The paper's example URL is
//! `/ds/<dataset>/groupby/<column>/<aggregate-function>/<column>`. The
//! grammar here generalises that to a left-to-right pipeline of path
//! segments:
//!
//! ```text
//! ops      := op*
//! op       := 'groupby' '/' col '/' aggfn '/' col
//!           | 'filter' '/' col '/' value
//!           | 'sort' '/' col '/' ('asc'|'desc')
//!           | 'distinct' '/' col
//!           | 'limit' '/' n
//! ```

use shareinsights_tabular::agg::AggKind;
use shareinsights_tabular::expr::Expr;
use shareinsights_tabular::ops::{
    distinct, filter_by_expr, filter_by_values, groupby, join, sort, sort_limit, AggregateSpec,
    FilterByValues, GroupBy, JoinCondition, JoinSpec, SortKey, SortOrder,
};
use shareinsights_tabular::{IndexedTable, Table, Value};

/// A parsed query operation.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOp {
    /// `groupby/<col>/<agg>/<col>`
    GroupBy {
        /// Grouping column.
        key: String,
        /// Aggregate function.
        agg: AggKind,
        /// Aggregated column.
        apply_on: String,
    },
    /// `filter/<col>/<value>`
    Filter {
        /// Column.
        column: String,
        /// Value (type-inferred).
        value: Value,
    },
    /// `sort/<col>/<asc|desc>`
    Sort {
        /// Column.
        column: String,
        /// Direction.
        order: SortOrder,
    },
    /// `distinct/<col>`
    Distinct(String),
    /// `limit/<n>`
    Limit(usize),
    /// SQL `WHERE` predicate that is richer than a single equality
    /// (boolean logic, ranges, `IN`, `IS NULL`). Unreachable from the
    /// path-segment grammar.
    FilterExpr(Expr),
    /// SQL `GROUP BY` with multiple keys and/or aggregates (or aliased /
    /// global aggregates). Unreachable from the path-segment grammar.
    GroupByMulti(GroupBy),
    /// SQL `ORDER BY` with multiple keys.
    SortMulti(Vec<SortKey>),
    /// SQL `SELECT DISTINCT`: whole-row dedup (empty) or key-subset.
    DistinctRows(Vec<String>),
    /// SQL projection: column selection in select-list order.
    Project(Vec<String>),
    /// SQL `OFFSET`: skip the first `n` rows.
    Offset(usize),
    /// SQL inner equi-join against a resolved right-side snapshot.
    Join(JoinOp),
    /// Fused `sort | limit`: the first `n` rows under `keys` (original row
    /// order breaking ties), computed by bounded selection instead of a
    /// full sort. Synthesized by the scatter planner for shard-local
    /// pipelines — never produced by either query language's parser.
    TopN {
        /// Ordering keys.
        keys: Vec<SortKey>,
        /// Rows kept.
        n: usize,
    },
}

/// A resolved SQL join: the right table is materialised at lowering time
/// so the op pipeline stays a pure function of its inputs.
#[derive(Debug, Clone)]
pub struct JoinOp {
    /// Right-side endpoint name (identity for cache keys).
    pub right_name: String,
    /// Right-side snapshot.
    pub right: Table,
    /// Key column on the left.
    pub left_on: String,
    /// Key column on the right.
    pub right_on: String,
}

impl PartialEq for JoinOp {
    fn eq(&self, other: &Self) -> bool {
        // Snapshot identity is the endpoint name: the generation stamp on
        // every cache key already invalidates on data changes.
        self.right_name == other.right_name
            && self.left_on == other.left_on
            && self.right_on == other.right_on
    }
}

/// Parse the path segments following the dataset name.
pub fn parse_ops(segments: &[&str]) -> Result<Vec<QueryOp>, String> {
    let mut ops = Vec::new();
    let mut i = 0;
    while i < segments.len() {
        match segments[i] {
            "groupby" => {
                if i + 3 >= segments.len() && segments.len() < i + 4 {
                    return Err("groupby needs /groupby/<column>/<agg>/<column>".into());
                }
                let key = segments.get(i + 1).ok_or("groupby missing column")?;
                let aggname = segments.get(i + 2).ok_or("groupby missing aggregate")?;
                let apply_on = segments.get(i + 3).ok_or("groupby missing target column")?;
                let agg = AggKind::parse(aggname)
                    .ok_or_else(|| format!("unknown aggregate function '{aggname}'"))?;
                ops.push(QueryOp::GroupBy {
                    key: key.to_string(),
                    agg,
                    apply_on: apply_on.to_string(),
                });
                i += 4;
            }
            "filter" => {
                let column = segments.get(i + 1).ok_or("filter missing column")?;
                let value = segments.get(i + 2).ok_or("filter missing value")?;
                ops.push(QueryOp::Filter {
                    column: column.to_string(),
                    value: Value::infer(value),
                });
                i += 3;
            }
            "sort" => {
                let column = segments.get(i + 1).ok_or("sort missing column")?;
                let dir = segments.get(i + 2).ok_or("sort missing direction")?;
                let order =
                    SortOrder::parse(dir).ok_or_else(|| format!("bad sort direction '{dir}'"))?;
                ops.push(QueryOp::Sort {
                    column: column.to_string(),
                    order,
                });
                i += 3;
            }
            "distinct" => {
                let column = segments.get(i + 1).ok_or("distinct missing column")?;
                ops.push(QueryOp::Distinct(column.to_string()));
                i += 2;
            }
            "limit" => {
                let n = segments.get(i + 1).ok_or("limit missing count")?;
                let n: usize = n.parse().map_err(|_| format!("bad limit '{n}'"))?;
                ops.push(QueryOp::Limit(n));
                i += 2;
            }
            other => return Err(format!("unknown query operation '{other}'")),
        }
    }
    Ok(ops)
}

pub(crate) fn groupby_config(key: &str, agg: AggKind, apply_on: &str) -> GroupBy {
    let out_field = format!("{}_{}", agg.name(), apply_on);
    GroupBy::with_aggregates(
        &[key],
        vec![AggregateSpec::new(agg, apply_on.to_string(), out_field)],
    )
}

/// Apply one operation via the scan kernels.
fn apply_op(current: &Table, op: &QueryOp) -> Result<Table, String> {
    Ok(match op {
        QueryOp::GroupBy { key, agg, apply_on } => {
            let cfg = groupby_config(key, *agg, apply_on);
            groupby(current, &cfg).map_err(|e| e.to_string())?
        }
        QueryOp::Filter { column, value } => {
            let spec = FilterByValues::single(column.clone(), vec![value.clone()]);
            filter_by_values(current, &spec).map_err(|e| e.to_string())?
        }
        QueryOp::Sort { column, order } => {
            let key = SortKey {
                column: column.clone(),
                order: *order,
            };
            sort(current, &[key]).map_err(|e| e.to_string())?
        }
        QueryOp::Distinct(column) => {
            distinct(current, std::slice::from_ref(column)).map_err(|e| e.to_string())?
        }
        QueryOp::Limit(n) => current.limit(*n),
        QueryOp::FilterExpr(e) => filter_by_expr(current, e).map_err(|e| e.to_string())?,
        QueryOp::GroupByMulti(cfg) => groupby(current, cfg).map_err(|e| e.to_string())?,
        QueryOp::SortMulti(keys) => sort(current, keys).map_err(|e| e.to_string())?,
        QueryOp::DistinctRows(cols) => distinct(current, cols).map_err(|e| e.to_string())?,
        QueryOp::Project(cols) => current.project(cols).map_err(|e| e.to_string())?,
        QueryOp::Offset(n) => current.slice(*n, current.num_rows().saturating_sub(*n)),
        QueryOp::Join(j) => {
            let spec = JoinSpec {
                left_keys: vec![j.left_on.clone()],
                right_keys: vec![j.right_on.clone()],
                condition: JoinCondition::Inner,
                projection: Vec::new(),
            };
            join(current, &j.right, &spec).map_err(|e| e.to_string())?
        }
        QueryOp::TopN { keys, n } => sort_limit(current, keys, *n).map_err(|e| e.to_string())?,
    })
}

/// Try to run one operation against the indexed snapshot. `None` means the
/// index doesn't cover it — run the scan kernel instead.
fn try_indexed_op(indexed: &IndexedTable, op: &QueryOp) -> Option<Table> {
    match op {
        QueryOp::GroupBy { key, agg, apply_on } => {
            indexed.groupby(&groupby_config(key, *agg, apply_on))
        }
        QueryOp::Filter { column, value } => {
            let spec = FilterByValues::single(column.clone(), vec![value.clone()]);
            indexed.filter_by_values(&spec)
        }
        QueryOp::Sort { column, order } => {
            let key = SortKey {
                column: column.clone(),
                order: *order,
            };
            indexed.sort(&[key])
        }
        // The indexed kernels are decline-based: richer SQL shapes are
        // offered where an accelerated kernel exists and fall back to the
        // scan path (differentially pinned byte-identical) otherwise.
        QueryOp::GroupByMulti(cfg) => indexed.groupby(cfg),
        QueryOp::SortMulti(keys) => indexed.sort(keys),
        QueryOp::Distinct(_)
        | QueryOp::Limit(_)
        | QueryOp::FilterExpr(_)
        | QueryOp::DistinctRows(_)
        | QueryOp::Project(_)
        | QueryOp::Offset(_)
        | QueryOp::Join(_)
        | QueryOp::TopN { .. } => None,
    }
}

/// Evaluate a query pipeline against a dataset snapshot.
pub fn run_query(table: &Table, ops: &[QueryOp]) -> Result<Table, String> {
    let mut current = table.clone();
    for op in ops {
        current = apply_op(&current, op)?;
    }
    Ok(current)
}

/// Evaluate a query pipeline against an indexed snapshot: the first
/// operation runs through an accelerated kernel when a per-column index
/// covers it (subsequent operations see a derived table, which has no
/// index), falling back to the scan kernels otherwise. Returns the result
/// and whether any operation took the indexed path.
pub fn run_query_indexed(indexed: &IndexedTable, ops: &[QueryOp]) -> Result<(Table, bool), String> {
    let mut current: Option<Table> = None;
    let mut index_hit = false;
    for (i, op) in ops.iter().enumerate() {
        let fast = if i == 0 {
            try_indexed_op(indexed, op)
        } else {
            None
        };
        current = Some(match fast {
            Some(t) => {
                index_hit = true;
                t
            }
            None => apply_op(current.as_ref().unwrap_or(indexed.table()), op)?,
        });
    }
    Ok((
        current.unwrap_or_else(|| indexed.table().clone()),
        index_hit,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shareinsights_tabular::row;

    fn projects() -> Table {
        Table::from_rows(
            &["category", "project", "stars"],
            &[
                row!["big-data", "pig", 10i64],
                row!["big-data", "spark", 40i64],
                row!["web", "tomcat", 20i64],
                row!["web", "httpd", 15i64],
                row!["web", "struts", 5i64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure30_groupby_count() {
        // /ds/projects/groupby/category/count/project
        let ops = parse_ops(&["groupby", "category", "count", "project"]).unwrap();
        let out = run_query(&projects(), &ops).unwrap();
        assert_eq!(out.schema().names(), vec!["category", "count_project"]);
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "count_project").unwrap().as_int(), Some(2));
        assert_eq!(out.value(1, "count_project").unwrap().as_int(), Some(3));
    }

    #[test]
    fn chained_pipeline() {
        let ops = parse_ops(&[
            "filter", "category", "web", "groupby", "category", "sum", "stars", "limit", "1",
        ])
        .unwrap();
        let out = run_query(&projects(), &ops).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "sum_stars").unwrap().as_int(), Some(40));
    }

    #[test]
    fn sort_and_distinct() {
        let ops = parse_ops(&["sort", "stars", "desc", "limit", "2"]).unwrap();
        let out = run_query(&projects(), &ops).unwrap();
        assert_eq!(out.value(0, "project").unwrap().to_string(), "spark");

        let ops = parse_ops(&["distinct", "category"]).unwrap();
        let out = run_query(&projects(), &ops).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn numeric_filter_values_infer() {
        let ops = parse_ops(&["filter", "stars", "20"]).unwrap();
        let out = run_query(&projects(), &ops).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "project").unwrap().to_string(), "tomcat");
    }

    #[test]
    fn parse_errors() {
        assert!(parse_ops(&["groupby", "a"]).is_err());
        assert!(parse_ops(&["groupby", "a", "bogus", "b"])
            .unwrap_err()
            .contains("unknown aggregate"));
        assert!(parse_ops(&["warp", "9"])
            .unwrap_err()
            .contains("unknown query operation"));
        assert!(parse_ops(&["limit", "abc"]).is_err());
        assert!(parse_ops(&["sort", "a", "sideways"]).is_err());
    }

    #[test]
    fn runtime_errors_name_columns() {
        let ops = parse_ops(&["groupby", "ghost", "count", "project"]).unwrap();
        let err = run_query(&projects(), &ops).unwrap_err();
        assert!(err.contains("ghost"));
    }

    #[test]
    fn empty_ops_is_identity() {
        let out = run_query(&projects(), &[]).unwrap();
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn indexed_pipeline_matches_scan_and_reports_hits() {
        let base = projects();
        let indexed = IndexedTable::new(base.clone());
        let covered = [
            vec!["groupby", "category", "sum", "stars"],
            vec!["filter", "category", "web"],
            vec!["sort", "category", "desc"],
            vec!["filter", "stars", "20"],
            vec![
                "filter", "category", "web", "groupby", "category", "sum", "stars",
            ],
        ];
        for segs in &covered {
            let ops = parse_ops(segs).unwrap();
            let scan = run_query(&base, &ops).unwrap();
            let (fast, hit) = run_query_indexed(&indexed, &ops).unwrap();
            assert_eq!(fast, scan, "{segs:?}");
            assert!(hit, "{segs:?} should take the indexed path");
        }
        // Uncovered shapes fall back but still agree.
        for segs in [
            vec!["distinct", "category"],
            vec!["limit", "2"],
            vec!["sort", "stars", "desc"],
        ] {
            let ops = parse_ops(&segs).unwrap();
            let scan = run_query(&base, &ops).unwrap();
            let (fast, hit) = run_query_indexed(&indexed, &ops).unwrap();
            assert_eq!(fast, scan, "{segs:?}");
            assert!(!hit, "{segs:?} should fall back to scan");
        }
    }

    #[test]
    fn indexed_pipeline_reproduces_scan_errors() {
        let indexed = IndexedTable::new(projects());
        let ops = parse_ops(&["groupby", "ghost", "count", "project"]).unwrap();
        let err = run_query_indexed(&indexed, &ops).unwrap_err();
        assert!(err.contains("ghost"));
    }
}
