//! SQL-over-HTTP lowering: engine [`SqlPlan`] stages → ad-hoc
//! [`QueryOp`]s plus a cache path.
//!
//! The load-bearing property is **canonicalisation**: when every stage of
//! a plan is expressible in the path-segment query grammar, the lowering
//! emits the exact canonical segments — so the SQL route computes the
//! same `"{dashboard}/{dataset}/{segments}"` result key, evaluates the
//! same `Vec<QueryOp>`, and therefore *shares result- and page-cache
//! entries* with the equivalent `GET .../q/...` request. Richer shapes
//! (boolean `WHERE`, multi-agg `GROUP BY`, projections, joins, `OFFSET`)
//! get a deterministic `sql:`-prefixed key of their own.

use crate::http::{Response, Status};
use crate::query::{JoinOp, QueryOp};
use shareinsights_engine::sql::{SqlPlan, SqlStage};
use shareinsights_tabular::agg::AggKind;
use shareinsights_tabular::expr::Expr;
use shareinsights_tabular::ops::SortOrder;
use shareinsights_tabular::{Table, Value};

/// A plan lowered for the serving layer.
#[derive(Debug, Clone)]
pub struct LoweredSql {
    /// Ops for `run_query_indexed` / `run_query`.
    pub ops: Vec<QueryOp>,
    /// Cache path: canonical path segments when `shared`, a `sql:` key
    /// otherwise. Appended to `"{dashboard}/{dataset}/"` to form the
    /// result key.
    pub cache_path: String,
    /// Whether the plan canonicalised to path segments (and so shares
    /// cache entries with the path-segment route).
    pub shared: bool,
    /// Joined endpoint names (their publish generations must stamp the
    /// cache key's generation).
    pub join_tables: Vec<String>,
}

/// Lower plan stages to query ops. `resolve` materialises join tables by
/// endpoint name; it is only called for `JOIN` stages.
pub fn lower_plan(
    plan: &SqlPlan,
    resolve: &mut dyn FnMut(&str) -> Result<Table, String>,
) -> Result<LoweredSql, String> {
    let mut ops = Vec::with_capacity(plan.stages.len());
    let mut join_tables = Vec::new();
    // `Some` while every stage so far has a canonical path-segment form.
    let mut segments: Option<Vec<String>> = Some(Vec::new());

    for stage in &plan.stages {
        let (op, segs) = lower_stage(stage, resolve)?;
        if let QueryOp::Join(j) = &op {
            join_tables.push(j.right_name.clone());
        }
        match (&mut segments, segs) {
            (Some(all), Some(mut s)) => all.append(&mut s),
            (slot, _) => *slot = None,
        }
        ops.push(op);
    }

    let (cache_path, shared) = match segments {
        Some(segs) => (segs.join("/"), true),
        None => (
            format!(
                "sql:{}",
                ops.iter().map(op_key).collect::<Vec<_>>().join("/")
            ),
            false,
        ),
    };
    Ok(LoweredSql {
        ops,
        cache_path,
        shared,
        join_tables,
    })
}

/// Lower one stage: the op plus its canonical segments (None = this stage
/// has no path-segment spelling, the whole query keys as `sql:`).
fn lower_stage(
    stage: &SqlStage,
    resolve: &mut dyn FnMut(&str) -> Result<Table, String>,
) -> Result<(QueryOp, Option<Vec<String>>), String> {
    Ok(match stage {
        SqlStage::Filter(e) => match canonical_filter(e) {
            Some((column, value)) => {
                let segs = vec!["filter".to_string(), column.clone(), value.to_string()];
                (QueryOp::Filter { column, value }, Some(segs))
            }
            None => (QueryOp::FilterExpr(e.clone()), None),
        },
        SqlStage::GroupBy(g) => {
            let canonical =
                g.keys.len() == 1 && g.aggregates.len() == 1 && !g.orderby_aggregates && {
                    let a = &g.aggregates[0];
                    a.operator != AggKind::CountAll
                        && !a.apply_on.is_empty()
                        && a.out_field == format!("{}_{}", a.operator.name(), a.apply_on)
                        && seg_ok(&g.keys[0])
                        && seg_ok(&a.apply_on)
                };
            if canonical {
                let a = &g.aggregates[0];
                let segs = vec![
                    "groupby".to_string(),
                    g.keys[0].clone(),
                    a.operator.name().to_string(),
                    a.apply_on.clone(),
                ];
                (
                    QueryOp::GroupBy {
                        key: g.keys[0].clone(),
                        agg: a.operator,
                        apply_on: a.apply_on.clone(),
                    },
                    Some(segs),
                )
            } else {
                (QueryOp::GroupByMulti(g.clone()), None)
            }
        }
        SqlStage::Sort(keys) => {
            if keys.len() == 1 && seg_ok(&keys[0].column) {
                let dir = match keys[0].order {
                    SortOrder::Asc => "asc",
                    SortOrder::Desc => "desc",
                };
                let segs = vec!["sort".to_string(), keys[0].column.clone(), dir.to_string()];
                (
                    QueryOp::Sort {
                        column: keys[0].column.clone(),
                        order: keys[0].order,
                    },
                    Some(segs),
                )
            } else {
                (QueryOp::SortMulti(keys.clone()), None)
            }
        }
        SqlStage::Limit(n) => (
            QueryOp::Limit(*n),
            Some(vec!["limit".to_string(), n.to_string()]),
        ),
        SqlStage::Project(cols) => (QueryOp::Project(cols.clone()), None),
        SqlStage::Distinct => (QueryOp::DistinctRows(Vec::new()), None),
        SqlStage::Offset(n) => (QueryOp::Offset(*n), None),
        SqlStage::Join {
            table,
            left_on,
            right_on,
        } => {
            let right = resolve(table)?;
            (
                QueryOp::Join(JoinOp {
                    right_name: table.clone(),
                    right,
                    left_on: left_on.clone(),
                    right_on: right_on.clone(),
                }),
                None,
            )
        }
    })
}

/// `WHERE col = literal` with a round-trippable rendering is exactly the
/// path grammar's `filter/<col>/<value>` (whose value re-enters through
/// [`Value::infer`]); anything else keeps expression semantics.
fn canonical_filter(e: &Expr) -> Option<(String, Value)> {
    use shareinsights_tabular::expr::CmpOp;
    let (c, v) = match e {
        Expr::Cmp(CmpOp::Eq, lhs, rhs) => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) => (c, v),
            _ => return None,
        },
        _ => return None,
    };
    if !seg_ok(c) {
        return None;
    }
    let rendered = v.to_string();
    if seg_ok(&rendered) && Value::infer(&rendered) == *v {
        Some((c.clone(), v.clone()))
    } else {
        None
    }
}

/// Is this string safe as one path segment of a cache key?
fn seg_ok(s: &str) -> bool {
    !s.is_empty() && !s.contains('/') && !s.contains('?')
}

/// Deterministic per-op rendering for non-canonical cache keys.
fn op_key(op: &QueryOp) -> String {
    match op {
        QueryOp::GroupBy { key, agg, apply_on } => {
            format!("groupby/{key}/{}/{apply_on}", agg.name())
        }
        QueryOp::Filter { column, value } => format!("filter/{column}/{value}"),
        QueryOp::Sort { column, order } => format!(
            "sort/{column}/{}",
            if *order == SortOrder::Desc {
                "desc"
            } else {
                "asc"
            }
        ),
        QueryOp::Distinct(c) => format!("distinct/{c}"),
        QueryOp::Limit(n) => format!("limit/{n}"),
        QueryOp::FilterExpr(e) => format!("where({e:?})"),
        QueryOp::GroupByMulti(g) => format!(
            "groupby({:?};{};{})",
            g.keys,
            g.aggregates
                .iter()
                .map(|a| format!("{}:{}:{}", a.operator.name(), a.apply_on, a.out_field))
                .collect::<Vec<_>>()
                .join(","),
            g.orderby_aggregates
        ),
        QueryOp::SortMulti(keys) => format!(
            "sort({})",
            keys.iter()
                .map(|k| format!(
                    "{}:{}",
                    k.column,
                    if k.order == SortOrder::Desc {
                        "desc"
                    } else {
                        "asc"
                    }
                ))
                .collect::<Vec<_>>()
                .join(",")
        ),
        QueryOp::DistinctRows(cols) => format!("distinct({cols:?})"),
        QueryOp::Project(cols) => format!("project({cols:?})"),
        QueryOp::Offset(n) => format!("offset({n})"),
        QueryOp::Join(j) => format!("join({};{};{})", j.right_name, j.left_on, j.right_on),
        // Planner-internal fusion; never reaches SQL lowering or cache keys.
        QueryOp::TopN { keys, n } => format!("topn({keys:?};{n})"),
    }
}

/// The structured 400 body both query languages return for malformed
/// queries: `{"error": {"kind", "message", "line", "column"}}`. Line 0 /
/// column 0 mean "position unknown" (path-segment ops have no spans),
/// matching the flow-file diagnostic convention.
pub fn parse_error_response(kind: &str, message: &str, line: usize, column: usize) -> Response {
    Response {
        status: Status::BadRequest,
        body: format!(
            "{{\"error\": {{\"kind\": {}, \"message\": {}, \"line\": {line}, \"column\": {column}}}}}",
            crate::json::quote(kind),
            crate::json::quote(message),
        ),
        content_type: "application/json",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_ops;
    use shareinsights_engine::sql::{lower, parse_select};

    fn lowered(src: &str) -> LoweredSql {
        let stmt = parse_select(src).unwrap();
        let plan = lower(src, &stmt).unwrap();
        lower_plan(&plan, &mut |name| {
            Err(format!("no join table '{name}' in this test"))
        })
        .unwrap()
    }

    #[test]
    fn canonical_queries_share_the_path_grammar_exactly() {
        let cases = [
            (
                "select brand, sum(revenue) from sales group by brand",
                "groupby/brand/sum/revenue",
            ),
            (
                "select * from sales where region = 'east'",
                "filter/region/east",
            ),
            (
                "select * from sales where units = 3 order by revenue desc limit 5",
                "filter/units/3/sort/revenue/desc/limit/5",
            ),
            (
                "select brand, count(units) from sales where active = true \
                 group by brand order by count_units asc limit 2",
                "filter/active/true/groupby/brand/count/units/sort/count_units/asc/limit/2",
            ),
        ];
        for (sql, path) in cases {
            let l = lowered(sql);
            assert!(l.shared, "{sql} should canonicalise");
            assert_eq!(l.cache_path, path, "{sql}");
            // The ops are *equal* to what the path-segment parser builds —
            // identical evaluation, identical cache entries.
            let segs: Vec<&str> = path.split('/').collect();
            assert_eq!(l.ops, parse_ops(&segs).unwrap(), "{sql}");
        }
    }

    #[test]
    fn richer_shapes_key_as_sql() {
        for sql in [
            "select * from t where a > 1",
            "select * from t where a = 1 and b = 2",
            "select a, b from t",
            "select distinct region from t",
            "select r, sum(x) as total from t group by r",
            "select a, b, sum(x) from t group by a, b",
            "select * from t order by a, b desc",
            "select * from t limit 10 offset 5",
            "select count(*) from t",
        ] {
            let l = lowered(sql);
            assert!(!l.shared, "{sql} should not canonicalise");
            assert!(l.cache_path.starts_with("sql:"), "{sql} → {}", l.cache_path);
        }
        // Identical plans render identical keys; different plans differ.
        assert_eq!(
            lowered("select * from t where a > 1").cache_path,
            lowered("SELECT * FROM t WHERE a > 1").cache_path
        );
        assert_ne!(
            lowered("select * from t where a > 1").cache_path,
            lowered("select * from t where a > 2").cache_path
        );
    }

    #[test]
    fn non_roundtripping_filter_values_stay_expressions() {
        // A string that value-inference would re-type must not be pushed
        // through the `filter/<col>/<value>` spelling.
        let l = lowered("select * from t where name = '42'");
        assert!(!l.shared);
        assert!(matches!(&l.ops[0], QueryOp::FilterExpr(_)));
        // Slash-bearing values would corrupt the key path.
        let l = lowered("select * from t where name = 'a/b'");
        assert!(!l.shared);
    }

    #[test]
    fn joins_resolve_and_stamp_join_tables() {
        let stmt = parse_select("select * from a join b on x = y").unwrap();
        let plan = lower("q", &stmt).unwrap();
        let right = Table::from_rows(&["y"], &[]).unwrap();
        let l = lower_plan(&plan, &mut |name| {
            assert_eq!(name, "b");
            Ok(right.clone())
        })
        .unwrap();
        assert_eq!(l.join_tables, vec!["b"]);
        assert!(!l.shared);
        let err = lower_plan(&plan, &mut |n| Err(format!("missing {n}"))).unwrap_err();
        assert!(err.contains("missing b"));
    }

    #[test]
    fn parse_error_body_shape() {
        let r = parse_error_response("parse", "expected FROM", 1, 9);
        assert_eq!(r.status, Status::BadRequest);
        assert_eq!(
            r.body,
            "{\"error\": {\"kind\": \"parse\", \"message\": \"expected FROM\", \"line\": 1, \"column\": 9}}"
        );
    }
}
