//! Fidelity tests: the paper's own flow-file listings (figures 4–16 and the
//! full appendix A.1/A.2) parse, validate and — where data is available —
//! compile and run.

use shareinsights::core::Platform;
use shareinsights::datagen::ipl;
use shareinsights::flowfile::validate::{is_valid, validate_with, ValidateOptions};
use shareinsights::flowfile::{parse_flow_file, validate};
use shareinsights::tabular::io::csv::write_csv;

/// Figures 4+5: data source configuration and schema.
#[test]
fn figure_4_5_data_source() {
    let src = r#"
D:
  stack_summary: [project, question, answer, tags]
D.stack_summary:
  separator: ','
  source: 'stackoverflow.csv'
  format: 'csv'
"#;
    let ff = parse_flow_file("apache", src).unwrap();
    let d = ff.data_object("stack_summary").unwrap();
    assert_eq!(
        d.column_names(),
        vec!["project", "question", "answer", "tags"]
    );
    assert_eq!(d.props.get_scalar("format"), Some("csv"));
}

/// Figure 6: configure data source with provider APIs.
#[test]
fn figure_6_provider_api() {
    let src = r#"
D:
  stack_questions: [
    question => title,
    tags => tags,
  ]
D.stack_questions:
  source: https://api.stackexchange.com/2.2/questions?order=desc&sort=activity&site=stackoverflow
  protocol: http
  format: json
  request_type: get
  http_headers:
    X-Access-Key: XXX
"#;
    let ff = parse_flow_file("apache", src).unwrap();
    let d = ff.data_object("stack_questions").unwrap();
    assert_eq!(d.columns[0].path.as_deref(), Some("title"));
    assert!(d
        .props
        .get("http_headers")
        .and_then(|v| v.as_map())
        .and_then(|m| m.get_scalar("X-Access-Key"))
        .is_some());
}

/// Figure 7: filter task.
#[test]
fn figure_7_filter_task() {
    let src = "T:\n  classification:\n    type: filter_by\n    filter_expression: rating < 3\n";
    let ff = parse_flow_file("t", src).unwrap();
    assert_eq!(ff.task("classification").unwrap().task_type, "filter_by");
}

/// Figure 8: the svn/jira groupby flow, run end to end.
#[test]
fn figure_8_flow_runs() {
    let src = r#"
D:
  svn_jira_summary: [project, year, noOfBugs, noOfCheckins, noOfEmailsTotal]
  checkin_jira_emails: [project, year, total_checkins, total_jira, total_emails]
D.svn_jira_summary:
  source: 'svn_jira.csv'
  format: csv
F:
  D.checkin_jira_emails: D.svn_jira_summary | T.get_svn_jira_count
D.checkin_jira_emails:
  endpoint: true
T:
  get_svn_jira_count:
    type: groupby
    groupby: [project, year]
    aggregates:
    - operator: sum
      apply_on: noOfCheckins
      out_field: total_checkins
    - operator: sum
      apply_on: noOfBugs
      out_field: total_jira
    - operator: sum
      apply_on: noOfEmailsTotal
      out_field: total_emails
"#;
    let platform = Platform::new();
    platform.upload_data(
        "apache",
        "svn_jira.csv",
        "project,year,noOfBugs,noOfCheckins,noOfEmailsTotal\npig,2013,5,100,900\npig,2013,2,60,100\nhive,2014,1,30,50\n",
    );
    platform.save_flow("apache", src).unwrap();
    let run = platform.run_dashboard("apache").unwrap();
    let t = run.result.table("checkin_jira_emails").unwrap();
    assert_eq!(t.num_rows(), 2);
    assert_eq!(t.value(0, "total_emails").unwrap().as_int(), Some(1000));
}

/// Figure 9: the `+` endpoint alias.
#[test]
fn figure_9_endpoint_alias() {
    let src = "D:\n  svn_jira_summary: [a]\nT:\n  get_svn_jira_count:\n    type: groupby\n    groupby: [a]\nF:\n  +D.checkin_jira_emails:\n    D.svn_jira_summary | T.get_svn_jira_count\n";
    let ff = parse_flow_file("t", src).unwrap();
    assert!(ff.flows[0].endpoint_alias);
    assert!(ff.endpoint_objects().contains(&"checkin_jira_emails"));
}

/// Figure 11: intermediate data objects chain flows.
#[test]
fn figure_11_intermediate_objects() {
    let src = r#"
D:
  releases: [project, releases]
  stack_summary: [project, question]
T:
  calculate_total_release:
    type: groupby
    groupby: [project]
    aggregates:
    - operator: sum
      apply_on: releases
      out_field: total
  combine_stack_summary:
    type: join
    left: temp_release_count by project
    right: stack_summary by project
F:
  D.temp_release_count: D.releases
  | T.calculate_total_release
  +D.rel_qa_tags: (D.temp_release_count,
    D.stack_summary
  ) | T.combine_stack_summary
"#;
    let ff = parse_flow_file("t", src).unwrap();
    assert_eq!(ff.flows.len(), 2);
    assert_eq!(
        ff.flows[1].inputs,
        vec!["temp_release_count", "stack_summary"]
    );
    let diags = validate(&ff);
    assert!(is_valid(&diags), "{diags:?}");
}

/// Figures 12+14+15: widget configuration and interaction-as-flow.
#[test]
fn figure_12_14_15_widgets() {
    let src = r#"
D:
  project_data: [project, year, total_wt, technology]
W:
  project_technology_bubble:
    type: BubbleChart
    source: D.project_data | T.aggregate_project_bubbles
    text: project
    size: total_wt
    legend_text: technology
    default_selection: true
    default_selection_key: text
    default_selection_value: 'pig'
  project_name:
    type: HTML
    tag: section
    source: D.project_data | T.filter_projects
T:
  aggregate_project_bubbles:
    type: groupby
    groupby: [project, total_wt, technology]
  filter_projects:
    type: filter_by
    filter_by: [project]
    filter_source: W.project_technology_bubble
    filter_val: [text]
"#;
    let ff = parse_flow_file("t", src).unwrap();
    let diags = validate(&ff);
    assert!(is_valid(&diags), "{diags:?}");
    let w = ff.widget("project_technology_bubble").unwrap();
    assert_eq!(w.params.get_scalar("default_selection_value"), Some("pig"));
}

/// Figure 16: the Apache dashboard layout.
#[test]
fn figure_16_layout() {
    let src = r#"
W:
  apache_custom_widget:
    type: HTML
  year_slider_layout:
    type: HTML
  right_project_info_layout:
    type: HTML
  project_category_bubble:
    type: HTML
  right_sliders_layout:
    type: HTML
L:
  description: Apache Project Analysis
  rows:
  - [span12: W.apache_custom_widget]
  - [span4: W.year_slider_layout, span8: W.right_project_info_layout]
  - [span5: W.project_category_bubble, span7: W.right_sliders_layout]
"#;
    let ff = parse_flow_file("t", src).unwrap();
    let l = ff.layout.as_ref().unwrap();
    assert_eq!(l.rows.len(), 3);
    assert_eq!(l.rows[1][0].span, 4);
    let diags = validate(&ff);
    assert!(is_valid(&diags), "{diags:?}");
}

/// The complete appendix A.1 listing (IPL data-processing dashboard),
/// transcribed from the paper with PDF ligatures repaired.
const APPENDIX_A1: &str = r#"
D:
  ipl_tweets: [
    postedTime => created_at,
    body => text,
    displayName => user.location
  ]
  players_tweets: [
    date, player, count
  ]
  teams_tweets: [
    date, team, count
  ]
  dim_teams: [
    team_number, team,
    team_fullName, sort_order,
    color, noOfTweets
  ]
  team_players: [
    player, team_fullName,
    team, player_id, noOfTweets
  ]
  lat_long: [
    state, point_one, point_two,
    point_three
  ]
  player_tweets: [player,
    team, date, player_id,
    team_fullName, noOfTweets
  ]
  team_tweets: [
    sort_order, date, color,
    team, team_fullName, noOfTweets
  ]
  tm_rgn_raw_cnt: [
    date, team, state, count
  ]
  tm_rgn_tm_dtls: [
    sort_order, noOfTweets, color,
    state, team, date, team_fullName
  ]
  team_region_tweets: [
    point_one, point_two,
    point_three, state,
    team_fullName, team,
    color, sort_order,
    date, noOfTweets
  ]
  tagcloud_tweets_raw: [
    date, word, count
  ]
  tagcloud_tweets: [
    date, word, count
  ]

# ------------------------------
F:
  D.players_tweets: D.ipl_tweets |
    T.players_pipeline |
    T.players_count

  D.player_tweets: (
    D.players_tweets,
    D.team_players
  ) | T.join_player_team

  D.teams_tweets: D.ipl_tweets |
    T.teams_pipeline |
    T.teams_count

  D.team_tweets: (
    D.teams_tweets,
    D.dim_teams
  ) | T.join_dim_teams

  D.tm_rgn_raw_cnt: D.ipl_tweets |
    T.teams_pipeline_region |
    T.teams_regions_count

  D.tm_rgn_tm_dtls: (
    D.tm_rgn_raw_cnt,
    D.dim_teams
  ) | T.join_dim_teams_two

  D.team_region_tweets: (
    D.tm_rgn_tm_dtls,
    D.lat_long
  ) | T.join_lat_long

  D.tagcloud_tweets_raw:
    D.ipl_tweets |
    T.word_date_extraction |
    T.words_count

  D.tagcloud_tweets:
    D.tagcloud_tweets_raw |
    T.topwords

# ------------------------------
T:
  players_pipeline:
    parallel: [
      T.norm_ipldate,
      T.extract_players
    ]
  teams_pipeline:
    parallel: [
      T.norm_ipldate,
      T.extract_teams
    ]
  teams_pipeline_region:
    parallel: [
      T.norm_ipldate,
      T.extract_location,
      T.extract_teams
    ]
  word_date_extraction:
    parallel: [
      T.norm_ipldate,
      T.extract_words
    ]
  norm_ipldate:
    type: map
    operator: date
    transform: postedTime
    input_format: 'E MMM dd HH:mm:ss Z yyyy'
    output_format: yyyy-MM-dd
    output: date
  extract_players:
    type: map
    operator: extract
    transform: body
    dict: players.txt
    output: player
  extract_teams:
    type: map
    operator: extract
    transform: body
    dict: teams.csv
    output: team
  extract_location:
    type: map
    operator: extract_location
    transform: displayName
    match: city
    country: IND
    output: state
  extract_words:
    type: map
    operator: extract_words
    transform: body
    output: word
  join_player_team:
    type: join
    left: players_tweets by player
    right: team_players by player
    join_condition: left outer
    project:
      players_tweets_date: date
      players_tweets_player: player
      players_tweets_count: noOfTweets
      team_players_team: team
      team_players_team_fullName: team_fullName
      team_players_player_id: player_id
  join_dim_teams:
    type: join
    left: teams_tweets by team
    right: dim_teams by team_fullName
    join_condition: left outer
    project:
      teams_tweets_date: date
      teams_tweets_team: team_fullName
      teams_tweets_count: noOfTweets
      dim_teams_team: team
      dim_teams_sort_order: sort_order
      dim_teams_color: color
  join_dim_teams_two:
    type: join
    left: tm_rgn_raw_cnt by team
    right: dim_teams by team_fullName
    join_condition: left outer
    project:
      tm_rgn_raw_cnt_date: date
      tm_rgn_raw_cnt_team: team_fullName
      tm_rgn_raw_cnt_state: state
      tm_rgn_raw_cnt_count: noOfTweets
      dim_teams_Team: team
      dim_teams_sort_order: sort_order
      dim_teams_color: color
  join_lat_long:
    type: join
    left: tm_rgn_tm_dtls by state
    right: lat_long by state
    join_condition: LEFT OUTER
    project:
      tm_rgn_tm_dtls_team_fullName: team_fullName
      tm_rgn_tm_dtls_state: state
      tm_rgn_tm_dtls_date: date
      tm_rgn_tm_dtls_noOfTweets: noOfTweets
      tm_rgn_tm_dtls_team: team
      tm_rgn_tm_dtls_sort_order: sort_order
      tm_rgn_tm_dtls_color: color
      lat_long_point_one: point_one
      lat_long_point_two: point_two
      lat_long_point_three: point_three
  players_count:
    type: groupby
    groupby: [date, player]
  teams_count:
    type: groupby
    groupby: [date, team]
  teams_regions_count:
    type: groupby
    groupby: [date, team, state]
  words_count:
    type: groupby
    groupby: [date, word]
  topwords:
    type: topn
    groupby: [date]
    orderby_column: [count DESC]
    limit: 20
"#;

/// Appendix A.2 (the consumption dashboard), transcribed from the paper.
const APPENDIX_A2: &str = r#"
# ---------------------------------------
L:
  description: Clash of Titans
  rows:
  - [span12: W.teams]
  - [span11: W.ipl_duration]
  - [span11: W.relative_teamtweets]
  - [span6: W.word_team_player_tweets,
     span5: W.region_tweets]

# ---------------------------------------
W:
  ipl_duration:
    type: Slider
    source: ['2013-05-02', '2013-05-27']
    static: true
    range: true
    slider_type: date

  relative_teamtweets:
    type: Streamgraph
    source: D.team_tweets |
      T.filter_by_date |
      T.filter_by_team
    x: date
    y: noOfTweets
    color: color
    serie: team
    xAxis:
      type: 'datetime'
    yAxis:
      allowDecimals: false
      min: 0
      max: 25000

  teams:
    type: List
    source: D.dim_teams
    text: team
    image_position: right

  playertweets:
    type: WordCloud
    source: D.player_tweets |
      T.filter_by_date |
      T.filter_by_team |
      T.aggregate_by_player
    text: player
    size: noOfTweets
    show_tooltip: true
    tooltip_text: [player, noOfTweets]

  teamtweets:
    type: WordCloud
    source: D.team_tweets |
      T.filter_by_date |
      T.aggregate_by_team
    text: team
    size: noOfTweets
    show_tooltip: true
    tooltip_text: [team, noOfTweets]

  wordtweets:
    type: WordCloud
    source: D.tagcloud_tweets |
      T.filter_by_date |
      T.aggregate_by_word
    text: word
    size: count
    show_tooltip: true
    tooltip_text: [word, count]

  region_tweets:
    type: MapMarker
    source: D.team_region_tweets |
      T.filter_by_date |
      T.filter_by_team |
      T.aggregate_by_team_region
    country: IND
    markers:
    - marker1:
        type: circle_marker
        latlong_value: point_one
        markersize: noOfTweets
        fill_color: color
        tooltip_text: [
          state,
          team,
          noOfTweets
        ]

  teamtweetstab:
    type: Layout
    rows:
    - [span11: W.teamtweets]
  playertweetstab:
    type: Layout
    rows:
    - [span11: W.playertweets]
  wordtweetstab:
    type: Layout
    rows:
    - [span11: W.wordtweets]

  word_team_player_tweets:
    type: TabLayout
    tabs:
    - name: 'Player'
      body: W.playertweetstab
    - name: 'Word'
      body: W.wordtweetstab
    - name: 'Team'
      body: W.teamtweetstab

# --------------------------------

T:
  aggregate_by_player:
    type: groupby
    groupby: [player]
    aggregates:
    - operator: sum
      apply_on: noOfTweets
      out_field: noOfTweets

  aggregate_by_team:
    type: groupby
    groupby: [team]
    aggregates:
    - operator: sum
      apply_on: noOfTweets
      out_field: noOfTweets

  aggregate_by_word:
    type: groupby
    groupby: [word]
    aggregates:
    - operator: sum
      apply_on: count
      out_field: count
    orderby_aggregates: true

  filter_by_date:
    type: filter_by
    filter_by: [date]
    filter_source: W.ipl_duration

  filter_by_team:
    type: filter_by
    filter_by: [team]
    filter_source: W.teams
    filter_val: [text]

  aggregate_by_team_region:
    type: groupby
    groupby: [team, point_one, state, color]
    aggregates:
    - operator: sum
      apply_on: noOfTweets
      out_field: noOfTweets
"#;

#[test]
fn appendix_a1_parses_and_validates() {
    let ff = parse_flow_file("ipl_processing", APPENDIX_A1).unwrap();
    assert_eq!(ff.flows.len(), 9);
    assert_eq!(ff.tasks.len(), 18);
    assert_eq!(ff.data.len(), 13);
    let diags = validate(&ff);
    // Only "never used" warnings for declared-but-sink objects are
    // acceptable; no errors.
    assert!(is_valid(&diags), "{diags:?}");
    assert!(ff.is_data_processing_mode());
}

#[test]
fn appendix_a2_parses_and_validates_against_a1_shared_objects() {
    let ff = parse_flow_file("ipl_dashboard", APPENDIX_A2).unwrap();
    assert_eq!(ff.widgets.len(), 11);
    assert!(ff.is_consumption_mode());
    // A.2 assumes A.1 published its objects (the appendix preamble says
    // exactly this); with those shared names validation is clean.
    let opts = ValidateOptions {
        shared_data: vec![
            "team_tweets".into(),
            "player_tweets".into(),
            "tagcloud_tweets".into(),
            "team_region_tweets".into(),
            "dim_teams".into(),
        ],
        ..Default::default()
    };
    let diags = validate_with(&ff, &opts);
    assert!(is_valid(&diags), "{diags:?}");
}

/// The full A.1 → A.2 flow group compiles AND runs end to end on generated
/// tweets, then drives the figure-17 interactions.
#[test]
fn appendix_flow_group_end_to_end() {
    let platform = Platform::new();
    let corpus = ipl::generate(&ipl::IplConfig {
        tweets: 800,
        ..Default::default()
    });
    platform.upload_data(
        "ipl_processing",
        "tweets.json",
        corpus.tweets_ndjson.clone(),
    );
    platform.upload_data("ipl_processing", "players.txt", corpus.players_dict.clone());
    platform.upload_data("ipl_processing", "teams.csv", corpus.teams_dict.clone());
    platform.upload_data(
        "ipl_processing",
        "team_players.csv",
        write_csv(&corpus.team_players, ','),
    );
    platform.upload_data(
        "ipl_processing",
        "dim_teams.csv",
        write_csv(&corpus.dim_teams, ','),
    );
    platform.upload_data(
        "ipl_processing",
        "lat_long.csv",
        write_csv(&corpus.lat_long, ','),
    );

    // A.1 with source details + publishes appended (the appendix assumes
    // them; §3.7.1/figure 19 show the pattern).
    let a1 = format!(
        "{APPENDIX_A1}
D.ipl_tweets:
  source: 'tweets.json'
  format: json
D.team_players:
  source: 'team_players.csv'
  format: csv
D.dim_teams:
  source: 'dim_teams.csv'
  format: csv
  publish: dim_teams
D.lat_long:
  source: 'lat_long.csv'
  format: csv
D.player_tweets:
  endpoint: true
  publish: player_tweets
D.team_tweets:
  endpoint: true
  publish: team_tweets
D.team_region_tweets:
  endpoint: true
  publish: team_region_tweets
D.tagcloud_tweets:
  endpoint: true
  publish: tagcloud_tweets
"
    );
    platform.save_flow("ipl_processing", &a1).unwrap();
    let run = platform.run_dashboard("ipl_processing").unwrap();
    assert!(run.published.len() >= 4, "{:?}", run.published);
    let team_tweets = run.result.table("team_tweets").unwrap();
    assert!(team_tweets.num_rows() > 0);
    assert_eq!(
        team_tweets.schema().names(),
        vec![
            "date",
            "team_fullName",
            "noOfTweets",
            "team",
            "sort_order",
            "color"
        ]
    );

    // dim_teams is a raw source; publish it via the registry for A.2's
    // teams list (sources aren't flow outputs, so publish directly).
    platform
        .publish_registry()
        .publish(
            "dim_teams",
            "ipl_processing",
            "dim_teams",
            corpus.dim_teams.schema().clone(),
            Some(corpus.dim_teams.clone()),
        )
        .unwrap();

    platform.save_flow("ipl_dashboard", APPENDIX_A2).unwrap();
    let dash = platform.open_dashboard("ipl_dashboard").unwrap();

    // Initial render (slider default range covers the tournament).
    let tree = dash.render(5).unwrap();
    assert!(tree.count() >= 11, "all widgets render: {}", tree.count());

    // Figure 17 interaction: select CSK, narrow dates.
    dash.select("teams", "text", vec!["CSK".into()]).unwrap();
    dash.set_range("ipl_duration", "2013-05-02".into(), "2013-05-10".into())
        .unwrap();
    let stream = dash.data_of("relative_teamtweets").unwrap();
    assert!(stream.num_rows() > 0, "CSK tweets in range");
    for i in 0..stream.num_rows() {
        assert_eq!(stream.value(i, "team").unwrap().to_string(), "CSK");
        let date = stream.value(i, "date").unwrap().to_string();
        assert!(
            ("2013-05-02".."2013-05-11").contains(&date.as_str()),
            "{date}"
        );
    }
}
