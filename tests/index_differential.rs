//! Differential property tests for the indexed acceleration layer.
//!
//! The contract under test: every accelerated kernel either *declines*
//! (returns `None`, sending the caller to the scan path) or produces a
//! table whose JSON serialization is **byte-identical** to the scan
//! kernel's output — same rows, same order, same formatting. Generated
//! cases deliberately include nulls, all-null columns (empty
//! dictionaries), zero-row tables, values absent from the dictionary,
//! and range predicates entirely outside the data's span.
//!
//! Like `properties.rs`, cases come from a seeded local RNG so every
//! failure is reproducible from the fixed seed.

use shareinsights::datagen::SeededRng;
use shareinsights::server::query::{parse_ops, run_query, run_query_indexed};
use shareinsights::server::table_to_json;
use shareinsights::tabular::agg::AggKind;
use shareinsights::tabular::ops::filter::{filter_by_range, RangeFilter};
use shareinsights::tabular::ops::{
    filter_by_values, groupby, sort, AggregateSpec, FilterByValues, GroupBy, SortKey,
};
use shareinsights::tabular::{
    Column, ColumnBuilder, DataType, Field, IndexedTable, Schema, Table, Value,
};

const CASES: usize = 64;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Null probability for a column: mostly light, sometimes total (which
/// leaves a Utf8 column with an *empty dictionary*).
fn null_chance(r: &mut SeededRng) -> f64 {
    match r.weighted_index(&[4.0, 3.0, 1.0]) {
        0 => 0.0,
        1 => 0.25,
        _ => 1.0,
    }
}

fn utf8_col(r: &mut SeededRng, n: usize, pool: usize, nulls: f64) -> Column {
    let mut b = ColumnBuilder::new(DataType::Utf8);
    for _ in 0..n {
        if pool == 0 || r.chance(nulls) {
            b.push_null();
        } else {
            b.push_str(format!("k{}", r.index(pool)));
        }
    }
    b.finish()
}

fn int_col(r: &mut SeededRng, n: usize, nulls: f64) -> Column {
    let mut b = ColumnBuilder::new(DataType::Int64);
    for _ in 0..n {
        if r.chance(nulls) {
            b.push_null();
        } else {
            b.push_coerced(&Value::Int(r.int_range(-50, 49))).unwrap();
        }
    }
    b.finish()
}

/// A table shaped like endpoint data: a categorical, a second categorical
/// and a numeric measure. Row count includes 0 (empty table, empty
/// dictionaries); null chances include 1.0 (all-null columns).
fn gen_table(r: &mut SeededRng) -> Table {
    let n = if r.chance(0.1) { 0 } else { 1 + r.index(40) };
    let pool = r.index(6); // 0 = every value null regardless of chance
    let schema = Schema::new(vec![
        Field::new("cat", DataType::Utf8),
        Field::new("cat2", DataType::Utf8),
        Field::new("num", DataType::Int64),
    ])
    .unwrap();
    let (nc1, nc2, nc3) = (null_chance(r), null_chance(r), null_chance(r));
    let columns = vec![
        utf8_col(r, n, pool, nc1),
        utf8_col(r, n, 3, nc2),
        int_col(r, n, nc3),
    ];
    Table::new(schema, columns).unwrap()
}

/// An allowed-values set mixing dictionary members, strings absent from
/// the dictionary, explicit nulls, and out-of-domain integers.
fn gen_allowed(r: &mut SeededRng) -> Vec<Value> {
    let mut allowed: Vec<Value> = Vec::new();
    for _ in 0..r.index(4) {
        allowed.push(Value::Str(format!("k{}", r.index(8))));
    }
    if r.chance(0.2) {
        allowed.push(Value::Str("absent".into()));
    }
    if r.chance(0.2) {
        allowed.push(Value::Null);
    }
    allowed
}

fn assert_same_bytes(fast: &Table, scan: &Table, what: &str) {
    assert_eq!(
        table_to_json(fast),
        table_to_json(scan),
        "indexed {what} diverged from scan"
    );
}

// ---------------------------------------------------------------------------
// Kernel-level differentials
// ---------------------------------------------------------------------------

/// Value-set filters through posting lists agree with the scan filter,
/// including null selections, misses, and empty dictionaries.
#[test]
fn filter_by_values_matches_scan() {
    let mut r = SeededRng::new(0x1D1F_0001);
    let mut covered = 0usize;
    for _ in 0..CASES {
        let t = gen_table(&mut r);
        let ix = IndexedTable::new(t.clone());
        for col in ["cat", "cat2", "num"] {
            let allowed = if col == "num" {
                let mut a: Vec<Value> = (0..r.index(4))
                    .map(|_| Value::Int(r.int_range(-60, 59)))
                    .collect();
                if r.chance(0.2) {
                    a.push(Value::Null);
                }
                a
            } else {
                gen_allowed(&mut r)
            };
            let spec = FilterByValues::single(col, allowed);
            let scan = filter_by_values(&t, &spec).unwrap();
            if let Some(fast) = ix.filter_by_values(&spec) {
                assert_same_bytes(&fast, &scan, "filter_by_values");
                covered += 1;
            }
        }
    }
    assert!(
        covered > CASES,
        "index path should cover most value filters"
    );
}

/// Range filters through zones and dictionary spans agree with the scan
/// filter, including ranges entirely outside the data and inverted bounds.
#[test]
fn filter_by_range_matches_scan() {
    let mut r = SeededRng::new(0x1D1F_0002);
    let mut covered = 0usize;
    for _ in 0..CASES {
        let t = gen_table(&mut r);
        let ix = IndexedTable::new(t.clone());
        // Integer ranges: in-range, out-of-range and inverted.
        let (lo, hi) = match r.index(4) {
            0 => (r.int_range(-60, 0), r.int_range(0, 59)),
            1 => (1000, 2000),   // entirely above the data
            2 => (-2000, -1000), // entirely below the data
            _ => (40, -40),      // inverted: matches nothing
        };
        let rf = RangeFilter {
            column: "num".into(),
            lo: Value::Int(lo),
            hi: Value::Int(hi),
        };
        let scan = filter_by_range(&t, &rf).unwrap();
        if let Some(fast) = ix.filter_by_range(&rf) {
            assert_same_bytes(&fast, &scan, "filter_by_range(num)");
            covered += 1;
        }
        // String ranges over the dictionary, sometimes past its end.
        let (slo, shi) = if r.chance(0.3) {
            ("zz".to_string(), "zzz".to_string())
        } else {
            (format!("k{}", r.index(4)), format!("k{}", 4 + r.index(4)))
        };
        let rf = RangeFilter {
            column: "cat".into(),
            lo: Value::Str(slo),
            hi: Value::Str(shi),
        };
        let scan = filter_by_range(&t, &rf).unwrap();
        if let Some(fast) = ix.filter_by_range(&rf) {
            assert_same_bytes(&fast, &scan, "filter_by_range(cat)");
            covered += 1;
        }
    }
    assert!(covered > 0, "index path should cover some range filters");
}

/// Dense code-indexed group-by agrees with the scan group-by byte for
/// byte (group order included) whenever it claims coverage.
#[test]
fn groupby_matches_scan() {
    let mut r = SeededRng::new(0x1D1F_0003);
    let mut covered = 0usize;
    for _ in 0..CASES {
        let t = gen_table(&mut r);
        let ix = IndexedTable::new(t.clone());
        let agg = match r.index(3) {
            0 => AggregateSpec::new(AggKind::CountAll, "", "n"),
            1 => AggregateSpec::new(AggKind::Sum, "num", "total"),
            _ => AggregateSpec::new(AggKind::Count, "num", "n"),
        };
        let cfg = GroupBy::with_aggregates(&["cat"], vec![agg]);
        let scan = groupby(&t, &cfg).unwrap();
        if let Some(fast) = ix.groupby(&cfg) {
            assert_same_bytes(&fast, &scan, "groupby");
            covered += 1;
        }
    }
    assert!(covered > 0, "null-free cases should take the indexed path");
}

/// Sort by dictionary code rank agrees with the scan comparison sort,
/// nulls-first placement and tie order included.
#[test]
fn sort_matches_scan() {
    let mut r = SeededRng::new(0x1D1F_0004);
    let mut covered = 0usize;
    for _ in 0..CASES {
        let t = gen_table(&mut r);
        let ix = IndexedTable::new(t.clone());
        let key = if r.chance(0.5) {
            SortKey::asc("cat")
        } else {
            SortKey::desc("cat")
        };
        let scan = sort(&t, std::slice::from_ref(&key)).unwrap();
        if let Some(fast) = ix.sort(std::slice::from_ref(&key)) {
            assert_same_bytes(&fast, &scan, "sort");
            covered += 1;
        }
    }
    assert!(
        covered > CASES / 2,
        "utf8 sorts should take the indexed path"
    );
}

// ---------------------------------------------------------------------------
// Query-pipeline differential
// ---------------------------------------------------------------------------

/// Random ad-hoc query pipelines produce byte-identical JSON through
/// `run_query` (pure scan) and `run_query_indexed` (accelerated first op,
/// scan thereafter) — and reproduce the same errors.
#[test]
fn query_pipelines_match_scan() {
    let mut r = SeededRng::new(0x1D1F_0005);
    let mut hits = 0usize;
    for _ in 0..CASES {
        let t = gen_table(&mut r);
        let ix = IndexedTable::new(t.clone());
        let mut segments: Vec<String> = Vec::new();
        for _ in 0..1 + r.index(3) {
            match r.index(5) {
                0 => {
                    let agg = ["sum", "count", "min", "max"][r.index(4)];
                    segments.extend(["groupby".into(), "cat".into(), agg.into(), "num".into()]);
                }
                1 => {
                    let v = if r.chance(0.3) {
                        "absent".to_string()
                    } else {
                        format!("k{}", r.index(6))
                    };
                    segments.extend(["filter".into(), "cat".into(), v]);
                }
                2 => {
                    let dir = if r.chance(0.5) { "asc" } else { "desc" };
                    segments.extend(["sort".into(), "cat".into(), dir.into()]);
                }
                3 => segments.extend(["distinct".into(), "cat2".into()]),
                _ => segments.extend(["limit".into(), r.index(20).to_string()]),
            }
        }
        // Occasionally reference a missing column so errors differentialize.
        if r.chance(0.15) {
            segments.extend(["filter".into(), "ghost".into(), "x".into()]);
        }
        let refs: Vec<&str> = segments.iter().map(String::as_str).collect();
        let ops = parse_ops(&refs).unwrap();
        match (run_query(&t, &ops), run_query_indexed(&ix, &ops)) {
            (Ok(scan), Ok((fast, hit))) => {
                assert_same_bytes(&fast, &scan, "query pipeline");
                hits += usize::from(hit);
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "error divergence"),
            (a, b) => panic!("paths disagree on success: scan={a:?} indexed={b:?}"),
        }
    }
    assert!(hits > 0, "some pipelines should report index hits");
}
