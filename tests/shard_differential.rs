//! Differential tests for the shared-nothing sharded data plane.
//!
//! The contract under test: attaching a shard set changes *where* a
//! query runs, never *what* it answers. Every response — path grammar or
//! SQL, in-process or over either TCP serve mode — must be
//! **byte-identical** to single-shard execution, including paging,
//! ordering, tie-breaks and error strings. Cases deliberately include
//! empty per-shard partials (filters matching nothing on most shards),
//! all-rows-on-one-shard skew, every mergeable aggregate kind, the
//! accumulator-path aggregates (`avg`, `count_distinct`), fused
//! `sort|limit` top-n, and appends that move the data generation under a
//! loaded shard set.

use shareinsights::core::Platform;
use shareinsights::datagen::SeededRng;
use shareinsights::server::{
    blocking_get, blocking_request, serve, Method, Request, Response, ServeMode, ServeOptions,
    Server,
};

const ROWS: usize = 2000; // above the 1024-row scatter floor

/// The identity flow: endpoint data `sales_out` mirrors the uploaded CSV,
/// so tests control the exact rows every shard slice sees.
const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  shape:
    type: sql
    query: "select region, brand, revenue from sales"
F:
  +D.sales_out: D.sales | T.shape
"#;

/// Deterministic endpoint data. The first 100 rows carry `region=hot`
/// (all land on shard 0 at any tested width — the skew case); `absent`
/// appears nowhere (every partial empty).
fn sales_csv() -> String {
    let mut r = SeededRng::new(0x5AAD_0001);
    let mut csv = String::from("region,brand,revenue\n");
    for i in 0..ROWS {
        let region = if i < 100 {
            "hot".to_string()
        } else {
            format!("r{}", r.index(4))
        };
        csv.push_str(&format!(
            "{region},b{},{}\n",
            r.index(6),
            r.int_range(-50, 999)
        ));
    }
    csv
}

fn server_with(shards: usize) -> Server {
    let platform = Platform::new();
    platform.upload_data("retail", "sales.csv", sales_csv());
    let server = Server::new(platform).with_shards(shards);
    let r = server.handle(&Request::new(Method::Put, "/dashboards/retail/flow").with_body(FLOW));
    assert!(r.is_ok(), "{}", r.body);
    let r = server.handle(&Request::new(Method::Post, "/dashboards/retail/run"));
    assert!(r.is_ok(), "{}", r.body);
    server
}

/// Path-grammar queries spanning every gather mode: row-local scatters,
/// mergeable and accumulator group-bys, fused top-n, skew and empty
/// partials, paging, and shapes the planner must decline identically.
const PATH_QUERIES: &[&str] = &[
    "/retail/ds/sales_out",
    "/retail/ds/sales_out?limit=7&offset=1990",
    "/retail/ds/sales_out/filter/region/r1",
    "/retail/ds/sales_out/filter/region/hot",
    "/retail/ds/sales_out/filter/region/absent",
    "/retail/ds/sales_out/groupby/brand/sum/revenue",
    "/retail/ds/sales_out/groupby/brand/count/revenue",
    "/retail/ds/sales_out/groupby/brand/min/revenue",
    "/retail/ds/sales_out/groupby/brand/max/revenue",
    "/retail/ds/sales_out/groupby/brand/avg/revenue",
    "/retail/ds/sales_out/groupby/brand/count_distinct/region",
    "/retail/ds/sales_out/groupby/region/first/brand",
    "/retail/ds/sales_out/groupby/region/last/brand",
    "/retail/ds/sales_out/filter/region/r2/groupby/brand/sum/revenue",
    "/retail/ds/sales_out/filter/region/hot/groupby/brand/sum/revenue/sort/sum_revenue/desc",
    "/retail/ds/sales_out/sort/revenue/desc/limit/10",
    "/retail/ds/sales_out/sort/revenue/asc/limit/25?offset=5",
    "/retail/ds/sales_out/filter/region/r3/sort/revenue/desc/limit/5",
    "/retail/ds/sales_out/sort/brand/asc",
    "/retail/ds/sales_out/distinct/region",
    "/retail/ds/sales_out/filter/region/r0/limit/30",
    // Error shapes must reproduce the same strings through the shards.
    "/retail/ds/sales_out/filter/ghost/x",
    "/retail/ds/sales_out/groupby/brand/sum/ghost",
];

/// SQL spellings exercising `FilterExpr`, multi-aggregate `GroupByMulti`,
/// multi-key `SortMulti`, projections, `DISTINCT` and `OFFSET`.
const SQL_QUERIES: &[&str] = &[
    "select * from sales_out where revenue > 500",
    "select region, brand from sales_out where revenue between 0 and 99 limit 40",
    "select brand, sum(revenue) as total, count(*) as n from sales_out \
     group by brand order by total desc",
    "select region, brand, sum(revenue), min(revenue) as lo, max(revenue) as hi \
     from sales_out group by region, brand",
    "select region, avg(revenue) as mean from sales_out group by region",
    "select * from sales_out order by region asc, revenue desc limit 15",
    "select distinct region, brand from sales_out",
    "select brand, count(revenue) from sales_out where region = 'hot' group by brand",
    "select * from sales_out where region = 'absent'",
    "select brand, sum(revenue) from sales_out group by brand limit 3 offset 2",
];

fn get(server: &Server, path: &str) -> Response {
    server.handle(&Request::get(path))
}

fn sql(server: &Server, text: &str) -> Response {
    server.handle(&Request::new(Method::Post, "/retail/ds/sales_out/sql").with_body(text))
}

// ---------------------------------------------------------------------------
// In-process differentials
// ---------------------------------------------------------------------------

/// Every path query answers byte-identically at 1 (disabled), 2 and 4
/// shards — statuses and bodies both — and the sharded servers actually
/// scattered (this is a differential, not a fallback-everywhere pass).
#[test]
fn path_queries_match_unsharded_byte_for_byte() {
    let baseline = server_with(1);
    assert!(baseline.shards().is_none(), "width 1 must disable sharding");
    for width in [2usize, 4] {
        let sharded = server_with(width);
        assert!(sharded.shards().is_some());
        for path in PATH_QUERIES {
            let a = get(&baseline, path);
            let b = get(&sharded, path);
            assert_eq!(a.status, b.status, "{width} shards: {path}");
            assert_eq!(a.body, b.body, "{width} shards: {path}");
        }
        let stats = sharded.platform().api_metrics().shard();
        assert_eq!(stats.workers, width as u64);
        assert!(stats.scatters > 0, "{width} shards: nothing scattered");
        assert!(
            stats.fallbacks > 0,
            "{width} shards: unshardable shapes should fall back"
        );
    }
}

/// Every SQL query answers byte-identically across shard widths, and the
/// caches repeat the same bytes (worker result caches included).
#[test]
fn sql_queries_match_unsharded_byte_for_byte() {
    let baseline = server_with(1);
    for width in [2usize, 4] {
        let sharded = server_with(width);
        for text in SQL_QUERIES {
            let a = sql(&baseline, text);
            let b = sql(&sharded, text);
            assert_eq!(a.status, b.status, "{width} shards: {text}");
            assert_eq!(a.body, b.body, "{width} shards: {text}");
            // Cold repeat: drop the router-side caches so the second
            // answer re-gathers (hitting worker result caches) and still
            // reproduces the bytes.
            sharded.clear_derived_caches();
            let again = sql(&sharded, text);
            assert_eq!(b.body, again.body, "{width} shards, cold repeat: {text}");
        }
        assert!(sharded.platform().api_metrics().shard().scatters > 0);
    }
}

/// Appends move the generation under a loaded shard set: the next query
/// must reload fresh slices and keep matching the unsharded answer —
/// stale partials refused by the generation stamp, never served.
#[test]
fn appends_invalidate_shard_slices() {
    let baseline = server_with(1);
    let sharded = server_with(4);
    let queries = [
        "/retail/ds/sales_out/groupby/brand/sum/revenue",
        "/retail/ds/sales_out/sort/revenue/desc/limit/10",
    ];
    for path in queries {
        assert_eq!(get(&baseline, path).body, get(&sharded, path).body);
    }
    let delta = "region,brand,revenue\nnew,b9,12345\nnew,b9,-7\n";
    for server in [&baseline, &sharded] {
        let r = server.handle(
            &Request::new(Method::Post, "/dashboards/retail/ds/sales_out/ingest").with_body(delta),
        );
        assert!(r.is_ok(), "{}", r.body);
    }
    for path in queries {
        let a = get(&baseline, path);
        let b = get(&sharded, path);
        assert!(a.is_ok(), "{path}: {}", a.body);
        assert_eq!(a.body, b.body, "post-append: {path}");
    }
    let stats = sharded.platform().api_metrics().shard();
    assert!(stats.invalidations > 0, "append must fan out invalidation");
    assert!(
        stats.loads >= 8,
        "slices must reload after the generation moved (loads={})",
        stats.loads
    );
}

/// `/stats` exposes the shard block with per-worker rows covering the
/// full partition, and `/metrics` exposes the matching Prometheus
/// families — only when sharding is on.
#[test]
fn observability_surfaces_shard_counters() {
    let sharded = server_with(4);
    assert!(get(&sharded, "/retail/ds/sales_out/groupby/brand/sum/revenue").is_ok());
    let stats = get(&sharded, "/stats");
    assert!(stats.is_ok());
    assert!(stats.body.contains("\"shard\""), "missing shard block");
    assert!(stats.body.contains("\"per_worker\""));
    let metrics = get(&sharded, "/metrics").body;
    for family in [
        "shareinsights_shard_workers 4",
        "shareinsights_shard_scatters_total",
        "shareinsights_shard_worker_rows{shard=\"3\"}",
        "shareinsights_shard_gather_seconds_total",
    ] {
        assert!(metrics.contains(family), "missing {family}");
    }
    let unsharded = server_with(1);
    assert!(unsharded.handle(&Request::get("/metrics")).is_ok());
    let metrics = unsharded.handle(&Request::get("/metrics")).body;
    assert!(
        !metrics.contains("shareinsights_shard_worker_rows"),
        "per-worker families must be absent when sharding is off"
    );
}

// ---------------------------------------------------------------------------
// TCP differentials: both serve modes
// ---------------------------------------------------------------------------

/// Both serve architectures, with sharding switched on through
/// `ServeOptions::shards`, answer byte-identically to the unsharded
/// in-process router — and never 5xx doing it.
#[test]
fn both_serve_modes_agree_with_unsharded_baseline() {
    let baseline = server_with(1);
    for mode in [ServeMode::ThreadPerConnection, ServeMode::Reactor] {
        let opts = ServeOptions {
            serve_mode: mode,
            shards: 4,
            workers: 2,
            ..ServeOptions::default()
        };
        let mut svc = serve(server_with(1), "127.0.0.1:0", opts).expect("bind");
        let addr = svc.local_addr();
        for path in PATH_QUERIES {
            let expect = get(&baseline, path);
            let (code, body) = blocking_get(addr, path).expect("request");
            assert!(code < 500, "{mode:?} {path}: {code} {body}");
            assert_eq!(code, expect.status.code(), "{mode:?}: {path}");
            assert_eq!(body, expect.body, "{mode:?}: {path}");
        }
        for text in SQL_QUERIES {
            let expect = sql(&baseline, text);
            let (code, body) =
                blocking_request(addr, "POST", "/retail/ds/sales_out/sql", text).expect("request");
            assert!(code < 500, "{mode:?} {text}: {code} {body}");
            assert_eq!(body, expect.body, "{mode:?}: {text}");
        }
        let (code, metrics) = blocking_get(addr, "/metrics").expect("metrics");
        assert_eq!(code, 200);
        assert!(
            metrics.contains("shareinsights_shard_workers 4"),
            "{mode:?}: serve options did not attach the shard set"
        );
        assert!(metrics.contains("shareinsights_shard_scatters_total"));
        svc.shutdown();
    }
}
