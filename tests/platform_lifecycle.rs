//! Platform-level lifecycle integration: many dashboards sharing one
//! platform, telemetry integrity, mode transitions, and the §4.5.3 flow
//! file group benefits exercised as one scenario.

use shareinsights::core::{Platform, RunKind};
use shareinsights::datagen::retail;
use shareinsights::tabular::io::csv::write_csv;
use shareinsights::tabular::Value;

const PRODUCER: &str = r#"
D:
  sales: [date, brand, region, units, revenue]
  products: [brand, category, unit_price]
D.sales:
  source: 'sales.csv'
  format: csv
D.products:
  source: 'products.csv'
  format: csv
T:
  brand_revenue:
    type: groupby
    groupby: [brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: total_revenue
    - operator: sum
      apply_on: units
      out_field: total_units
  join_category:
    type: join
    left: brand_totals by brand
    right: products by brand
    join_condition: left outer
    project:
      brand_totals_brand: brand
      brand_totals_total_revenue: total_revenue
      brand_totals_total_units: total_units
      products_category: category
F:
  D.brand_totals: D.sales | T.brand_revenue
  +D.brand_catalog: (D.brand_totals, D.products) | T.join_category
  D.brand_catalog:
    publish: brand_catalog
"#;

const CONSUMER: &str = r#"
W:
  categories:
    type: List
    source: D.brand_catalog | T.cat_names
    text: category
  brand_pie:
    type: Pie
    source: D.brand_catalog | T.filter_by_category
    text: brand
    size: total_revenue
T:
  cat_names:
    type: distinct
    columns: [category]
  filter_by_category:
    type: filter_by
    filter_by: [category]
    filter_source: W.categories
    filter_val: [text]
L:
  description: Branderstanding
  rows:
  - [span3: W.categories, span9: W.brand_pie]
"#;

fn seeded_platform() -> Platform {
    let platform = Platform::new();
    let corpus = retail::generate(&retail::RetailConfig {
        transactions: 2_000,
        ..Default::default()
    });
    platform.upload_data("producer", "sales.csv", write_csv(&corpus.sales, ','));
    platform.upload_data("producer", "products.csv", write_csv(&corpus.products, ','));
    platform
}

#[test]
fn producer_consumer_lifecycle_with_telemetry() {
    let platform = seeded_platform();

    // Producer: data-processing mode.
    platform.save_flow("producer", PRODUCER).unwrap();
    assert!(platform
        .dashboard("producer")
        .unwrap()
        .is_data_processing_mode());
    let run = platform.run_dashboard("producer").unwrap();
    assert_eq!(run.published.len(), 1);
    let catalog_rows = run.result.table("brand_catalog").unwrap().num_rows();
    assert_eq!(catalog_rows, 12, "one row per brand");

    // Consumer: consumption mode, resolving the published object.
    platform.save_flow("consumer", CONSUMER).unwrap();
    assert!(platform
        .dashboard("consumer")
        .unwrap()
        .ast
        .is_consumption_mode());
    let dash = platform.open_dashboard("consumer").unwrap();
    let pie = dash.data_of("brand_pie").unwrap();
    assert_eq!(pie.num_rows(), catalog_rows);

    // Interaction narrows the pie to one category.
    dash.select("categories", "text", vec!["beverages".into()])
        .unwrap();
    let pie = dash.data_of("brand_pie").unwrap();
    assert!(pie.num_rows() < catalog_rows && pie.num_rows() > 0);
    for i in 0..pie.num_rows() {
        assert_eq!(pie.value(i, "category").unwrap().to_string(), "beverages");
    }

    // Telemetry recorded the whole session in order.
    let log = platform.log();
    assert_eq!(log.count("producer", RunKind::Save), 1);
    assert_eq!(log.count("producer", RunKind::Run), 1);
    assert_eq!(log.count("consumer", RunKind::Open), 1);
    let usage = log.usage();
    assert!(usage.operators.contains_key("groupby"));
    assert!(usage.widgets.contains_key("Pie"));
}

#[test]
fn consumer_sees_producer_refresh_without_rerunning_flows() {
    // §4.5.3 point 4: consumption dashboards iterate quickly because long
    // flows only run on the producer.
    let platform = seeded_platform();
    platform.save_flow("producer", PRODUCER).unwrap();
    platform.run_dashboard("producer").unwrap();
    platform.save_flow("consumer", CONSUMER).unwrap();

    let before = platform
        .open_dashboard("consumer")
        .unwrap()
        .data_of("brand_pie")
        .unwrap();

    // Producer's data shrinks to two brands; re-run refreshes the snapshot.
    platform.upload_data(
        "producer",
        "sales.csv",
        "date,brand,region,units,revenue\n2014-06-01,Acme Cola,north,3,4.5\n2014-06-02,Zest Tea,south,1,2.0\n",
    );
    platform.run_dashboard("producer").unwrap();

    // Editing the consumer triggers no batch work (it has no flows), yet
    // its view reflects the refreshed shared object.
    platform
        .save_flow("consumer", &format!("{CONSUMER}# tweaked\n"))
        .unwrap();
    let after = platform
        .open_dashboard("consumer")
        .unwrap()
        .data_of("brand_pie")
        .unwrap();
    assert!(before.num_rows() > after.num_rows());
    assert_eq!(after.num_rows(), 2);
}

#[test]
fn meta_and_discovery_close_the_loop() {
    let platform = seeded_platform();
    platform.save_flow("producer", PRODUCER).unwrap();
    platform.run_dashboard("producer").unwrap();

    // Meta-dashboard profiles all five materialised objects.
    let (meta, _) = platform.open_meta_dashboard("producer").unwrap();
    let objects: std::collections::BTreeSet<String> = (0..meta.profile.num_rows())
        .map(|i| meta.profile.value(i, "object").unwrap().to_string())
        .collect();
    for expected in ["sales", "products", "brand_totals", "brand_catalog"] {
        assert!(objects.contains(expected), "{objects:?}");
    }

    // A second dashboard with a 'brand' column discovers the catalog.
    platform.upload_data(
        "marketing",
        "spend.csv",
        "brand,channel,spend\nAcme Cola,tv,100\n",
    );
    platform
        .save_flow(
            "marketing",
            "D:\n  spend: [brand, channel, spend]\nD.spend:\n  source: 'spend.csv'\n  format: csv\nT:\n  t:\n    type: groupby\n    groupby: [brand]\n    aggregates:\n    - operator: sum\n      apply_on: spend\n      out_field: total_spend\nF:\n  +D.spend_by_brand: D.spend | T.t\n",
        )
        .unwrap();
    platform.run_dashboard("marketing").unwrap();
    let suggestions = platform
        .suggest_enrichments("marketing", "spend_by_brand")
        .unwrap();
    assert_eq!(suggestions.len(), 1);
    assert_eq!(suggestions[0].publish_name, "brand_catalog");
    assert!(suggestions[0].join_keys.contains(&"brand".to_string()));
    assert!(
        suggestions[0].key_is_unique,
        "brand is unique in the catalog"
    );
}

#[test]
fn failed_runs_keep_prior_endpoints_intact() {
    let platform = seeded_platform();
    platform.save_flow("producer", PRODUCER).unwrap();
    platform.run_dashboard("producer").unwrap();
    let good_rows = platform
        .dashboard("producer")
        .unwrap()
        .endpoint_tables
        .get("brand_catalog")
        .unwrap()
        .num_rows();

    // Break the data source so the next run fails at load time.
    platform.upload_data(
        "producer",
        "sales.csv",
        "not,a,matching\nheader,count,x,y\n",
    );
    let err = platform.run_dashboard("producer").unwrap_err();
    assert!(err.to_string().contains("sales"), "{err}");

    // The previously materialised endpoint survives for consumers.
    let still = platform
        .dashboard("producer")
        .unwrap()
        .endpoint_tables
        .get("brand_catalog")
        .unwrap()
        .num_rows();
    assert_eq!(still, good_rows);
    // And the failure is in the telemetry error log.
    assert!(platform
        .log()
        .errors()
        .iter()
        .any(|(d, m)| d == "producer" && m.contains("sales")));
}

#[test]
fn many_dashboards_coexist() {
    let platform = seeded_platform();
    platform.save_flow("producer", PRODUCER).unwrap();
    platform.run_dashboard("producer").unwrap();

    // A fork inherits the producer's `publish:` line, so running it
    // verbatim collides with the original's shared-object name — the
    // registry rejects it cleanly instead of silently hijacking.
    platform
        .fork_dashboard("producer", "team_0", "bot")
        .unwrap();
    let err = platform.run_dashboard("team_0").unwrap_err();
    assert!(
        err.to_string().contains("already published"),
        "publish collision surfaces cleanly: {err}"
    );

    // Twenty forks, each independently runnable after dropping the publish
    // (the flows and endpoints are otherwise identical).
    let unpublished = PRODUCER.replace("  D.brand_catalog:\n    publish: brand_catalog\n", "");
    for i in 0..20 {
        let name = format!("team_{i}");
        if i > 0 {
            platform.fork_dashboard("producer", &name, "bot").unwrap();
        }
        platform.save_flow(&name, &unpublished).unwrap();
        let run = platform.run_dashboard(&name).unwrap();
        assert_eq!(
            run.result.table("brand_catalog").unwrap().num_rows(),
            12,
            "{name}"
        );
    }
    assert_eq!(platform.dashboard_names().len(), 21);
}

#[test]
fn value_semantics_survive_the_whole_stack() {
    // A float revenue aggregated through the full stack keeps numeric
    // identity from CSV text to the REST JSON.
    let platform = Platform::new();
    platform.upload_data(
        "p",
        "sales.csv",
        "brand,revenue\nacme,0.125\nacme,0.25\nzest,1.5\n",
    );
    platform
        .save_flow(
            "p",
            "D:\n  sales: [brand, revenue]\nD.sales:\n  source: 'sales.csv'\n  format: csv\nT:\n  t:\n    type: groupby\n    groupby: [brand]\n    aggregates:\n    - operator: sum\n      apply_on: revenue\n      out_field: total\nF:\n  +D.out: D.sales | T.t\n",
        )
        .unwrap();
    let run = platform.run_dashboard("p").unwrap();
    let t = run.result.table("out").unwrap();
    assert_eq!(t.value(0, "total").unwrap(), Value::Float(0.375));

    use shareinsights::server::{Request, Server};
    let server = Server::new(platform);
    let r = server.handle(&Request::get("/p/ds/out/filter/brand/acme"));
    let doc = shareinsights::tabular::io::json::parse_json(&r.body).unwrap();
    assert_eq!(
        doc.path("rows.0.1").unwrap().to_value().as_float(),
        Some(0.375)
    );
}
