//! Dual-mode conformance for live streaming flows.
//!
//! A subscriber must observe the same stream regardless of which serving
//! core delivers it: for the same tick sequence, the thread-per-connection
//! pool and the epoll reactor must push byte-identical generation-delta
//! frames. That holds by construction — frames are built once, at publish
//! time, in the router — and these tests pin the construction down at the
//! wire level.

use shareinsights::server::{
    blocking_get, blocking_request, serve, ClientConnection, ServeMode, ServeOptions, Server,
    ServiceHandle, SseSubscriber,
};
use shareinsights_core::Platform;
use shareinsights_tabular::io::json::parse_json;
use std::time::Duration;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
  D.brand_sales:
    publish: brand_sales
"#;

const BOTH_MODES: [ServeMode; 2] = [ServeMode::ThreadPerConnection, ServeMode::Reactor];

/// The tick sequence every test pushes — identical across modes, so the
/// resulting frames must be too.
const TICKS: [&str; 3] = [
    "north,stream_brand,5\nsouth,stream_brand,7\n",
    "north,stream_brand,11\n",
    "south,other_brand,2\nsouth,other_brand,3\n",
];

fn retail_platform() -> Platform {
    let platform = Platform::new();
    let mut csv = String::from("region,brand,revenue\n");
    for i in 0..4 {
        let region = if i % 2 == 0 { "north" } else { "south" };
        csv.push_str(&format!("{region},brand_number_{i},{}\n", i * 3 + 1));
    }
    platform.upload_data("retail", "sales.csv", &csv);
    platform.save_flow("retail", FLOW).unwrap();
    platform.run_dashboard("retail").unwrap();
    platform
}

fn retail_service(mode: ServeMode) -> ServiceHandle {
    let opts = ServeOptions {
        serve_mode: mode,
        ..ServeOptions::default()
    };
    serve(Server::new(retail_platform()), "127.0.0.1:0", opts).expect("bind ephemeral port")
}

/// Drain events from `sub` until `want` have arrived (or time runs out).
fn collect(sub: &mut SseSubscriber, want: usize) -> Vec<shareinsights::server::SseEvent> {
    let mut events = Vec::new();
    for _ in 0..40 {
        if events.len() >= want {
            break;
        }
        match sub.next_events(Duration::from_millis(250)) {
            Ok(batch) => events.extend(batch),
            Err(e) => panic!("subscriber read failed: {e}"),
        }
        if sub.terminated() {
            break;
        }
    }
    events
}

fn stat(stats_body: &str, path: &str) -> i64 {
    parse_json(stats_body)
        .unwrap()
        .path(path)
        .unwrap_or_else(|| panic!("no {path} in {stats_body}"))
        .to_value()
        .as_int()
        .unwrap_or_else(|| panic!("{path} not an int in {stats_body}"))
}

#[test]
fn subscribers_receive_identical_frames_in_both_modes() {
    let mut per_mode: Vec<Vec<Vec<u8>>> = Vec::new();
    for mode in BOTH_MODES {
        let mut svc = retail_service(mode);
        let addr = svc.local_addr();

        let (code, body) =
            blocking_request(addr, "POST", "/dashboards/retail/stream/start", "").unwrap();
        assert_eq!(code, 200, "{mode:?}: {body}");

        let conn = ClientConnection::connect(addr).unwrap();
        let mut sub = conn.subscribe("/retail/ds/brand_sales/subscribe").unwrap();

        // The initial snapshot frame arrives before any tick.
        let snapshot = collect(&mut sub, 1);
        assert_eq!(snapshot.len(), 1, "{mode:?}: want one snapshot frame");
        assert_eq!(snapshot[0].event, "brand_sales", "{mode:?}");

        for tick in TICKS {
            let (code, body) =
                blocking_request(addr, "POST", "/dashboards/retail/stream/push/sales", tick)
                    .unwrap();
            assert_eq!(code, 200, "{mode:?}: {body}");
        }

        let deltas = collect(&mut sub, TICKS.len());
        assert_eq!(deltas.len(), TICKS.len(), "{mode:?}: one frame per tick");

        // Generations advance strictly — every frame supersedes the last.
        let mut last = snapshot[0].id;
        for event in &deltas {
            assert!(
                event.id > last,
                "{mode:?}: generation {} after {last}",
                event.id
            );
            last = event.id;
        }

        per_mode.push(
            snapshot
                .iter()
                .chain(deltas.iter())
                .map(|e| e.raw.clone())
                .collect(),
        );
        svc.shutdown();
    }

    // The acceptance bar: byte-identical frames, mode against mode.
    assert_eq!(
        per_mode[0], per_mode[1],
        "thread-mode and reactor subscribers diverged"
    );
}

#[test]
fn disconnecting_subscriber_is_reaped_in_both_modes() {
    for mode in BOTH_MODES {
        let mut svc = retail_service(mode);
        let addr = svc.local_addr();

        let (code, _) =
            blocking_request(addr, "POST", "/dashboards/retail/stream/start", "").unwrap();
        assert_eq!(code, 200, "{mode:?}");

        let conn = ClientConnection::connect(addr).unwrap();
        let mut sub = conn.subscribe("/retail/ds/brand_sales/subscribe").unwrap();
        assert_eq!(collect(&mut sub, 1).len(), 1, "{mode:?}");

        let (_, stats) = blocking_get(addr, "/stats").unwrap();
        assert_eq!(stat(&stats, "stream.subscribers"), 1, "{mode:?}: {stats}");

        // Hang up without unsubscribing; the serving loop must notice and
        // tidy the registration on its own.
        drop(sub);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (_, stats) = blocking_get(addr, "/stats").unwrap();
            if stat(&stats, "stream.subscribers") == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{mode:?}: subscriber gauge never returned to zero: {stats}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        svc.shutdown();
    }
}
