//! Exposition under fire: `/metrics` scraped concurrently with stream
//! pushes, telemetry self-scrapes, and regular queries, in both serve
//! modes.
//!
//! The exposition must stay *well-formed* (every `# TYPE` family has
//! samples, every sample line parses with a numeric value) and counters
//! must stay *monotonic* from any single observer's point of view — a
//! scrape racing a publish may see the counter before or after the bump,
//! but never a smaller value than a previous scrape saw.

use shareinsights::server::{serve, ClientConnection, ServeMode, ServeOptions, Server};
use shareinsights_core::Platform;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
  D.brand_sales:
    publish: brand_sales
"#;

fn retail_platform() -> Platform {
    let platform = Platform::new();
    platform.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,10\nsouth,zest,20\n",
    );
    platform.save_flow("retail", FLOW).unwrap();
    platform.run_dashboard("retail").unwrap();
    platform
}

/// Parse one exposition document: assert structural well-formedness and
/// return the counter samples as `name{labels} -> value`.
fn validate_exposition(text: &str) -> HashMap<String, f64> {
    let mut counters = HashMap::new();
    let mut current_type: Option<(String, String)> = None;
    let mut samples_for_current = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, _)) = &current_type {
                assert!(samples_for_current > 0, "TYPE {name} had no samples");
            }
            let mut it = rest.split_whitespace();
            let name = it.next().expect("metric name").to_string();
            let kind = it.next().expect("metric kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown kind in: {line}"
            );
            current_type = Some((name, kind));
            samples_for_current = 0;
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "only TYPE comments expected: {line}"
        );
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value: {line}"));
        assert!(value >= 0.0, "negative sample: {line}");
        let (name, kind) = current_type
            .as_ref()
            .unwrap_or_else(|| panic!("sample before any TYPE: {line}"));
        let base = series.split('{').next().unwrap();
        assert!(
            base.starts_with(name.as_str()),
            "sample {base} under TYPE {name}"
        );
        samples_for_current += 1;
        if kind == "counter" {
            counters.insert(series.to_string(), value);
        }
    }
    if let Some((name, _)) = &current_type {
        assert!(samples_for_current > 0, "TYPE {name} had no samples");
    }
    counters
}

#[test]
fn metrics_scrapes_race_pushes_and_stay_monotonic() {
    for mode in [ServeMode::ThreadPerConnection, ServeMode::Reactor] {
        let opts = ServeOptions {
            serve_mode: mode,
            workers: 6,
            scrape_interval: Some(Duration::from_millis(5)),
            ..ServeOptions::default()
        };
        let mut svc = serve(Server::new(retail_platform()), "127.0.0.1:0", opts).expect("bind");
        let addr = svc.local_addr();

        let mut conn = ClientConnection::connect(addr).unwrap();
        let (code, body) = conn
            .request("POST", "/dashboards/retail/stream/start", "")
            .unwrap();
        assert_eq!(code, 200, "{body}");

        let done = Arc::new(AtomicBool::new(false));

        // Two pushers ticking the live flow while scrapers read.
        let pushers: Vec<_> = (0..2)
            .map(|p| {
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut conn = ClientConnection::connect(addr).unwrap();
                    let mut i = 0;
                    while !done.load(Ordering::SeqCst) {
                        let row = format!("north,pusher_{p}_{i},1\n");
                        let (code, body) = conn
                            .request("POST", "/dashboards/retail/stream/push/sales", &row)
                            .unwrap();
                        assert_eq!(code, 200, "{body}");
                        i += 1;
                        if conn.server_closed() {
                            conn = ClientConnection::connect(addr).unwrap();
                        }
                    }
                })
            })
            .collect();

        // A query thread keeps the cache and route counters moving too.
        let querier = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut conn = ClientConnection::connect(addr).unwrap();
                while !done.load(Ordering::SeqCst) {
                    let (code, _) = conn
                        .get("/retail/ds/brand_sales/groupby/region/count/brand")
                        .unwrap();
                    assert_eq!(code, 200);
                    if conn.server_closed() {
                        conn = ClientConnection::connect(addr).unwrap();
                    }
                }
            })
        };

        // Three concurrent scrapers, each validating every response and
        // checking its own view of the counters never goes backwards.
        let scrapers: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut conn = ClientConnection::connect(addr).unwrap();
                    let mut last: HashMap<String, f64> = HashMap::new();
                    for _ in 0..25 {
                        let (code, body) = conn.get("/metrics").unwrap();
                        assert_eq!(code, 200);
                        let counters = validate_exposition(&body);
                        for (series, value) in &counters {
                            if let Some(prev) = last.get(series) {
                                assert!(
                                    value >= prev,
                                    "counter went backwards: {series} {prev} -> {value}"
                                );
                            }
                        }
                        last = counters;
                        if conn.server_closed() {
                            conn = ClientConnection::connect(addr).unwrap();
                        }
                    }
                })
            })
            .collect();

        for s in scrapers {
            s.join().expect("scraper thread");
        }
        done.store(true, Ordering::SeqCst);
        for p in pushers {
            p.join().expect("pusher thread");
        }
        querier.join().expect("querier thread");

        // Final scrape: self-scrape and stream counters actually moved.
        let (code, body) = conn.get("/metrics").unwrap();
        assert_eq!(code, 200);
        let counters = validate_exposition(&body);
        let scrapes = counters
            .get("shareinsights_selfscrape_scrapes_total")
            .copied()
            .unwrap_or(0.0);
        assert!(scrapes >= 1.0, "self-scraper ran ({mode:?})");
        let ticks = counters
            .get("shareinsights_stream_ticks_total")
            .copied()
            .unwrap_or(0.0);
        assert!(ticks >= 1.0, "pushes ticked the stream ({mode:?})");
        svc.shutdown();
    }
}
