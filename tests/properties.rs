//! Property-based tests (proptest) over the engine's core invariants.

use proptest::prelude::*;
use shareinsights::engine::baseline::execute_naive;
use shareinsights::engine::compile::{compile, CompileEnv};
use shareinsights::engine::exec::{ExecContext, Executor};
use shareinsights::engine::TaskRegistry;
use shareinsights::flowfile::parse_flow_file;
use shareinsights::tabular::io::csv::{read_csv, write_csv, CsvOptions};
use shareinsights::tabular::io::record::{read_records, write_records};
use shareinsights::tabular::ops::{
    groupby, join, sort, AggregateSpec, GroupBy, JoinCondition, JoinSpec, SortKey,
};
use shareinsights::tabular::agg::AggKind;
use shareinsights::tabular::{Bitmap, Row, Table, Value};

// ---------------------------------------------------------------------------
// Value / table generators
// ---------------------------------------------------------------------------

/// Values that survive CSV's textual round-trip unambiguously.
fn csv_safe_value() -> impl Strategy<Value = Value> + Clone {
    prop_oneof![
        3 => any::<i64>().prop_map(Value::Int),
        3 => "[a-z]{1,8}".prop_map(Value::Str),
        1 => Just(Value::Null),
        1 => any::<bool>().prop_map(Value::Bool),
    ]
}

/// Any value, including floats with full bit patterns (for the binary
/// format, which is exact).
fn any_value() -> impl Strategy<Value = Value> + Clone {
    prop_oneof![
        3 => any::<i64>().prop_map(Value::Int),
        2 => any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        3 => "[ -~]{0,12}".prop_map(Value::Str),
        1 => Just(Value::Null),
        1 => any::<bool>().prop_map(Value::Bool),
        1 => (-100_000i32..100_000).prop_map(Value::Date),
    ]
}

/// A table with `cols` homogeneous columns of `rows` rows.
fn table(
    rows: std::ops::Range<usize>,
    cols: usize,
    value: impl Strategy<Value = Value> + Clone,
) -> impl Strategy<Value = Table> {
    rows.prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::vec(value.clone(), cols),
            n..=n,
        )
        .prop_map(move |rows| {
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let rows: Vec<Row> = rows.into_iter().map(Row::from_values).collect();
            // Mixed-type columns unify through the lossy lattice; that can
            // stringify cells, so compare via to_rows() after construction.
            Table::from_rows(&names, &rows).expect("generated tables are rectangular")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- payload formats --------------------------------------------------

    /// The binary record format round-trips any table exactly.
    #[test]
    fn record_format_roundtrips(t in table(0..30, 3, any_value())) {
        let bytes = write_records(&t);
        let back = read_records(&bytes).unwrap();
        prop_assert_eq!(&t, &back);
        prop_assert!(t.schema().same_shape(back.schema()));
    }

    /// CSV round-trips tables whose cells have unambiguous text forms.
    #[test]
    fn csv_roundtrips_safe_tables(t in table(0..30, 3, csv_safe_value())) {
        let text = write_csv(&t, ',');
        let back = read_csv(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(t.num_rows(), back.num_rows());
        prop_assert_eq!(t.to_rows(), back.to_rows());
    }

    // --- bitmap laws -------------------------------------------------------

    #[test]
    fn bitmap_boolean_algebra(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let a = Bitmap::from_bools(&bits);
        let not_a = a.not();
        prop_assert!(a.and(&not_a).none_set(), "a ∧ ¬a = ∅");
        prop_assert!(a.or(&not_a).all_set() || a.is_empty(), "a ∨ ¬a = ⊤");
        prop_assert_eq!(a.not().not(), a.clone(), "double negation");
        prop_assert_eq!(a.count_ones() + not_a.count_ones(), bits.len());
        prop_assert_eq!(a.ones().len(), a.count_ones());
    }

    // --- operator invariants ----------------------------------------------

    /// Group-by partition law: group counts sum to the row count, and the
    /// per-group sums add up to the column total.
    #[test]
    fn groupby_partitions(t in table(0..60, 2, prop_oneof![
        2 => (0i64..5).prop_map(Value::Int),
        1 => Just(Value::Null),
    ])) {
        let cfg = GroupBy::with_aggregates(
            &["c0"],
            vec![
                AggregateSpec::new(AggKind::CountAll, "", "n"),
                AggregateSpec::new(AggKind::Sum, "c1", "total"),
            ],
        );
        let out = groupby(&t, &cfg).unwrap();
        let n_sum: i64 = (0..out.num_rows())
            .filter_map(|i| out.value(i, "n").unwrap().as_int())
            .sum();
        prop_assert_eq!(n_sum as usize, t.num_rows());
        let group_total: i64 = (0..out.num_rows())
            .filter_map(|i| out.value(i, "total").unwrap().as_int())
            .sum();
        let direct_total: i64 = (0..t.num_rows())
            .filter_map(|i| t.value(i, "c1").unwrap().as_int())
            .sum();
        prop_assert_eq!(group_total, direct_total);
        // Group keys are unique.
        let keys: std::collections::HashSet<String> = (0..out.num_rows())
            .map(|i| out.value(i, "c0").unwrap().to_string())
            .collect();
        prop_assert_eq!(keys.len(), out.num_rows());
    }

    /// Join cardinality laws across all conditions.
    #[test]
    fn join_cardinalities(
        l in table(0..25, 2, (0i64..6).prop_map(Value::Int)),
        r in table(0..25, 2, (0i64..6).prop_map(Value::Int)),
    ) {
        let spec = |c| JoinSpec::on(&["c0"], c);
        let inner = join(&l, &r, &spec(JoinCondition::Inner)).unwrap();
        let left = join(&l, &r, &spec(JoinCondition::LeftOuter)).unwrap();
        let right = join(&l, &r, &spec(JoinCondition::RightOuter)).unwrap();
        let full = join(&l, &r, &spec(JoinCondition::FullOuter)).unwrap();
        prop_assert!(inner.num_rows() <= l.num_rows() * r.num_rows());
        prop_assert!(left.num_rows() >= l.num_rows());
        prop_assert!(right.num_rows() >= r.num_rows());
        prop_assert!(full.num_rows() >= left.num_rows().max(right.num_rows()));
        prop_assert_eq!(
            full.num_rows(),
            left.num_rows() + right.num_rows() - inner.num_rows(),
            "inclusion-exclusion over matches"
        );
    }

    /// Sort produces an ordered permutation of its input.
    #[test]
    fn sort_is_ordered_permutation(t in table(0..50, 2, any_value())) {
        let out = sort(&t, &[SortKey::asc("c0"), SortKey::desc("c1")]).unwrap();
        prop_assert_eq!(out.num_rows(), t.num_rows());
        let mut a = t.to_rows();
        let mut b = out.to_rows();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "permutation");
        for i in 1..out.num_rows() {
            let prev = out.value(i - 1, "c0").unwrap();
            let cur = out.value(i, "c0").unwrap();
            prop_assert!(prev <= cur, "ordered by c0");
        }
    }

    // --- executor equivalence (design decision 3) ---------------------------

    /// The columnar parallel executor and the naive row baseline agree on a
    /// filter→groupby pipeline over arbitrary data.
    #[test]
    fn executors_agree(t in table(1..60, 2, (0i64..8).prop_map(Value::Int))) {
        const SRC: &str = r#"
D:
  data: [c0, c1]
T:
  keep:
    type: filter_by
    filter_expression: c1 > 2
  agg:
    type: groupby
    groupby: [c0]
    aggregates:
    - operator: sum
      apply_on: c1
      out_field: total
F:
  +D.out: D.data | T.keep | T.agg
"#;
        let ff = parse_flow_file("p", SRC).unwrap();
        let reg = TaskRegistry::new();
        let pipeline = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        let ctx = ExecContext::new(shareinsights::connectors::Catalog::new())
            .with_table("data", t);
        let columnar = Executor::default().execute(&pipeline, &ctx).unwrap();
        let naive = execute_naive(&pipeline, &ctx).unwrap();
        let mut a = columnar.table("out").unwrap().to_rows();
        let mut b = naive.table("out").unwrap().to_rows();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    // --- flow-file language --------------------------------------------------

    /// Serialization round-trips generated flow files (flows + tasks).
    #[test]
    fn flowfile_roundtrips(
        names in proptest::collection::btree_set("[a-z]{2,6}", 1..5),
        spans in proptest::collection::vec(1u8..=6, 1..3),
    ) {
        let names: Vec<String> = names.into_iter().collect();
        let mut src = String::from("D:\n  src_obj: [k, v]\nT:\n");
        for n in &names {
            src.push_str(&format!("  t_{n}:\n    type: filter_by\n    filter_expression: v < 3\n"));
        }
        src.push_str("F:\n");
        for n in &names {
            src.push_str(&format!("  +D.out_{n}: D.src_obj | T.t_{n}\n"));
        }
        src.push_str("W:\n");
        for n in &names {
            src.push_str(&format!(
                "  w_{n}:\n    type: DataGrid\n    source: D.out_{n}\n"
            ));
        }
        src.push_str("L:\n  rows:\n");
        for (i, s) in spans.iter().enumerate() {
            let n = &names[i % names.len()];
            src.push_str(&format!("  - [span{s}: W.w_{n}]\n"));
        }
        let ff = parse_flow_file("gen", &src).unwrap();
        let text = shareinsights::flowfile::to_text(&ff);
        let ff2 = parse_flow_file("gen", &text).unwrap();
        let strip = |flows: &[shareinsights::flowfile::Flow]| -> Vec<shareinsights::flowfile::Flow> {
            flows
                .iter()
                .map(|f| {
                    let mut f = f.clone();
                    f.line = 0;
                    f
                })
                .collect()
        };
        prop_assert_eq!(strip(&ff.flows), strip(&ff2.flows));
        prop_assert_eq!(ff.tasks.len(), ff2.tasks.len());
        prop_assert_eq!(
            ff.layout.map(|l| l.rows),
            ff2.layout.map(|l| l.rows)
        );
    }

    /// Expression parser round-trips through Display.
    #[test]
    fn expr_display_roundtrips(
        col in "[a-z]{1,6}",
        n in -1000i64..1000,
        s in "[a-z]{0,6}",
    ) {
        use shareinsights::tabular::expr::parse_expr;
        for src in [
            format!("{col} < {n}"),
            format!("{col} == '{s}'"),
            format!("{col} > {n} and {col} contains '{s}'"),
            format!("not ({col} != {n}) or {col} in ['{s}', 'zz']"),
            format!("{col} * 2 + 1 >= {n}"),
        ] {
            let e = parse_expr(&src).unwrap();
            let printed = e.to_string();
            let e2 = parse_expr(&printed).unwrap();
            prop_assert_eq!(e, e2, "via '{}'", printed);
        }
    }

    // --- dates ------------------------------------------------------------

    /// Civil-calendar conversion round-trips over a wide day range, is
    /// monotone, and formats/parses consistently.
    #[test]
    fn civil_date_roundtrip(days in -2_000_000i32..2_000_000) {
        use shareinsights::tabular::datefmt::{civil_from_days, days_from_civil, DatePattern};
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        let (y2, m2, d2) = civil_from_days(days + 1);
        prop_assert!((y2, m2, d2) > (y, m, d), "monotone");
        if (0..=9999).contains(&y) {
            let pat = DatePattern::compile("yyyy-MM-dd").unwrap();
            let text = format!("{y:04}-{m:02}-{d:02}");
            let parsed = pat.parse(&text).unwrap();
            prop_assert_eq!(parsed.epoch_days(), days);
            prop_assert_eq!(pat.format(&parsed), text);
        }
    }

    // --- collaboration -----------------------------------------------------

    /// §4.5.1's merge claim: edits to *different* named tasks never
    /// conflict, whatever the edits are.
    #[test]
    fn disjoint_task_edits_merge_clean(
        ours_limit in 1u32..100,
        theirs_limit in 1u32..100,
    ) {
        use shareinsights::collab::merge_texts;
        let base = "T:\n  alpha:\n    type: limit\n    limit: 10\n  beta:\n    type: limit\n    limit: 20\n";
        let ours = base.replace("limit: 10", &format!("limit: {ours_limit}"));
        let theirs = base.replace("limit: 20", &format!("limit: {theirs_limit}"));
        let out = merge_texts("d", base, &ours, &theirs).unwrap();
        prop_assert!(out.is_clean(), "{:?}", out.conflicts);
        let merged = out.merged;
        let ours_s = ours_limit.to_string();
        let theirs_s = theirs_limit.to_string();
        prop_assert_eq!(
            merged.task("alpha").unwrap().params.get_scalar("limit"),
            Some(ours_s.as_str())
        );
        prop_assert_eq!(
            merged.task("beta").unwrap().params.get_scalar("limit"),
            Some(theirs_s.as_str())
        );
    }

    // --- two execution contexts, one task model (design decision 3) ---------

    /// A widget's interaction flow evaluated through the data cube produces
    /// the same rows as applying the selection to the batch kernels
    /// directly: the paper's claim that one task model serves both the
    /// Hadoop and the JavaScript runtime.
    #[test]
    fn cube_equals_batch_under_selection(
        t in table(1..50, 2, (0i64..6).prop_map(Value::Int)),
        selected in 0i64..6,
    ) {
        use shareinsights::engine::selection::{Selection, StaticSelections};
        use shareinsights::engine::task::{FilterSource, NamedTask, TaskKind, TaskRuntime};
        use shareinsights::widgets::DataCube;

        let tasks = vec![
            NamedTask {
                name: "filter".into(),
                kind: TaskKind::FilterBySource {
                    columns: vec!["c0".into()],
                    source: FilterSource::Widget("list".into()),
                    source_columns: vec!["text".into()],
                },
            },
            NamedTask {
                name: "agg".into(),
                kind: TaskKind::GroupBy {
                    builtin: GroupBy::with_aggregates(
                        &["c0"],
                        vec![AggregateSpec::new(AggKind::Sum, "c1", "total")],
                    ),
                    custom: vec![],
                },
            },
        ];
        let selections = StaticSelections::new();
        selections.set("list", "text", Selection::Values(vec![Value::Int(selected)]));

        // Interactive context.
        let cube = DataCube::new(t.clone());
        let via_cube = cube.eval("w", &tasks, &selections).unwrap();

        // Batch context: the same kernels with the same runtime.
        let lookup = |_: &str| None;
        let rt = TaskRuntime {
            selections: Some(&selections),
            lookup_table: &lookup,
        };
        let mut via_batch = t;
        for task in &tasks {
            via_batch = task
                .kind
                .execute(&task.name, std::slice::from_ref(&via_batch), &rt)
                .unwrap();
        }
        let mut a = via_cube.to_rows();
        let mut b = via_batch.to_rows();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    // --- layout -------------------------------------------------------------

    /// Solved layouts never overlap and never exceed the viewport width.
    #[test]
    fn layout_never_overlaps(rows in proptest::collection::vec(
        proptest::collection::vec(1u8..=6, 1..3),
        1..5,
    )) {
        use shareinsights::flowfile::ast::{LayoutCell, LayoutDef};
        use shareinsights::layout::{overlaps, solve, Viewport};
        let mut counter = 0;
        let layout = LayoutDef {
            description: None,
            rows: rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|&s| {
                            counter += 1;
                            LayoutCell { span: s, widget: format!("w{counter}") }
                        })
                        .collect()
                })
                .collect(),
            line: 0,
        };
        for vp in [Viewport::desktop(), Viewport::mobile()] {
            let placements = solve(&layout, &vp).unwrap();
            for p in &placements {
                prop_assert!(p.x + p.width <= vp.width);
            }
            for i in 0..placements.len() {
                for j in i + 1..placements.len() {
                    prop_assert!(!overlaps(&placements[i], &placements[j]));
                }
            }
        }
    }
}
