//! Property-style tests over the engine's core invariants.
//!
//! Formerly proptest-based; the offline build environment cannot fetch
//! crates.io, so the same invariants are now exercised with a seeded local
//! RNG (`datagen::SeededRng`) over 64 generated cases each. Failures are
//! reproducible: every case derives from a fixed seed.

use shareinsights::datagen::SeededRng;
use shareinsights::engine::baseline::execute_naive;
use shareinsights::engine::compile::{compile, CompileEnv};
use shareinsights::engine::exec::{ExecContext, Executor};
use shareinsights::engine::TaskRegistry;
use shareinsights::flowfile::parse_flow_file;
use shareinsights::tabular::agg::AggKind;
use shareinsights::tabular::io::csv::{read_csv, write_csv, CsvOptions};
use shareinsights::tabular::io::record::{read_records, write_records};
use shareinsights::tabular::ops::{
    groupby, join, sort, AggregateSpec, GroupBy, JoinCondition, JoinSpec, SortKey,
};
use shareinsights::tabular::{Bitmap, Row, Table, Value};

const CASES: usize = 64;

// ---------------------------------------------------------------------------
// Value / table generators
// ---------------------------------------------------------------------------

fn lower_string(r: &mut SeededRng, lo: usize, hi: usize) -> String {
    let len = lo + r.index(hi - lo + 1);
    (0..len)
        .map(|_| (b'a' + r.index(26) as u8) as char)
        .collect()
}

fn printable_string(r: &mut SeededRng, lo: usize, hi: usize) -> String {
    let len = lo + r.index(hi - lo + 1);
    (0..len)
        .map(|_| (b' ' + r.index(95) as u8) as char)
        .collect()
}

/// Values that survive CSV's textual round-trip unambiguously.
fn csv_safe_value(r: &mut SeededRng) -> Value {
    match r.weighted_index(&[3.0, 3.0, 1.0, 1.0]) {
        0 => Value::Int(r.int_range(i64::MIN, i64::MAX)),
        1 => Value::Str(lower_string(r, 1, 8)),
        2 => Value::Null,
        _ => Value::Bool(r.chance(0.5)),
    }
}

/// Any value, including floats (for the binary format, which is exact).
fn any_value(r: &mut SeededRng) -> Value {
    match r.weighted_index(&[3.0, 2.0, 3.0, 1.0, 1.0, 1.0]) {
        0 => Value::Int(r.int_range(i64::MIN, i64::MAX)),
        1 => loop {
            let f = f64::from_bits(r.next_u64());
            if f.is_finite() {
                break Value::Float(f);
            }
        },
        2 => Value::Str(printable_string(r, 0, 12)),
        3 => Value::Null,
        4 => Value::Bool(r.chance(0.5)),
        _ => Value::Date(r.int_range(-100_000, 99_999) as i32),
    }
}

fn small_int(lo: i64, hi_exclusive: i64) -> impl Fn(&mut SeededRng) -> Value {
    move |r| Value::Int(r.int_range(lo, hi_exclusive - 1))
}

/// A table with `cols` homogeneous columns and a row count in `[lo, hi)`.
fn gen_table(
    r: &mut SeededRng,
    lo: usize,
    hi: usize,
    cols: usize,
    value: &dyn Fn(&mut SeededRng) -> Value,
) -> Table {
    let n = lo + r.index(hi - lo);
    let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
    let rows: Vec<Row> = (0..n)
        .map(|_| Row::from_values((0..cols).map(|_| value(r)).collect()))
        .collect();
    // Mixed-type columns unify through the lossy lattice; that can
    // stringify cells, so compare via to_rows() after construction.
    Table::from_rows(&names, &rows).expect("generated tables are rectangular")
}

// ---------------------------------------------------------------------------
// Payload formats
// ---------------------------------------------------------------------------

/// The binary record format round-trips any table exactly.
#[test]
fn record_format_roundtrips() {
    let mut r = SeededRng::new(0xF0F0_0001);
    for _ in 0..CASES {
        let t = gen_table(&mut r, 0, 30, 3, &any_value);
        let bytes = write_records(&t);
        let back = read_records(&bytes).unwrap();
        assert_eq!(t, back);
        assert!(t.schema().same_shape(back.schema()));
    }
}

/// CSV round-trips tables whose cells have unambiguous text forms.
#[test]
fn csv_roundtrips_safe_tables() {
    let mut r = SeededRng::new(0xF0F0_0002);
    for _ in 0..CASES {
        let t = gen_table(&mut r, 0, 30, 3, &csv_safe_value);
        let text = write_csv(&t, ',');
        let back = read_csv(&text, &CsvOptions::default()).unwrap();
        assert_eq!(t.num_rows(), back.num_rows());
        assert_eq!(t.to_rows(), back.to_rows());
    }
}

// ---------------------------------------------------------------------------
// Bitmap laws
// ---------------------------------------------------------------------------

#[test]
fn bitmap_boolean_algebra() {
    let mut r = SeededRng::new(0xF0F0_0003);
    for _ in 0..CASES {
        let bits: Vec<bool> = (0..r.index(200)).map(|_| r.chance(0.5)).collect();
        let a = Bitmap::from_bools(&bits);
        let not_a = a.not();
        assert!(a.and(&not_a).none_set(), "a ∧ ¬a = ∅");
        assert!(a.or(&not_a).all_set() || a.is_empty(), "a ∨ ¬a = ⊤");
        assert_eq!(a.not().not(), a, "double negation");
        assert_eq!(a.count_ones() + not_a.count_ones(), bits.len());
        assert_eq!(a.ones().len(), a.count_ones());
    }
}

// ---------------------------------------------------------------------------
// Operator invariants
// ---------------------------------------------------------------------------

/// Group-by partition law: group counts sum to the row count, and the
/// per-group sums add up to the column total.
#[test]
fn groupby_partitions() {
    let mut r = SeededRng::new(0xF0F0_0004);
    let value = |r: &mut SeededRng| {
        if r.weighted_index(&[2.0, 1.0]) == 0 {
            Value::Int(r.int_range(0, 4))
        } else {
            Value::Null
        }
    };
    for _ in 0..CASES {
        let t = gen_table(&mut r, 0, 60, 2, &value);
        let cfg = GroupBy::with_aggregates(
            &["c0"],
            vec![
                AggregateSpec::new(AggKind::CountAll, "", "n"),
                AggregateSpec::new(AggKind::Sum, "c1", "total"),
            ],
        );
        let out = groupby(&t, &cfg).unwrap();
        let n_sum: i64 = (0..out.num_rows())
            .filter_map(|i| out.value(i, "n").unwrap().as_int())
            .sum();
        assert_eq!(n_sum as usize, t.num_rows());
        let group_total: i64 = (0..out.num_rows())
            .filter_map(|i| out.value(i, "total").unwrap().as_int())
            .sum();
        let direct_total: i64 = (0..t.num_rows())
            .filter_map(|i| t.value(i, "c1").unwrap().as_int())
            .sum();
        assert_eq!(group_total, direct_total);
        // Group keys are unique.
        let keys: std::collections::HashSet<String> = (0..out.num_rows())
            .map(|i| out.value(i, "c0").unwrap().to_string())
            .collect();
        assert_eq!(keys.len(), out.num_rows());
    }
}

/// Join cardinality laws across all conditions.
#[test]
fn join_cardinalities() {
    let mut r = SeededRng::new(0xF0F0_0005);
    for _ in 0..CASES {
        let l = gen_table(&mut r, 0, 25, 2, &small_int(0, 6));
        let rt = gen_table(&mut r, 0, 25, 2, &small_int(0, 6));
        let spec = |c| JoinSpec::on(&["c0"], c);
        let inner = join(&l, &rt, &spec(JoinCondition::Inner)).unwrap();
        let left = join(&l, &rt, &spec(JoinCondition::LeftOuter)).unwrap();
        let right = join(&l, &rt, &spec(JoinCondition::RightOuter)).unwrap();
        let full = join(&l, &rt, &spec(JoinCondition::FullOuter)).unwrap();
        assert!(inner.num_rows() <= l.num_rows() * rt.num_rows());
        assert!(left.num_rows() >= l.num_rows());
        assert!(right.num_rows() >= rt.num_rows());
        assert!(full.num_rows() >= left.num_rows().max(right.num_rows()));
        assert_eq!(
            full.num_rows(),
            left.num_rows() + right.num_rows() - inner.num_rows(),
            "inclusion-exclusion over matches"
        );
    }
}

/// Sort produces an ordered permutation of its input.
#[test]
fn sort_is_ordered_permutation() {
    let mut r = SeededRng::new(0xF0F0_0006);
    for _ in 0..CASES {
        let t = gen_table(&mut r, 0, 50, 2, &any_value);
        let out = sort(&t, &[SortKey::asc("c0"), SortKey::desc("c1")]).unwrap();
        assert_eq!(out.num_rows(), t.num_rows());
        let mut a = t.to_rows();
        let mut b = out.to_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b, "permutation");
        for i in 1..out.num_rows() {
            let prev = out.value(i - 1, "c0").unwrap();
            let cur = out.value(i, "c0").unwrap();
            assert!(prev <= cur, "ordered by c0");
        }
    }
}

// ---------------------------------------------------------------------------
// Executor equivalence (design decision 3)
// ---------------------------------------------------------------------------

/// The columnar parallel executor and the naive row baseline agree on a
/// filter→groupby pipeline over arbitrary data.
#[test]
fn executors_agree() {
    const SRC: &str = r#"
D:
  data: [c0, c1]
T:
  keep:
    type: filter_by
    filter_expression: c1 > 2
  agg:
    type: groupby
    groupby: [c0]
    aggregates:
    - operator: sum
      apply_on: c1
      out_field: total
F:
  +D.out: D.data | T.keep | T.agg
"#;
    let mut r = SeededRng::new(0xF0F0_0007);
    for _ in 0..CASES {
        let t = gen_table(&mut r, 1, 60, 2, &small_int(0, 8));
        let ff = parse_flow_file("p", SRC).unwrap();
        let reg = TaskRegistry::new();
        let pipeline = compile(&ff, &CompileEnv::bare(&reg)).unwrap();
        let ctx = ExecContext::new(shareinsights::connectors::Catalog::new()).with_table("data", t);
        let columnar = Executor::default().execute(&pipeline, &ctx).unwrap();
        let naive = execute_naive(&pipeline, &ctx).unwrap();
        let mut a = columnar.table("out").unwrap().to_rows();
        let mut b = naive.table("out").unwrap().to_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Flow-file language
// ---------------------------------------------------------------------------

/// Serialization round-trips generated flow files (flows + tasks).
#[test]
fn flowfile_roundtrips() {
    let mut r = SeededRng::new(0xF0F0_0008);
    for _ in 0..CASES {
        let names: Vec<String> = {
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..1 + r.index(4) {
                set.insert(lower_string(&mut r, 2, 6));
            }
            set.into_iter().collect()
        };
        let spans: Vec<u8> = (0..1 + r.index(2)).map(|_| 1 + r.index(6) as u8).collect();
        let mut src = String::from("D:\n  src_obj: [k, v]\nT:\n");
        for n in &names {
            src.push_str(&format!(
                "  t_{n}:\n    type: filter_by\n    filter_expression: v < 3\n"
            ));
        }
        src.push_str("F:\n");
        for n in &names {
            src.push_str(&format!("  +D.out_{n}: D.src_obj | T.t_{n}\n"));
        }
        src.push_str("W:\n");
        for n in &names {
            src.push_str(&format!(
                "  w_{n}:\n    type: DataGrid\n    source: D.out_{n}\n"
            ));
        }
        src.push_str("L:\n  rows:\n");
        for (i, s) in spans.iter().enumerate() {
            let n = &names[i % names.len()];
            src.push_str(&format!("  - [span{s}: W.w_{n}]\n"));
        }
        let ff = parse_flow_file("gen", &src).unwrap();
        let text = shareinsights::flowfile::to_text(&ff);
        let ff2 = parse_flow_file("gen", &text).unwrap();
        let strip =
            |flows: &[shareinsights::flowfile::Flow]| -> Vec<shareinsights::flowfile::Flow> {
                flows
                    .iter()
                    .map(|f| {
                        let mut f = f.clone();
                        f.line = 0;
                        f
                    })
                    .collect()
            };
        assert_eq!(strip(&ff.flows), strip(&ff2.flows));
        assert_eq!(ff.tasks.len(), ff2.tasks.len());
        assert_eq!(ff.layout.map(|l| l.rows), ff2.layout.map(|l| l.rows));
    }
}

/// Parse → serialize → parse is a *fixed point* on the canonical text for
/// generated valid flow files covering every section (D/T/F/W/L): one trip
/// through the serializer canonicalizes, after which serialization is the
/// identity. This is what lets the collaboration services (§4.5) diff and
/// merge flow files textually.
#[test]
fn flowfile_serialize_is_fixed_point() {
    let mut r = SeededRng::new(0xF0F0_000E);
    for _ in 0..CASES {
        // D: 1-3 source objects, some columns renamed from a source path.
        let n_data = 1 + r.index(3);
        let data_names: Vec<String> = (0..n_data).map(|i| format!("src{i}")).collect();
        let mut src = String::from("D:\n");
        for d in &data_names {
            let cols: Vec<String> = (0..1 + r.index(3))
                .map(|c| {
                    if r.chance(0.3) {
                        format!("c{c} => raw.f{c}")
                    } else {
                        format!("c{c}")
                    }
                })
                .collect();
            src.push_str(&format!("  {d}: [{}]\n", cols.join(", ")));
        }
        for d in &data_names {
            if r.chance(0.7) {
                src.push_str(&format!("D.{d}:\n  source: '{d}.csv'\n  format: csv\n"));
                if r.chance(0.3) {
                    src.push_str("  endpoint: true\n");
                }
                if r.chance(0.3) {
                    src.push_str(&format!("  publish: shared_{d}\n"));
                }
            }
        }
        // T: a mix of task shapes exercising scalar and list params.
        let n_tasks = 1 + r.index(3);
        let task_names: Vec<String> = (0..n_tasks).map(|i| format!("t{i}")).collect();
        src.push_str("T:\n");
        for t in &task_names {
            match r.index(3) {
                0 => src.push_str(&format!(
                    "  {t}:\n    type: filter_by\n    filter_expression: c0 < {}\n",
                    r.int_range(0, 99)
                )),
                1 => src.push_str(&format!(
                    "  {t}:\n    type: limit\n    limit: {}\n",
                    1 + r.index(50)
                )),
                _ => src.push_str(&format!("  {t}:\n    type: groupby\n    groupby: [c0]\n")),
            }
        }
        // F: one flow per task; occasionally a multi-input fan-in.
        src.push_str("F:\n");
        for (i, t) in task_names.iter().enumerate() {
            let plus = if r.chance(0.5) { "+" } else { "" };
            if n_data >= 2 && r.chance(0.3) {
                src.push_str(&format!(
                    "  {plus}D.out{i}: (D.{}, D.{}) | T.{t}\n",
                    data_names[0], data_names[1]
                ));
            } else {
                let input = &data_names[i % data_names.len()];
                src.push_str(&format!("  {plus}D.out{i}: D.{input} | T.{t}\n"));
            }
        }
        // W: widgets over flow outputs plus the occasional static source.
        src.push_str("W:\n");
        for (i, t) in task_names.iter().enumerate() {
            if r.chance(0.25) {
                src.push_str(&format!(
                    "  w{i}:\n    type: Slider\n    source: ['2013-05-0{}', '2013-05-2{}']\n    range: true\n",
                    1 + r.index(9),
                    r.index(8)
                ));
            } else {
                let tail = if r.chance(0.4) {
                    format!(" | T.{t}")
                } else {
                    String::new()
                };
                src.push_str(&format!(
                    "  w{i}:\n    type: DataGrid\n    source: D.out{i}{tail}\n"
                ));
            }
        }
        // L: every widget placed, sometimes under a description.
        src.push_str("L:\n");
        if r.chance(0.5) {
            src.push_str("  description: generated dashboard\n");
        }
        src.push_str("  rows:\n");
        for i in 0..task_names.len() {
            src.push_str(&format!("  - [span{}: W.w{i}]\n", 1 + r.index(12)));
        }

        let ff1 = parse_flow_file("gen", &src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let text1 = shareinsights::flowfile::to_text(&ff1);
        let ff2 = parse_flow_file("gen", &text1).unwrap_or_else(|e| panic!("{e}\n{text1}"));
        let text2 = shareinsights::flowfile::to_text(&ff2);
        assert_eq!(text1, text2, "canonical form is a fixed point for:\n{src}");
        // And a third trip stays put, so the fixed point is stable.
        let ff3 = parse_flow_file("gen", &text2).unwrap();
        assert_eq!(shareinsights::flowfile::to_text(&ff3), text2);
    }
}

/// Expression parser round-trips through Display.
#[test]
fn expr_display_roundtrips() {
    use shareinsights::tabular::expr::parse_expr;
    let mut r = SeededRng::new(0xF0F0_0009);
    for _ in 0..CASES {
        let col = lower_string(&mut r, 1, 6);
        let n = r.int_range(-1000, 999);
        let s = lower_string(&mut r, 0, 6);
        for src in [
            format!("{col} < {n}"),
            format!("{col} == '{s}'"),
            format!("{col} > {n} and {col} contains '{s}'"),
            format!("not ({col} != {n}) or {col} in ['{s}', 'zz']"),
            format!("{col} * 2 + 1 >= {n}"),
        ] {
            let e = parse_expr(&src).unwrap();
            let printed = e.to_string();
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(e, e2, "via '{printed}'");
        }
    }
}

// ---------------------------------------------------------------------------
// Dates
// ---------------------------------------------------------------------------

/// Civil-calendar conversion round-trips over a wide day range, is
/// monotone, and formats/parses consistently.
#[test]
fn civil_date_roundtrip() {
    use shareinsights::tabular::datefmt::{civil_from_days, days_from_civil, DatePattern};
    let mut r = SeededRng::new(0xF0F0_000A);
    for _ in 0..CASES * 4 {
        let days = r.int_range(-2_000_000, 1_999_999) as i32;
        let (y, m, d) = civil_from_days(days);
        assert_eq!(days_from_civil(y, m, d), days);
        assert!((1..=12).contains(&m));
        assert!((1..=31).contains(&d));
        let (y2, m2, d2) = civil_from_days(days + 1);
        assert!((y2, m2, d2) > (y, m, d), "monotone");
        if (0..=9999).contains(&y) {
            let pat = DatePattern::compile("yyyy-MM-dd").unwrap();
            let text = format!("{y:04}-{m:02}-{d:02}");
            let parsed = pat.parse(&text).unwrap();
            assert_eq!(parsed.epoch_days(), days);
            assert_eq!(pat.format(&parsed), text);
        }
    }
}

// ---------------------------------------------------------------------------
// Collaboration
// ---------------------------------------------------------------------------

/// §4.5.1's merge claim: edits to *different* named tasks never conflict,
/// whatever the edits are.
#[test]
fn disjoint_task_edits_merge_clean() {
    use shareinsights::collab::merge_texts;
    let mut r = SeededRng::new(0xF0F0_000B);
    for _ in 0..CASES {
        let ours_limit = r.int_range(1, 99) as u32;
        let theirs_limit = r.int_range(1, 99) as u32;
        let base = "T:\n  alpha:\n    type: limit\n    limit: 10\n  beta:\n    type: limit\n    limit: 20\n";
        let ours = base.replace("limit: 10", &format!("limit: {ours_limit}"));
        let theirs = base.replace("limit: 20", &format!("limit: {theirs_limit}"));
        let out = merge_texts("d", base, &ours, &theirs).unwrap();
        assert!(out.is_clean(), "{:?}", out.conflicts);
        let merged = out.merged;
        let ours_s = ours_limit.to_string();
        let theirs_s = theirs_limit.to_string();
        assert_eq!(
            merged.task("alpha").unwrap().params.get_scalar("limit"),
            Some(ours_s.as_str())
        );
        assert_eq!(
            merged.task("beta").unwrap().params.get_scalar("limit"),
            Some(theirs_s.as_str())
        );
    }
}

// ---------------------------------------------------------------------------
// Two execution contexts, one task model (design decision 3)
// ---------------------------------------------------------------------------

/// A widget's interaction flow evaluated through the data cube produces
/// the same rows as applying the selection to the batch kernels directly:
/// the paper's claim that one task model serves both the Hadoop and the
/// JavaScript runtime.
#[test]
fn cube_equals_batch_under_selection() {
    use shareinsights::engine::selection::{Selection, StaticSelections};
    use shareinsights::engine::task::{FilterSource, NamedTask, TaskKind, TaskRuntime};
    use shareinsights::widgets::DataCube;

    let mut r = SeededRng::new(0xF0F0_000C);
    for _ in 0..CASES {
        let t = gen_table(&mut r, 1, 50, 2, &small_int(0, 6));
        let selected = r.int_range(0, 5);
        let tasks = vec![
            NamedTask {
                name: "filter".into(),
                kind: TaskKind::FilterBySource {
                    columns: vec!["c0".into()],
                    source: FilterSource::Widget("list".into()),
                    source_columns: vec!["text".into()],
                },
            },
            NamedTask {
                name: "agg".into(),
                kind: TaskKind::GroupBy {
                    builtin: GroupBy::with_aggregates(
                        &["c0"],
                        vec![AggregateSpec::new(AggKind::Sum, "c1", "total")],
                    ),
                    custom: vec![],
                },
            },
        ];
        let selections = StaticSelections::new();
        selections.set(
            "list",
            "text",
            Selection::Values(vec![Value::Int(selected)]),
        );

        // Interactive context.
        let cube = DataCube::new(t.clone());
        let via_cube = cube.eval("w", &tasks, &selections).unwrap();

        // Batch context: the same kernels with the same runtime.
        let lookup = |_: &str| None;
        let rt = TaskRuntime {
            selections: Some(&selections),
            lookup_table: &lookup,
        };
        let mut via_batch = t;
        for task in &tasks {
            via_batch = task
                .kind
                .execute(&task.name, std::slice::from_ref(&via_batch), &rt)
                .unwrap();
        }
        let mut a = via_cube.to_rows();
        let mut b = via_batch.to_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

/// Solved layouts never overlap and never exceed the viewport width.
#[test]
fn layout_never_overlaps() {
    use shareinsights::flowfile::ast::{LayoutCell, LayoutDef};
    use shareinsights::layout::{overlaps, solve, Viewport};
    let mut r = SeededRng::new(0xF0F0_000D);
    for _ in 0..CASES {
        let rows: Vec<Vec<u8>> = (0..1 + r.index(4))
            .map(|_| (0..1 + r.index(2)).map(|_| 1 + r.index(6) as u8).collect())
            .collect();
        let mut counter = 0;
        let layout = LayoutDef {
            description: None,
            rows: rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&s| {
                            counter += 1;
                            LayoutCell {
                                span: s,
                                widget: format!("w{counter}"),
                            }
                        })
                        .collect()
                })
                .collect(),
            line: 0,
        };
        for vp in [Viewport::desktop(), Viewport::mobile()] {
            let placements = solve(&layout, &vp).unwrap();
            for p in &placements {
                assert!(p.x + p.width <= vp.width);
            }
            for i in 0..placements.len() {
                for j in i + 1..placements.len() {
                    assert!(!overlaps(&placements[i], &placements[j]));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SQL frontend
// ---------------------------------------------------------------------------

/// The SQL tokenizer/parser/lowering pipeline is total: any input string —
/// printable soup, structured fragments, or mutated valid statements —
/// terminates with either an AST or a spanned diagnostic. No panics, no
/// unbounded recursion.
#[test]
fn sql_parser_is_total() {
    use shareinsights::engine::sql::{lower, parse_select};
    let mut r = SeededRng::new(0xF0F0_000E);
    let seeds = [
        "select a, b from t where a = 'x' and b in (1, 2) group by a order by a desc limit 9",
        "select count(*) from t where x between 0 and 10 or y is not null offset 2",
        "select distinct \"col name\" from t join u on k = k2 -- trailing comment",
    ];
    for case in 0..CASES * 4 {
        let src = match case % 3 {
            0 => printable_string(&mut r, 0, 160),
            1 => {
                // Keyword soup: valid tokens in random order.
                let words = [
                    "select", "from", "where", "group", "by", "order", "limit", "offset", "and",
                    "or", "not", "in", "between", "is", "null", "(", ")", ",", "*", "'s'", "1",
                    "-2.5e3", "t", "sum", "join", "on", "=", "<>", "<=", ";",
                ];
                (0..r.index(30))
                    .map(|_| *r.pick(&words))
                    .collect::<Vec<_>>()
                    .join(" ")
            }
            _ => {
                // A valid statement with random single-char edits.
                let mut s: Vec<char> = r.pick(&seeds).chars().collect();
                for _ in 0..1 + r.index(5) {
                    if s.is_empty() {
                        break;
                    }
                    let i = r.index(s.len());
                    match r.index(3) {
                        0 => s[i] = (b' ' + r.index(95) as u8) as char,
                        1 => {
                            s.remove(i);
                        }
                        _ => s.insert(i, (b' ' + r.index(95) as u8) as char),
                    }
                }
                s.into_iter().collect()
            }
        };
        match parse_select(&src) {
            Ok(stmt) => {
                // Lowering is equally total, and diagnostics carry spans
                // inside the source (line 0 = whole statement).
                if let Err(e) = lower(&src, &stmt) {
                    assert!(e.line <= src.lines().count().max(1), "{src:?}: {e}");
                }
            }
            Err(e) => {
                assert!(!e.message.is_empty(), "{src:?}");
            }
        }
    }
}
