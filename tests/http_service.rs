//! End-to-end test of the TCP data-API service: concurrent clients, the
//! generation-stamped sharded query cache, keep-alive conformance, and
//! `/stats` observability.

use shareinsights::server::{
    blocking_get, blocking_request, serve, ClientConnection, ServeOptions, Server,
};
use shareinsights_core::Platform;
use shareinsights_tabular::io::json::parse_json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
  D.brand_sales:
    publish: brand_sales
"#;

fn retail_service(opts: ServeOptions) -> shareinsights::server::ServiceHandle {
    let platform = Platform::new();
    platform.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,10\nnorth,acme,5\nsouth,zest,20\nnorth,zest,1\n",
    );
    platform.save_flow("retail", FLOW).unwrap();
    platform.run_dashboard("retail").unwrap();
    serve(Server::new(platform), "127.0.0.1:0", opts).expect("bind ephemeral port")
}

fn stat(stats_body: &str, path: &str) -> i64 {
    parse_json(stats_body)
        .unwrap()
        .path(path)
        .unwrap_or_else(|| panic!("no {path} in {stats_body}"))
        .to_value()
        .as_int()
        .unwrap_or_else(|| panic!("{path} not an int in {stats_body}"))
}

#[test]
fn concurrent_clients_share_the_cache_and_publish_invalidates() {
    let platform = Platform::new();
    platform.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,10\nnorth,acme,5\nsouth,zest,20\nnorth,zest,1\n",
    );
    platform.save_flow("retail", FLOW).unwrap();
    platform.run_dashboard("retail").unwrap();

    // Clones share state, so this handle can re-upload data mid-test
    // (the SFTP-upload path of §4.3.2 has no HTTP route).
    let uploader = platform.clone();
    let mut svc = serve(
        Server::new(platform),
        "127.0.0.1:0",
        ServeOptions::default(),
    )
    .expect("bind ephemeral port");
    let addr = svc.local_addr();
    let query = "/retail/ds/brand_sales/groupby/region/count/brand";

    // Two concurrent clients issue the same groupby query.
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let (code, body) = blocking_get(addr, query).expect("request");
                    assert_eq!(code, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(bodies[0], bodies[1], "identical queries, identical results");

    // The first query filled the cache; this repeat is a guaranteed hit
    // (the concurrent pair may have raced, so allow 1 or 2 misses there).
    let (code, body) = blocking_get(addr, query).unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, bodies[0]);
    let (code, stats) = blocking_get(addr, "/stats").unwrap();
    assert_eq!(code, 200, "{stats}");
    let hits = stat(&stats, "cache.hits");
    let misses = stat(&stats, "cache.misses");
    assert_eq!(hits + misses, 3, "{stats}");
    assert!(hits >= 1, "a repeated query must hit the cache: {stats}");
    assert!(misses <= 2, "{stats}");
    let route = "routes.GET /:dashboard/ds/:dataset/query";
    assert_eq!(stat(&stats, &format!("{route}.count")), 3);
    assert_eq!(stat(&stats, &format!("{route}.cache_hits")), hits);
    assert_eq!(stat(&stats, &format!("{route}.errors")), 0);

    // A publish (the producer re-runs on new source data, refreshing its
    // published snapshot) bumps the dataset generation...
    uploader.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,100\nsouth,zest,20\n",
    );
    let (code, body) = blocking_request(addr, "POST", "/dashboards/retail/run", "").unwrap();
    assert_eq!(code, 200, "{body}");

    // ...so the next query is a miss and sees fresh results.
    let (code, fresh) = blocking_get(addr, query).unwrap();
    assert_eq!(code, 200);
    assert_ne!(fresh, bodies[0], "fresh results after the publish");
    let (_, stats) = blocking_get(addr, "/stats").unwrap();
    assert_eq!(stat(&stats, "cache.misses"), misses + 1, "{stats}");
    assert_eq!(stat(&stats, "cache.invalidations"), 1, "{stats}");

    svc.shutdown();
}

// ---------------------------------------------------------------------------
// Keep-alive conformance
// ---------------------------------------------------------------------------

/// N sequential requests over one connection get N correct responses, and
/// `/stats` sees the connection as reused.
#[test]
fn keepalive_sequential_requests_over_one_connection() {
    let mut svc = retail_service(ServeOptions::default());
    let addr = svc.local_addr();
    let mut conn = ClientConnection::connect(addr).unwrap();
    let n = 8;
    for i in 0..n {
        let target = if i % 2 == 0 {
            "/retail/ds/brand_sales"
        } else {
            "/retail/ds/brand_sales/groupby/region/count/brand"
        };
        let (code, body) = conn.request("GET", target, "").unwrap();
        assert_eq!(code, 200, "request {i}: {body}");
        assert!(body.starts_with('{'), "request {i} malformed: {body}");
        assert!(!conn.server_closed(), "closed early at request {i}");
    }
    drop(conn);
    // The per-connection request count only lands in /stats on close; the
    // drop above closes the socket, so poll briefly for the worker to see it.
    let mut reused = 0;
    for _ in 0..50 {
        let (_, stats) = blocking_get(addr, "/stats").unwrap();
        reused = stat(&stats, "connections.reused");
        if reused >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(reused >= 1, "the 8-request connection counts as reused");
    svc.shutdown();
}

/// `Connection: close` on request k terminates the connection after exactly
/// k responses.
#[test]
fn connection_close_on_request_k_terminates_after_k() {
    let mut svc = retail_service(ServeOptions::default());
    let mut conn = ClientConnection::connect(svc.local_addr()).unwrap();
    let (code, _) = conn.request("GET", "/retail/ds", "").unwrap();
    assert_eq!(code, 200);
    let (code, _) = conn.request("GET", "/retail/ds/brand_sales", "").unwrap();
    assert_eq!(code, 200);
    assert!(!conn.server_closed(), "still open after 2 keep-alives");
    let (code, body) = conn.request_close("GET", "/retail/ds", "").unwrap();
    assert_eq!(code, 200, "{body}");
    assert!(conn.server_closed(), "response 3 announced the close");
    assert!(
        conn.request("GET", "/retail/ds", "").is_err(),
        "request 4 must not be possible"
    );
    svc.shutdown();
}

/// A malformed second request closes the connection with a 400 — without
/// poisoning the first (well-formed) response.
#[test]
fn malformed_second_request_does_not_poison_first_response() {
    let mut svc = retail_service(ServeOptions::default());
    let mut stream = TcpStream::connect(svc.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /retail/ds HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    // Read the complete first response (framed by Content-Length).
    let first = read_one_response(&mut stream);
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    assert!(first.contains("brand_sales"), "{first}");
    // Now send garbage; the server answers 400 and closes.
    stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut rest = String::new();
    stream.read_to_string(&mut rest).unwrap();
    assert!(rest.starts_with("HTTP/1.1 400 Bad Request"), "{rest}");
    assert!(rest.contains("Connection: close"), "{rest}");
    svc.shutdown();
}

/// An idle keep-alive connection is closed quietly: EOF for the client, an
/// `idle_timeouts` tick in `/stats`, and no error on any route.
#[test]
fn idle_timeout_closes_quietly() {
    let opts = ServeOptions {
        idle_timeout: Duration::from_millis(150),
        ..ServeOptions::default()
    };
    let mut svc = retail_service(opts);
    let addr = svc.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /retail/ds HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    let first = read_one_response(&mut stream);
    assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
    // Go quiet past the idle window; the server closes with a clean EOF
    // (no 408, no error payload).
    std::thread::sleep(Duration::from_millis(400));
    let mut rest = String::new();
    stream.read_to_string(&mut rest).unwrap();
    assert_eq!(rest, "", "idle close sends nothing");
    let (_, stats) = blocking_get(addr, "/stats").unwrap();
    assert!(
        stat(&stats, "connections.idle_timeouts") >= 1,
        "idle close is accounted: {stats}"
    );
    let doc = parse_json(&stats).unwrap();
    assert!(
        doc.path("routes.(timeout)").is_none(),
        "an idle close is not a (timeout): {stats}"
    );
    assert_eq!(
        stat(&stats, "routes.GET /:dashboard/ds.errors"),
        0,
        "{stats}"
    );
    svc.shutdown();
}

/// Bugfix regression: a socket stall mid-request is accounted under the
/// `(timeout)` pseudo-route, and answered 408 when the head already parsed.
#[test]
fn mid_request_stall_is_counted_and_answered_408() {
    let opts = ServeOptions {
        io_timeout: Duration::from_millis(150),
        idle_timeout: Duration::from_secs(5),
        ..ServeOptions::default()
    };
    let mut svc = retail_service(opts);
    let addr = svc.local_addr();

    // Head fully parsed, body never arrives → 408 before the close.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"PUT /dashboards/retail/flow HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 408 Request Timeout"), "{out}");
    assert!(out.contains("Connection: close"), "{out}");

    // Head never completes → counted, closed without a response.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /retail/ds HTTP/1.1\r\nHos").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert_eq!(out, "", "mid-head stall gets no response");

    let (_, stats) = blocking_get(addr, "/stats").unwrap();
    assert_eq!(stat(&stats, "routes.(timeout).count"), 2, "{stats}");
    assert!(stat(&stats, "connections.io_timeouts") >= 2, "{stats}");
    svc.shutdown();
}

fn read_one_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).expect("response bytes");
        assert!(n > 0, "EOF before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let len: usize = head
        .lines()
        .find_map(|l| {
            l.split_once(':')
                .filter(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
        })
        .and_then(|(_, v)| v.trim().parse().ok())
        .expect("content-length");
    while buf.len() < head_end + 4 + len {
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).expect("body bytes");
        assert!(n > 0, "EOF mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    String::from_utf8_lossy(&buf[..head_end + 4 + len]).into_owned()
}

// ---------------------------------------------------------------------------
// Tracing and the event log
// ---------------------------------------------------------------------------

/// Two pipelined requests on one keep-alive connection, each with its own
/// `X-Trace-Id`: both trace trees must be retrievable afterwards, each
/// labeled with its own request.
#[test]
fn trace_ids_propagate_through_pipelined_keepalive_requests() {
    let mut svc = retail_service(ServeOptions::default());
    let addr = svc.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let batch = "GET /retail/ds HTTP/1.1\r\nContent-Length: 0\r\nX-Trace-Id: aa01\r\n\r\n\
                 GET /retail/ds/brand_sales HTTP/1.1\r\nContent-Length: 0\r\nX-Trace-Id: aa02\r\nConnection: close\r\n\r\n";
    stream.write_all(batch.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
    assert_eq!(
        out.matches("HTTP/1.1 200 OK").count(),
        2,
        "both pipelined responses answered: {out}"
    );

    let (code, body) = blocking_get(addr, "/trace/aa01").unwrap();
    assert_eq!(code, 200, "{body}");
    let doc = parse_json(&body).unwrap();
    assert_eq!(
        doc.path("root.name").unwrap().to_value().as_str(),
        Some("GET /:dashboard/ds")
    );
    assert_eq!(
        doc.path("root.attrs.path").unwrap().to_value().as_str(),
        Some("/retail/ds")
    );
    let (code, body) = blocking_get(addr, "/trace/aa02").unwrap();
    assert_eq!(code, 200, "{body}");
    let doc = parse_json(&body).unwrap();
    assert_eq!(
        doc.path("root.name").unwrap().to_value().as_str(),
        Some("GET /:dashboard/ds/:dataset")
    );
    assert_eq!(
        doc.path("root.attrs.status").unwrap().to_value().as_int(),
        Some(200)
    );
    svc.shutdown();
}

/// Concurrent traced requests must each assemble their own complete span
/// tree — no span leaks into another request's trace.
#[test]
fn span_trees_assemble_under_concurrent_requests() {
    let mut svc = retail_service(ServeOptions::default());
    let addr = svc.local_addr();
    let clients = 6;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut conn = ClientConnection::connect(addr).unwrap();
                let id = format!("cc{c:02x}");
                let (code, body) = conn
                    .request_with_headers(
                        "GET",
                        "/retail/ds/brand_sales/groupby/region/count/brand",
                        "",
                        &[("X-Trace-Id", &id)],
                    )
                    .unwrap();
                assert_eq!(code, 200, "{body}");
            });
        }
    });
    for c in 0..clients {
        let (code, body) = blocking_get(addr, &format!("/trace/cc{c:02x}")).unwrap();
        assert_eq!(code, 200, "trace cc{c:02x}: {body}");
        let doc = parse_json(&body).unwrap();
        assert_eq!(
            doc.path("root.children.0.name")
                .unwrap()
                .to_value()
                .as_str(),
            Some("dispatch"),
            "{body}"
        );
        // Exactly one root per trace; the dispatch child carries either a
        // cache_lookup (hit path) or cache_lookup + query_eval (miss path).
        let dispatch_children = doc.path("root.children.0.children").unwrap().items().len();
        assert!(
            (1..=2).contains(&dispatch_children),
            "dispatch has {dispatch_children} children: {body}"
        );
        assert!(body.contains("cache_lookup"), "{body}");
    }
    svc.shutdown();
}

/// The serving loop writes slow-request events (threshold 0 = everything)
/// with trace ids into the configured event log.
#[test]
fn event_log_records_slow_requests_end_to_end() {
    let log = shareinsights_core::EventLog::in_memory();
    let opts = ServeOptions {
        slow_request_threshold: Some(Duration::ZERO),
        event_log: log.clone(),
        ..ServeOptions::default()
    };
    let mut svc = retail_service(opts);
    let addr = svc.local_addr();
    let mut conn = ClientConnection::connect(addr).unwrap();
    let (code, _) = conn
        .request_with_headers("GET", "/retail/ds", "", &[("X-Trace-Id", "ee55")])
        .unwrap();
    assert_eq!(code, 200);
    svc.shutdown();
    let lines = log.lines();
    assert!(!lines.is_empty(), "event log captured the request");
    let slow: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"event\": \"slow_request\""))
        .collect();
    assert!(!slow.is_empty(), "{lines:?}");
    let doc = parse_json(slow[0]).unwrap();
    assert_eq!(
        doc.path("trace_id").unwrap().to_value().as_str(),
        Some("000000000000ee55")
    );
    assert_eq!(
        doc.path("path").unwrap().to_value().as_str(),
        Some("/retail/ds")
    );
    assert!(doc
        .path("elapsed_us")
        .unwrap()
        .to_value()
        .as_int()
        .is_some());
}

/// `/metrics` over TCP: Prometheus content type, per-operator histograms
/// from the dashboard run, and route counters from this very session.
#[test]
fn metrics_exposition_over_tcp() {
    let mut svc = retail_service(ServeOptions::default());
    let addr = svc.local_addr();
    blocking_get(addr, "/retail/ds/brand_sales").unwrap();
    let (code, body) = blocking_get(addr, "/metrics").unwrap();
    assert_eq!(code, 200);
    assert!(body.contains("# TYPE shareinsights_requests_total counter"));
    assert!(
        body.contains("shareinsights_operator_runs_total{operator=\"groupby\"} 1"),
        "{body}"
    );
    assert!(
        body.contains("# TYPE shareinsights_request_duration_seconds histogram"),
        "{body}"
    );
    assert!(body.contains("shareinsights_connections_accepted_total"));
    svc.shutdown();
}

#[test]
fn loadgen_shape_no_lost_or_malformed_responses() {
    let platform = Platform::new();
    platform.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nn,a,1\ns,b,2\n",
    );
    platform.save_flow("retail", FLOW).unwrap();
    platform.run_dashboard("retail").unwrap();

    let opts = ServeOptions {
        workers: 4,
        queue_depth: 256,
        ..ServeOptions::default()
    };
    let mut svc = serve(Server::new(platform), "127.0.0.1:0", opts).expect("bind");
    let addr = svc.local_addr();

    let clients = 8;
    let requests_per_client = 10;
    let oks: usize = std::thread::scope(|scope| {
        (0..clients)
            .map(|i| {
                scope.spawn(move || {
                    let mut ok = 0;
                    for j in 0..requests_per_client {
                        let target = if (i + j) % 3 == 0 {
                            "/retail/ds/brand_sales".to_string()
                        } else {
                            format!("/retail/ds/brand_sales/limit/{}", 1 + (j % 2))
                        };
                        let (code, body) = blocking_get(addr, &target).expect("response");
                        assert_eq!(code, 200, "{body}");
                        assert!(body.starts_with('{'), "malformed body: {body}");
                        ok += 1;
                    }
                    ok
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(oks, clients * requests_per_client, "no lost responses");

    let (_, stats) = blocking_get(addr, "/stats").unwrap();
    let hits = stat(&stats, "cache.hits");
    let misses = stat(&stats, "cache.misses");
    let total = (clients * requests_per_client) as i64;
    assert_eq!(hits + misses, total);
    // Three distinct cache keys; concurrent first touches may each miss
    // once per in-flight worker, but the steady state is all hits.
    assert!(misses >= 3, "{stats}");
    assert!(hits >= total / 2, "cache should dominate: {stats}");
    svc.shutdown();
}
