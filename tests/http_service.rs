//! End-to-end test of the TCP data-API service: concurrent clients, the
//! generation-stamped query cache, and `/stats` observability.

use shareinsights::server::{blocking_get, blocking_request, serve, ServeOptions, Server};
use shareinsights_core::Platform;
use shareinsights_tabular::io::json::parse_json;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
  D.brand_sales:
    publish: brand_sales
"#;

fn stat(stats_body: &str, path: &str) -> i64 {
    parse_json(stats_body)
        .unwrap()
        .path(path)
        .unwrap_or_else(|| panic!("no {path} in {stats_body}"))
        .to_value()
        .as_int()
        .unwrap_or_else(|| panic!("{path} not an int in {stats_body}"))
}

#[test]
fn concurrent_clients_share_the_cache_and_publish_invalidates() {
    let platform = Platform::new();
    platform.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,10\nnorth,acme,5\nsouth,zest,20\nnorth,zest,1\n",
    );
    platform.save_flow("retail", FLOW).unwrap();
    platform.run_dashboard("retail").unwrap();

    // Clones share state, so this handle can re-upload data mid-test
    // (the SFTP-upload path of §4.3.2 has no HTTP route).
    let uploader = platform.clone();
    let mut svc = serve(
        Server::new(platform),
        "127.0.0.1:0",
        ServeOptions::default(),
    )
    .expect("bind ephemeral port");
    let addr = svc.local_addr();
    let query = "/retail/ds/brand_sales/groupby/region/count/brand";

    // Two concurrent clients issue the same groupby query.
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let (code, body) = blocking_get(addr, query).expect("request");
                    assert_eq!(code, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(bodies[0], bodies[1], "identical queries, identical results");

    // The first query filled the cache; this repeat is a guaranteed hit
    // (the concurrent pair may have raced, so allow 1 or 2 misses there).
    let (code, body) = blocking_get(addr, query).unwrap();
    assert_eq!(code, 200);
    assert_eq!(body, bodies[0]);
    let (code, stats) = blocking_get(addr, "/stats").unwrap();
    assert_eq!(code, 200, "{stats}");
    let hits = stat(&stats, "cache.hits");
    let misses = stat(&stats, "cache.misses");
    assert_eq!(hits + misses, 3, "{stats}");
    assert!(hits >= 1, "a repeated query must hit the cache: {stats}");
    assert!(misses <= 2, "{stats}");
    let route = "routes.GET /:dashboard/ds/:dataset/query";
    assert_eq!(stat(&stats, &format!("{route}.count")), 3);
    assert_eq!(stat(&stats, &format!("{route}.cache_hits")), hits);
    assert_eq!(stat(&stats, &format!("{route}.errors")), 0);

    // A publish (the producer re-runs on new source data, refreshing its
    // published snapshot) bumps the dataset generation...
    uploader.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,100\nsouth,zest,20\n",
    );
    let (code, body) = blocking_request(addr, "POST", "/dashboards/retail/run", "").unwrap();
    assert_eq!(code, 200, "{body}");

    // ...so the next query is a miss and sees fresh results.
    let (code, fresh) = blocking_get(addr, query).unwrap();
    assert_eq!(code, 200);
    assert_ne!(fresh, bodies[0], "fresh results after the publish");
    let (_, stats) = blocking_get(addr, "/stats").unwrap();
    assert_eq!(stat(&stats, "cache.misses"), misses + 1, "{stats}");
    assert_eq!(stat(&stats, "cache.invalidations"), 1, "{stats}");

    svc.shutdown();
}

#[test]
fn loadgen_shape_no_lost_or_malformed_responses() {
    let platform = Platform::new();
    platform.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nn,a,1\ns,b,2\n",
    );
    platform.save_flow("retail", FLOW).unwrap();
    platform.run_dashboard("retail").unwrap();

    let opts = ServeOptions {
        workers: 4,
        queue_depth: 256,
        ..ServeOptions::default()
    };
    let mut svc = serve(Server::new(platform), "127.0.0.1:0", opts).expect("bind");
    let addr = svc.local_addr();

    let clients = 8;
    let requests_per_client = 10;
    let oks: usize = std::thread::scope(|scope| {
        (0..clients)
            .map(|i| {
                scope.spawn(move || {
                    let mut ok = 0;
                    for j in 0..requests_per_client {
                        let target = if (i + j) % 3 == 0 {
                            "/retail/ds/brand_sales".to_string()
                        } else {
                            format!("/retail/ds/brand_sales/limit/{}", 1 + (j % 2))
                        };
                        let (code, body) = blocking_get(addr, &target).expect("response");
                        assert_eq!(code, 200, "{body}");
                        assert!(body.starts_with('{'), "malformed body: {body}");
                        ok += 1;
                    }
                    ok
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(oks, clients * requests_per_client, "no lost responses");

    let (_, stats) = blocking_get(addr, "/stats").unwrap();
    let hits = stat(&stats, "cache.hits");
    let misses = stat(&stats, "cache.misses");
    let total = (clients * requests_per_client) as i64;
    assert_eq!(hits + misses, total);
    // Three distinct cache keys; concurrent first touches may each miss
    // once per in-flight worker, but the steady state is all hits.
    assert!(misses >= 3, "{stats}");
    assert!(hits >= total / 2, "cache should dominate: {stats}");
    svc.shutdown();
}
