//! Dual-mode conformance for the serving core.
//!
//! Every wire-level behavior — keep-alive negotiation, pipelining,
//! timeout classification, the 431 head cap, chunked response streaming —
//! must be observably identical whether the thread-per-connection pool or
//! the epoll reactor is serving. Each conformance test therefore runs
//! against both [`ServeMode`]s; the reactor-only tests at the bottom
//! cover what the blocking mode cannot do (multiplexing thousands of idle
//! connections, `EPOLLOUT` write backpressure).

use shareinsights::server::{
    blocking_get, dechunk, serve, ClientConnection, ServeMode, ServeOptions, Server, ServiceHandle,
    WireLimits,
};
use shareinsights_core::Platform;
use shareinsights_tabular::io::json::parse_json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
  D.brand_sales:
    publish: brand_sales
"#;

const BOTH_MODES: [ServeMode; 2] = [ServeMode::ThreadPerConnection, ServeMode::Reactor];

/// A retail dashboard with `rows` sales rows (bigger rows ⇒ bigger
/// browse responses, which is what exercises chunking).
fn retail_platform(rows: usize) -> Platform {
    let platform = Platform::new();
    let mut csv = String::from("region,brand,revenue\n");
    for i in 0..rows {
        let region = if i % 2 == 0 { "north" } else { "south" };
        csv.push_str(&format!("{region},brand_number_{i},{}\n", i * 3 + 1));
    }
    platform.upload_data("retail", "sales.csv", &csv);
    platform.save_flow("retail", FLOW).unwrap();
    platform.run_dashboard("retail").unwrap();
    platform
}

fn retail_service(rows: usize, opts: ServeOptions) -> ServiceHandle {
    serve(Server::new(retail_platform(rows)), "127.0.0.1:0", opts).expect("bind ephemeral port")
}

fn mode_opts(mode: ServeMode) -> ServeOptions {
    ServeOptions {
        serve_mode: mode,
        ..ServeOptions::default()
    }
}

fn stat(stats_body: &str, path: &str) -> i64 {
    parse_json(stats_body)
        .unwrap()
        .path(path)
        .unwrap_or_else(|| panic!("no {path} in {stats_body}"))
        .to_value()
        .as_int()
        .unwrap_or_else(|| panic!("{path} not an int in {stats_body}"))
}

#[test]
fn requests_and_keepalive_conform_in_both_modes() {
    for mode in BOTH_MODES {
        let mut svc = retail_service(4, mode_opts(mode));
        let addr = svc.local_addr();

        let (code, body) = blocking_get(addr, "/dashboards").unwrap();
        assert_eq!(code, 200, "{mode:?}");
        assert_eq!(body, "[\"retail\"]", "{mode:?}");
        let (code, _) = blocking_get(addr, "/nope/nope/nope/nope").unwrap();
        assert_eq!(code, 404, "{mode:?}");

        // A persistent connection serves many requests, then honors an
        // explicit close.
        let mut conn = ClientConnection::connect(addr).unwrap();
        for i in 0..5 {
            let (code, body) = conn.get("/retail/ds/brand_sales").unwrap();
            assert_eq!(code, 200, "{mode:?} request {i}: {body}");
            assert!(!conn.server_closed(), "{mode:?}");
        }
        let (code, _) = conn.request_close("GET", "/dashboards", "").unwrap();
        assert_eq!(code, 200, "{mode:?}");
        assert!(conn.server_closed(), "{mode:?}");
        svc.shutdown();
    }
}

#[test]
fn request_cap_per_connection_conforms_in_both_modes() {
    for mode in BOTH_MODES {
        let opts = ServeOptions {
            max_requests_per_connection: 3,
            ..mode_opts(mode)
        };
        let mut svc = retail_service(4, opts);
        let mut conn = ClientConnection::connect(svc.local_addr()).unwrap();
        for i in 0..3 {
            let (code, _) = conn.get("/dashboards").unwrap();
            assert_eq!(code, 200, "{mode:?} request {i}");
        }
        assert!(
            conn.server_closed(),
            "{mode:?}: 3rd response must announce close"
        );
        svc.shutdown();
    }
}

#[test]
fn pipelined_requests_answered_in_order_in_both_modes() {
    for mode in BOTH_MODES {
        let mut svc = retail_service(4, mode_opts(mode));
        let mut stream = TcpStream::connect(svc.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let batch = "GET /dashboards HTTP/1.1\r\nContent-Length: 0\r\n\r\n\
                     GET /nope/nope/nope/nope HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
        stream.write_all(batch.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let first = out.find("HTTP/1.1 200 OK").expect("first response");
        let second = out.find("HTTP/1.1 404 Not Found").expect("second response");
        assert!(first < second, "{mode:?} in order: {out}");
        svc.shutdown();
    }
}

#[test]
fn malformed_requests_get_400_in_both_modes() {
    for mode in BOTH_MODES {
        let svc = retail_service(4, mode_opts(mode));
        let mut stream = TcpStream::connect(svc.local_addr()).unwrap();
        stream.write_all(b"NONSENSE /x SMTP/9\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 400 Bad Request"),
            "{mode:?}: {out}"
        );
        assert!(out.contains("Connection: close"), "{mode:?}: {out}");
    }
}

#[test]
fn oversized_heads_get_431_and_close_in_both_modes() {
    for mode in BOTH_MODES {
        let opts = ServeOptions {
            limits: WireLimits {
                max_head_bytes: 512,
                ..WireLimits::default()
            },
            ..mode_opts(mode)
        };
        let mut svc = retail_service(4, opts);
        let addr = svc.local_addr();

        // A modest head sails through.
        let (code, _) = blocking_get(addr, "/dashboards").unwrap();
        assert_eq!(code, 200, "{mode:?}");

        // A head past the cap is answered 431 and the connection closes —
        // even though the head never completed (slow-drip shape).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut head = String::from("GET /dashboards HTTP/1.1\r\n");
        while head.len() <= 600 {
            head.push_str("X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        stream.write_all(head.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 431 Request Header Fields Too Large"),
            "{mode:?}: {out}"
        );
        assert!(out.contains("Connection: close"), "{mode:?}: {out}");

        // The rejection is metered under the (malformed) pseudo-route.
        let (_, stats) = blocking_get(addr, "/stats").unwrap();
        assert_eq!(stat(&stats, "routes.(malformed).count"), 1, "{mode:?}");
        svc.shutdown();
    }
}

#[test]
fn timeouts_classify_identically_in_both_modes() {
    for mode in BOTH_MODES {
        let opts = ServeOptions {
            io_timeout: Duration::from_millis(200),
            idle_timeout: Duration::from_millis(400),
            ..mode_opts(mode)
        };
        let mut svc = retail_service(4, opts);
        let addr = svc.local_addr();

        // Stall mid-head: silent close (no parseable request to answer).
        let mut mid_head = TcpStream::connect(addr).unwrap();
        mid_head
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        mid_head.write_all(b"GET /dashboards HT").unwrap();
        let mut out = String::new();
        mid_head.read_to_string(&mut out).unwrap();
        assert!(out.is_empty(), "{mode:?}: mid-head stall closes silently");

        // Stall mid-body: the head parsed, so the client is answered 408.
        let mut mid_body = TcpStream::connect(addr).unwrap();
        mid_body
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        mid_body
            .write_all(b"PUT /dashboards/retail/flow HTTP/1.1\r\nContent-Length: 50\r\n\r\npartial")
            .unwrap();
        let mut out = String::new();
        mid_body.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 408 Request Timeout"),
            "{mode:?}: {out}"
        );

        // Idle between requests: silent close, not an error on any route.
        let mut idle = TcpStream::connect(addr).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut out = String::new();
        idle.read_to_string(&mut out).unwrap();
        assert!(out.is_empty(), "{mode:?}: idle close is silent");

        let (_, stats) = blocking_get(addr, "/stats").unwrap();
        assert_eq!(stat(&stats, "routes.(timeout).count"), 2, "{mode:?}");
        assert_eq!(stat(&stats, "connections.io_timeouts"), 2, "{mode:?}");
        assert_eq!(stat(&stats, "connections.idle_timeouts"), 1, "{mode:?}");
        svc.shutdown();
    }
}

/// A chunked CSV upload drip-fed in slices that straddle both chunk and
/// record boundaries: the ingest segmenter must reassemble records no
/// matter where the wire split them, and the connection must stay usable
/// for a pipelined request after the streamed body.
#[test]
fn streamed_ingest_conforms_in_both_modes() {
    for mode in BOTH_MODES {
        let mut svc = retail_service(4, mode_opts(mode));
        let addr = svc.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(
                b"POST /dashboards/retail/ds/events/ingest HTTP/1.1\r\n\
                  Transfer-Encoding: chunked\r\n\r\n",
            )
            .unwrap();
        // Chunk boundaries deliberately cut the CSV header and a data
        // record mid-field.
        let slices = [
            "region,brand,rev",
            "enue\neast,acme,5\neast,be",
            "ta,7\nwest,acme,9\n",
        ];
        for slice in slices {
            let framed = format!("{:x}\r\n{slice}\r\n", slice.len());
            stream.write_all(framed.as_bytes()).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(40));
        }
        // Terminal chunk plus a pipelined follow-up in the same write.
        stream
            .write_all(b"0\r\n\r\nGET /retail/ds/events HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{mode:?}: {out}");
        assert!(out.contains("\"rows_appended\": 3"), "{mode:?}: {out}");
        let second = out.rfind("HTTP/1.1 200 OK").expect("pipelined response");
        assert!(second > 0, "{mode:?}: expected two responses: {out}");
        assert!(
            out.contains("beta"),
            "{mode:?}: appended rows must be readable: {out}"
        );

        let (_, stats) = blocking_get(addr, "/stats").unwrap();
        assert_eq!(stat(&stats, "ingest.requests"), 1, "{mode:?}");
        assert_eq!(stat(&stats, "ingest.rows"), 3, "{mode:?}");
        svc.shutdown();
    }
}

/// A client that vanishes mid-body must leave the endpoint untouched and
/// be accounted as an ingest abort — identically in both serve modes.
#[test]
fn streamed_ingest_disconnect_leaves_endpoint_unchanged_in_both_modes() {
    for mode in BOTH_MODES {
        let mut svc = retail_service(4, mode_opts(mode));
        let addr = svc.local_addr();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    b"POST /dashboards/retail/ds/events/ingest HTTP/1.1\r\n\
                      Content-Length: 4096\r\n\r\nregion,brand,revenue\neast,acme,5\n",
                )
                .unwrap();
            // Drop the socket with most of the announced body unsent.
        }
        // The abort lands when the serve loop notices the EOF — poll.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (_, stats) = blocking_get(addr, "/stats").unwrap();
            if stat(&stats, "ingest.aborted") >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{mode:?}: no ingest abort recorded"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        let (code, list) = blocking_get(addr, "/retail/ds").unwrap();
        assert_eq!(code, 200, "{mode:?}");
        assert!(
            !list.contains("events"),
            "{mode:?}: aborted ingest must not create the endpoint: {list}"
        );
        let (_, stats) = blocking_get(addr, "/stats").unwrap();
        assert_eq!(stat(&stats, "ingest.rows"), 0, "{mode:?}");
        svc.shutdown();
    }
}

/// True 413 conformance: an announced over-cap body is refused before a
/// single body byte is read, and an unannounced (chunked) body that
/// crosses the cap mid-transfer is cut off with 413 plus a close.
#[test]
fn streamed_ingest_over_cap_gets_413_in_both_modes() {
    for mode in BOTH_MODES {
        let opts = ServeOptions {
            limits: WireLimits {
                max_stream_body_bytes: 4096,
                ..WireLimits::default()
            },
            ..mode_opts(mode)
        };
        let mut svc = retail_service(4, opts);
        let addr = svc.local_addr();

        // Announced over-cap: rejected from the Content-Length alone.
        let mut announced = TcpStream::connect(addr).unwrap();
        announced
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        announced
            .write_all(
                b"POST /dashboards/retail/ds/events/ingest HTTP/1.1\r\n\
                  Content-Length: 1048576\r\n\r\n",
            )
            .unwrap();
        let mut out = String::new();
        announced.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 413 Payload Too Large"),
            "{mode:?}: {out}"
        );
        assert!(out.contains("Connection: close"), "{mode:?}: {out}");

        // Chunked over-cap: the cap trips mid-transfer. Stop writing
        // right after crossing it so the server drains everything sent
        // (no unread bytes ⇒ clean close, the 413 is readable).
        let mut chunked = TcpStream::connect(addr).unwrap();
        chunked
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        chunked
            .write_all(
                b"POST /dashboards/retail/ds/events/ingest HTTP/1.1\r\n\
                  Transfer-Encoding: chunked\r\n\r\n",
            )
            .unwrap();
        let header = "region,brand,revenue\n";
        chunked
            .write_all(format!("{:x}\r\n{header}\r\n", header.len()).as_bytes())
            .unwrap();
        let record = "north,overflow_brand,1234567\n".repeat(20); // 580 bytes
        for _ in 0..8 {
            // 8 × 580 = 4640 payload bytes > the 4096 cap.
            let framed = format!("{:x}\r\n{record}\r\n", record.len());
            chunked.write_all(framed.as_bytes()).unwrap();
            chunked.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut out = String::new();
        chunked.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 413 Payload Too Large"),
            "{mode:?}: {out}"
        );
        assert!(out.contains("Connection: close"), "{mode:?}: {out}");

        // Neither attempt touched the platform.
        let (_, list) = blocking_get(addr, "/retail/ds").unwrap();
        assert!(!list.contains("events"), "{mode:?}: {list}");
        let (_, stats) = blocking_get(addr, "/stats").unwrap();
        assert_eq!(stat(&stats, "ingest.rows"), 0, "{mode:?}");
        assert!(stat(&stats, "ingest.aborted") >= 2, "{mode:?}");
        svc.shutdown();
    }
}

/// The routes whose bodies are deterministic for a fixed fixture, so a
/// buffered and a chunked service can be compared byte for byte.
const IDENTITY_ROUTES: [&str; 6] = [
    "/dashboards",
    "/dashboards/retail/flow",
    "/retail/ds",
    "/retail/ds/brand_sales",
    "/retail/ds/brand_sales?limit=30&offset=5",
    "/retail/ds/brand_sales/groupby/region/sum/revenue",
];

#[test]
fn chunked_responses_are_byte_identical_to_buffered_in_both_modes() {
    // One service per framing×mode over identically-prepared platforms.
    let rows = 120; // browse bodies far exceed the chunk budget
    let mut buffered = retail_service(rows, ServeOptions::default());
    for mode in BOTH_MODES {
        let opts = ServeOptions {
            chunk_budget: Some(256),
            ..mode_opts(mode)
        };
        let mut chunked = retail_service(rows, opts);
        let mut want = ClientConnection::connect(buffered.local_addr()).unwrap();
        let mut got = ClientConnection::connect(chunked.local_addr()).unwrap();
        for route in IDENTITY_ROUTES {
            let (want_code, want_body) = want.get(route).unwrap();
            let (got_code, got_body) = got.get(route).unwrap();
            assert_eq!(want_code, got_code, "{mode:?} {route}");
            assert_eq!(want_body, got_body, "{mode:?} {route}");
        }
        // Confirm the big routes really were chunked on the wire.
        let mut raw = TcpStream::connect(chunked.local_addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(
            b"GET /retail/ds/brand_sales HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        let mut wire = String::new();
        raw.read_to_string(&mut wire).unwrap();
        assert!(
            wire.contains("Transfer-Encoding: chunked\r\n"),
            "{mode:?}: {}",
            &wire[..wire.len().min(300)]
        );
        assert!(!wire.contains("Content-Length"), "{mode:?}");
        chunked.shutdown();
    }
    buffered.shutdown();
}

#[test]
fn pipelined_chunked_responses_straddle_chunk_boundaries() {
    let rows = 120;
    let mut buffered = retail_service(rows, ServeOptions::default());
    let (_, want_body) = ClientConnection::connect(buffered.local_addr())
        .unwrap()
        .get("/retail/ds/brand_sales")
        .unwrap();
    buffered.shutdown();

    for mode in BOTH_MODES {
        let opts = ServeOptions {
            chunk_budget: Some(256),
            ..mode_opts(mode)
        };
        let mut svc = retail_service(rows, opts);
        // Two pipelined requests in one write: both responses arrive
        // chunked, back to back, each response's chunk stream ending with
        // its own 0-terminator. The de-chunker must stop exactly at the
        // boundary so the second response parses from the leftover bytes.
        let mut stream = TcpStream::connect(svc.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let batch = "GET /retail/ds/brand_sales HTTP/1.1\r\nContent-Length: 0\r\n\r\n\
                     GET /retail/ds/brand_sales HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
        stream.write_all(batch.as_bytes()).unwrap();
        let mut wire = Vec::new();
        stream.read_to_end(&mut wire).unwrap();

        let mut rest = &wire[..];
        for i in 0..2 {
            let head_end = rest
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .unwrap_or_else(|| panic!("{mode:?} response {i} head"));
            let head = String::from_utf8_lossy(&rest[..head_end]);
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{mode:?} {head}");
            assert!(
                head.contains("Transfer-Encoding: chunked"),
                "{mode:?} {head}"
            );
            let (body, used) = dechunk(&rest[head_end + 4..])
                .unwrap_or_else(|| panic!("{mode:?} response {i} incomplete"))
                .unwrap_or_else(|e| panic!("{mode:?} response {i}: {e}"));
            assert_eq!(body, want_body, "{mode:?} response {i}");
            rest = &rest[head_end + 4 + used..];
        }
        assert!(rest.is_empty(), "{mode:?}: no stray bytes after close");
        svc.shutdown();
    }
}

#[test]
fn reactor_multiplexes_hundreds_of_idle_connections() {
    let mut svc = retail_service(4, mode_opts(ServeMode::Reactor));
    let addr = svc.local_addr();

    // Far more open connections than worker threads — in thread mode
    // these would wedge the pool solid; the reactor just tables them.
    let idle: Vec<TcpStream> = (0..300)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
        .collect();

    // Active traffic flows unimpeded past the idle herd.
    let mut conn = ClientConnection::connect(addr).unwrap();
    for i in 0..50 {
        let (code, body) = conn.get("/retail/ds/brand_sales").unwrap();
        assert_eq!(code, 200, "active request {i}: {body}");
    }

    let (code, stats) = blocking_get(addr, "/stats").unwrap();
    assert_eq!(code, 200);
    assert!(
        stat(&stats, "reactor.registered") >= 300,
        "all idle conns registered: {stats}"
    );
    assert!(stat(&stats, "reactor.peak_registered") >= 301, "{stats}");
    assert!(stat(&stats, "reactor.wakeups") > 0, "{stats}");
    assert!(stat(&stats, "reactor.ready_events") > 0, "{stats}");
    assert!(stat(&stats, "reactor.dispatched") >= 51, "{stats}");
    // Zero shedding: no 5xx pseudo-routes were touched.
    assert!(!stats.contains("(rejected)"), "{stats}");
    assert!(!stats.contains("(deadline)"), "{stats}");

    // The same counters export under the Prometheus names.
    let (_, metrics) = blocking_get(addr, "/metrics").unwrap();
    assert!(
        metrics.contains("# TYPE shareinsights_reactor_registered_connections gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("shareinsights_reactor_wakeups_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("shareinsights_reactor_epollout_rearms_total"),
        "{metrics}"
    );

    drop(idle);
    svc.shutdown();
}

/// Clamp a socket's kernel receive buffer so the peer's writes hit a
/// small advertised window. Raw `setsockopt` FFI, in the same
/// dependency-free style as the reactor's epoll wrapper.
fn clamp_rcvbuf(stream: &TcpStream, bytes: i32) {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    }
    let val = bytes.to_ne_bytes();
    // SAFETY: `val` is a valid 4-byte int the kernel copies during the call.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            val.as_ptr(),
            val.len() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[test]
fn reactor_write_backpressure_rearms_epollout() {
    // A big chunked response to a client that refuses to read: the kernel
    // buffers fill, the write blocks, and the reactor re-arms EPOLLOUT
    // instead of stalling — then finishes once the client drains.
    // The kernel send buffer autotunes up to tcp_wmem[2] (4MB here), so
    // the body must outgrow it before the write can ever block.
    let rows = 160_000; // browse body ≈ 6MB
    let opts = ServeOptions {
        chunk_budget: Some(4 * 1024),
        io_timeout: Duration::from_secs(30),
        idle_timeout: Duration::from_secs(30),
        ..mode_opts(ServeMode::Reactor)
    };
    let mut svc = retail_service(rows, opts);
    let addr = svc.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    // A clamped receive window keeps the response from vanishing into
    // kernel buffers — the server must block mid-write. (Not too tiny:
    // a window of a few KB stalls the eventual drain behind zero-window
    // probe backoff.)
    clamp_rcvbuf(&stream, 64 * 1024);
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"GET /retail/ds/brand_sales HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
        .unwrap();
    // Let the server hit the full socket buffer before reading a byte.
    std::thread::sleep(Duration::from_millis(600));

    let mut wire = Vec::new();
    stream.read_to_end(&mut wire).unwrap();
    let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
    let (body, _) = dechunk(&wire[head_end + 4..])
        .expect("complete")
        .expect("well-formed");
    assert!(
        body.len() > 200_000,
        "a genuinely large body: {}",
        body.len()
    );

    let (_, stats) = blocking_get(addr, "/stats").unwrap();
    assert!(
        stat(&stats, "reactor.epollout_rearms") >= 1,
        "write backpressure must re-arm: {stats}"
    );
    svc.shutdown();
}
