//! Differential property tests for the SQL frontend.
//!
//! The contract under test: SQL is a *frontend*, not a second engine.
//! Every statement lowers to the same `QueryOp`s the path-segment
//! grammar produces, evaluates through the same scan and indexed
//! kernels, and — when the plan canonicalises — computes the exact
//! cache key the path route would, so the two languages share cache
//! entries. The proofs here are byte-level: JSON serializations must
//! be identical across (a) SQL vs path-segment lowering, (b) scan vs
//! indexed evaluation, and (c) the two HTTP routes end to end. The
//! parser must never panic, however hostile the input.
//!
//! Like `properties.rs`, cases come from a seeded local RNG so every
//! failure is reproducible from the fixed seed.

use shareinsights::core::Platform;
use shareinsights::datagen::SeededRng;
use shareinsights::engine::sql::{lower, parse_select};
use shareinsights::server::query::{parse_ops, run_query, run_query_indexed};
use shareinsights::server::sql::lower_plan;
use shareinsights::server::{table_to_json, Method, Request, Server};
use shareinsights::tabular::{
    Column, ColumnBuilder, DataType, Field, IndexedTable, Schema, Table, Value,
};

const CASES: usize = 64;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn null_chance(r: &mut SeededRng) -> f64 {
    match r.weighted_index(&[4.0, 3.0, 1.0]) {
        0 => 0.0,
        1 => 0.25,
        _ => 1.0,
    }
}

fn utf8_col(r: &mut SeededRng, n: usize, pool: usize, nulls: f64) -> Column {
    let mut b = ColumnBuilder::new(DataType::Utf8);
    for _ in 0..n {
        if pool == 0 || r.chance(nulls) {
            b.push_null();
        } else {
            b.push_str(format!("k{}", r.index(pool)));
        }
    }
    b.finish()
}

fn int_col(r: &mut SeededRng, n: usize, nulls: f64) -> Column {
    let mut b = ColumnBuilder::new(DataType::Int64);
    for _ in 0..n {
        if r.chance(nulls) {
            b.push_null();
        } else {
            b.push_coerced(&Value::Int(r.int_range(-50, 49))).unwrap();
        }
    }
    b.finish()
}

/// Endpoint-shaped data: two categoricals and a numeric measure, with
/// zero-row tables and all-null columns in the distribution.
fn gen_table(r: &mut SeededRng) -> Table {
    let n = if r.chance(0.1) { 0 } else { 1 + r.index(40) };
    let pool = r.index(6);
    let schema = Schema::new(vec![
        Field::new("cat", DataType::Utf8),
        Field::new("cat2", DataType::Utf8),
        Field::new("num", DataType::Int64),
    ])
    .unwrap();
    let (nc1, nc2, nc3) = (null_chance(r), null_chance(r), null_chance(r));
    let columns = vec![
        utf8_col(r, n, pool, nc1),
        utf8_col(r, n, 3, nc2),
        int_col(r, n, nc3),
    ];
    Table::new(schema, columns).unwrap()
}

/// One random *canonical* query: SQL text plus the path segments it must
/// canonicalise to. Shapes follow the path grammar's composition rules
/// (filters, one single-agg groupby, a sort, a limit).
fn gen_canonical(r: &mut SeededRng) -> (String, Vec<String>) {
    let mut select_list = "*".to_string();
    let mut clauses = Vec::new();
    let mut segs: Vec<String> = Vec::new();

    if r.chance(0.6) {
        let (col, val) = if r.chance(0.5) {
            ("cat", format!("k{}", r.index(6)))
        } else {
            ("num", r.int_range(-50, 49).to_string())
        };
        let quoted = if col == "cat" {
            format!("'{val}'")
        } else {
            val.clone()
        };
        clauses.push(format!("where {col} = {quoted}"));
        segs.extend(["filter".into(), col.into(), val]);
    }
    let grouped = r.chance(0.6);
    if grouped {
        let agg = ["sum", "count", "min", "max"][r.index(4)];
        select_list = format!("cat, {agg}(num)");
        clauses.push("group by cat".into());
        segs.extend(["groupby".into(), "cat".into(), agg.into(), "num".into()]);
        if r.chance(0.5) {
            let dir = if r.chance(0.5) { "asc" } else { "desc" };
            let key = if r.chance(0.5) {
                "cat".to_string()
            } else {
                format!("{agg}_num")
            };
            clauses.push(format!("order by {key} {dir}"));
            segs.extend(["sort".into(), key, dir.into()]);
        }
    } else if r.chance(0.5) {
        let key = ["cat", "cat2", "num"][r.index(3)];
        let dir = if r.chance(0.5) { "asc" } else { "desc" };
        clauses.push(format!("order by {key} {dir}"));
        segs.extend(["sort".into(), key.into(), dir.into()]);
    }
    if r.chance(0.5) {
        let n = r.index(20);
        clauses.push(format!("limit {n}"));
        segs.extend(["limit".into(), n.to_string()]);
    }
    let sql = format!("select {select_list} from t {}", clauses.join(" "));
    (sql, segs)
}

/// One random SQL-only shape: boolean `WHERE`s, projections, multi-agg
/// grouping, aliases, multi-key sorts, `DISTINCT`, `OFFSET`.
fn gen_rich(r: &mut SeededRng) -> String {
    let mut clauses = Vec::new();
    let predicates = [
        "num > 0",
        "num <= 10",
        "num != 3",
        "cat = 'k1' and num < 20",
        "cat = 'k0' or cat = 'k1'",
        "num in (1, 2, 3)",
        "num between -10 and 10",
        "cat is null",
        "cat is not null",
        "not (num > 5)",
        "num = -4",
        "cat in ('k0', 'absent')",
    ];
    if r.chance(0.8) {
        clauses.push(format!("where {}", r.pick(&predicates)));
    }
    let select_list = match r.index(4) {
        0 => {
            clauses.push("group by cat, cat2".into());
            "cat, cat2, sum(num), count(num) as n".to_string()
        }
        1 => {
            clauses.push("group by cat".into());
            "cat, min(num) as lo, max(num) as hi".to_string()
        }
        2 => "cat, num".to_string(),
        _ => "*".to_string(),
    };
    if r.chance(0.4) && select_list == "*" {
        clauses.push("order by cat asc, num desc".into());
    }
    if r.chance(0.3) {
        clauses.push(format!("limit {}", 1 + r.index(10)));
    }
    if r.chance(0.2) {
        clauses.push(format!("offset {}", r.index(5)));
    }
    let distinct = if select_list == "cat, num" && r.chance(0.4) {
        "distinct "
    } else {
        ""
    };
    format!(
        "select {distinct}{select_list} from t {}",
        clauses.join(" ")
    )
}

fn ops_for(sql: &str) -> Vec<shareinsights::server::query::QueryOp> {
    let stmt = parse_select(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    let plan = lower(sql, &stmt).unwrap_or_else(|e| panic!("{sql}: {e}"));
    lower_plan(&plan, &mut |n| Err(format!("no join table {n}")))
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .ops
}

// ---------------------------------------------------------------------------
// Lowering differential: SQL == path grammar
// ---------------------------------------------------------------------------

/// Canonical SQL lowers to the *same ops and cache path* as the segment
/// grammar, and both evaluate byte-identically through scan and index.
#[test]
fn canonical_sql_equals_path_segments() {
    let mut r = SeededRng::new(0x5D1F_0001);
    let mut shared = 0usize;
    for _ in 0..CASES {
        let t = gen_table(&mut r);
        let ix = IndexedTable::new(t.clone());
        let (sql, segs) = gen_canonical(&mut r);
        let stmt = parse_select(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let plan = lower(&sql, &stmt).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let l = lower_plan(&plan, &mut |n| Err(format!("no join table {n}"))).unwrap();
        assert!(l.shared, "{sql} must canonicalise");
        assert_eq!(l.cache_path, segs.join("/"), "{sql}");
        let refs: Vec<&str> = segs.iter().map(String::as_str).collect();
        let path_ops = parse_ops(&refs).unwrap();
        assert_eq!(l.ops, path_ops, "{sql} lowers to the path grammar's ops");
        shared += 1;

        match (run_query(&t, &l.ops), run_query_indexed(&ix, &l.ops)) {
            (Ok(scan), Ok((fast, _))) => assert_eq!(
                table_to_json(&fast),
                table_to_json(&scan),
                "{sql}: indexed diverged from scan"
            ),
            (Err(a), Err(b)) => assert_eq!(a, b, "{sql}: error divergence"),
            (a, b) => panic!("{sql}: paths disagree: scan={a:?} indexed={b:?}"),
        }
    }
    assert_eq!(shared, CASES);
}

/// SQL-only shapes (boolean filters, projections, multi-agg groupings,
/// `DISTINCT`, `OFFSET`) evaluate byte-identically through the scan and
/// indexed paths.
#[test]
fn rich_sql_matches_scan_through_index() {
    let mut r = SeededRng::new(0x5D1F_0002);
    for _ in 0..CASES {
        let t = gen_table(&mut r);
        let ix = IndexedTable::new(t.clone());
        let sql = gen_rich(&mut r);
        let ops = ops_for(&sql);
        match (run_query(&t, &ops), run_query_indexed(&ix, &ops)) {
            (Ok(scan), Ok((fast, _))) => assert_eq!(
                table_to_json(&fast),
                table_to_json(&scan),
                "{sql}: indexed diverged from scan"
            ),
            (Err(a), Err(b)) => assert_eq!(a, b, "{sql}: error divergence"),
            (a, b) => panic!("{sql}: paths disagree: scan={a:?} indexed={b:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Full-stack differential: POST /sql == GET /query
// ---------------------------------------------------------------------------

fn served_retail() -> Server {
    // The endpoint is produced by a T.sql task — the flow-level spelling
    // of the same frontend under test.
    const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  shape:
    type: sql
    query: "select region, brand, revenue from sales"
F:
  +D.sales_out: D.sales | T.shape
"#;
    let platform = Platform::new();
    let mut csv = String::from("region,brand,revenue\n");
    let mut r = SeededRng::new(0x5D1F_0003);
    for _ in 0..200 {
        csv.push_str(&format!(
            "r{},b{},{}\n",
            r.index(4),
            r.index(6),
            r.int_range(0, 99)
        ));
    }
    platform.upload_data("retail", "sales.csv", &csv);
    let server = Server::new(platform);
    let r = server.handle(&Request::new(Method::Put, "/dashboards/retail/flow").with_body(FLOW));
    assert!(r.is_ok(), "{}", r.body);
    let r = server.handle(&Request::new(Method::Post, "/dashboards/retail/run"));
    assert!(r.is_ok(), "{}", r.body);
    server
}

/// The two HTTP spellings of the same query return byte-identical
/// payloads — for canonical shapes via the *shared* cache entry, and the
/// POST route is stable across repeats (second hit served from cache).
#[test]
fn http_routes_agree_byte_for_byte() {
    let server = served_retail();
    let pairs = [
        (
            "/retail/ds/sales_out/groupby/brand/sum/revenue",
            "select brand, sum(revenue) from sales_out group by brand",
        ),
        (
            "/retail/ds/sales_out/filter/region/r1",
            "select * from sales_out where region = 'r1'",
        ),
        (
            "/retail/ds/sales_out/filter/region/r2/groupby/brand/count/revenue/sort/count_revenue/desc/limit/3",
            "select brand, count(revenue) from sales_out where region = 'r2' \
             group by brand order by count_revenue desc limit 3",
        ),
        (
            "/retail/ds/sales_out/sort/revenue/asc/limit/5",
            "select * from sales_out order by revenue asc limit 5",
        ),
    ];
    for (path, sql) in pairs {
        let via_get = server.handle(&Request::get(path));
        assert!(via_get.is_ok(), "{path}: {}", via_get.body);
        let post = Request::new(Method::Post, "/retail/ds/sales_out/sql").with_body(sql);
        let via_sql = server.handle(&post);
        assert!(via_sql.is_ok(), "{sql}: {}", via_sql.body);
        assert_eq!(via_get.body, via_sql.body, "{sql} vs {path}");
        let again = server.handle(&post);
        assert_eq!(via_sql.body, again.body, "{sql}: cached repeat differs");
    }
    // Every pair above canonicalised: the SQL route recorded shared plans
    // and never evaluated past the page cache the GET route filled.
    let sql_stats = server.platform().api_metrics().sql();
    assert_eq!(sql_stats.path_shared, sql_stats.queries);
    assert_eq!(sql_stats.parse_errors, 0);
}

/// Rich SQL over HTTP agrees with an in-process scan of the same ops —
/// the server adds caching and paging, never different answers.
#[test]
fn http_sql_matches_inprocess_scan() {
    let server = served_retail();
    let table = {
        let d = server.platform().dashboard("retail").unwrap();
        d.endpoint_tables.get("sales_out").unwrap().clone()
    };
    for sql in [
        "select region, brand from sales_out where revenue > 50",
        "select region, sum(revenue) as total, count(*) as n from sales_out \
         group by region order by total desc",
        "select distinct region, brand from sales_out limit 20 offset 3",
        "select * from sales_out where revenue between 10 and 40 and region != 'r0'",
    ] {
        let r =
            server.handle(&Request::new(Method::Post, "/retail/ds/sales_out/sql").with_body(sql));
        assert!(r.is_ok(), "{sql}: {}", r.body);
        let ops = ops_for(sql);
        let scan = run_query(&table, &ops).unwrap();
        assert_eq!(r.body, table_to_json(&scan), "{sql}");
    }
}

// ---------------------------------------------------------------------------
// Fuzz: the parser terminates without panicking on arbitrary input
// ---------------------------------------------------------------------------

/// Arbitrary strings — random unicode, random ASCII soup, and mutated
/// valid statements — always produce `Ok` or a spanned `Err`, never a
/// panic, hang, or stack overflow.
#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut r = SeededRng::new(0x5D1F_0004);
    let seeds = [
        "select brand, sum(revenue) from sales group by brand order by sum_revenue desc limit 3",
        "select * from t where a = 1 and (b > 2 or c in ('x', 'y')) offset 4",
        "select distinct \"weird name\" from t where x between -1 and 1e3 -- comment",
        "select count(*) from t where s is not null",
    ];
    let alphabet: Vec<char> = ("select from where group by order limit offset and or not in \
                               between is null ( ) , * ' \" . ; = < > ! 0 1 9 e E + - _ \u{1F600} \
                               \u{0} \t \n \\ /")
        .chars()
        .collect();
    for case in 0..CASES * 8 {
        let src = if case % 2 == 0 {
            // Pure noise.
            let len = r.index(120);
            (0..len).map(|_| *r.pick(&alphabet)).collect::<String>()
        } else {
            // A valid statement, mutated: splice, truncate, duplicate.
            let mut s: Vec<char> = r.pick(&seeds).chars().collect();
            for _ in 0..1 + r.index(6) {
                if s.is_empty() {
                    break;
                }
                let i = r.index(s.len());
                match r.index(3) {
                    0 => s[i] = *r.pick(&alphabet),
                    1 => {
                        s.remove(i);
                    }
                    _ => s.insert(i, *r.pick(&alphabet)),
                }
            }
            if r.chance(0.2) {
                let cut = r.index(s.len().max(1));
                s.truncate(cut);
            }
            s.into_iter().collect()
        };
        // Must return, not panic; on success lowering must also return.
        if let Ok(stmt) = parse_select(&src) {
            if let Ok(plan) = lower(&src, &stmt) {
                let _ = lower_plan(&plan, &mut |_| Err("no joins here".into()));
            }
        }
    }
    // Pathological nesting is rejected by depth, not by stack overflow.
    let deep = format!(
        "select * from t where {}x = 1{}",
        "(".repeat(500),
        ")".repeat(500)
    );
    assert!(parse_select(&deep).is_err());
}
