//! Cross-crate integration: the §4.5 collaboration story — branch, edit in
//! parallel, merge, run — plus the flow-file-group workflow over the REST
//! surface.

use shareinsights::collab::{merge_texts, Repository};
use shareinsights::core::Platform;
use shareinsights::server::{Method, Request, Server};

const BASE: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_region:
    type: groupby
    groupby: [region]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: total
F:
  +D.region_totals: D.sales | T.by_region
"#;

/// Two analysts branch from the same dashboard, edit different sections,
/// and the merged file runs.
#[test]
fn branch_edit_merge_run() {
    // Analyst A adds a widget; analyst B tightens the aggregation.
    let ours =
        format!("{BASE}W:\n  totals_grid:\n    type: DataGrid\n    source: D.region_totals\n");
    let theirs = BASE.replace(
        "    - operator: sum\n      apply_on: revenue\n      out_field: total\n",
        "    - operator: sum\n      apply_on: revenue\n      out_field: total\n    - operator: count\n      apply_on: brand\n      out_field: brands\n",
    );

    let repo = Repository::new("retail");
    let base_commit = repo.commit("main", "alice", "base", BASE);
    repo.branch("bob-branch", "main").unwrap();
    repo.commit("main", "alice", "add grid", &ours);
    let bob_head = repo.commit("bob-branch", "bob", "count brands", &theirs);

    // Find the merge base through the store, then merge section-aware.
    let lca = repo
        .merge_base(&repo.head("main").unwrap().id, &bob_head)
        .unwrap();
    assert_eq!(lca.id, base_commit);
    let outcome = merge_texts("retail", &lca.content, &ours, &theirs).unwrap();
    assert!(outcome.is_clean(), "{:?}", outcome.conflicts);
    let merged_text = outcome.text();
    repo.commit_merge("main", "alice", "merge bob", &merged_text, &bob_head)
        .unwrap();
    assert_eq!(repo.head("main").unwrap().parents.len(), 2);

    // The merged flow file carries both edits and runs.
    let platform = Platform::new();
    platform.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,10\nnorth,zest,5\nsouth,acme,7\n",
    );
    platform.save_flow("retail", &merged_text).unwrap();
    let run = platform.run_dashboard("retail").unwrap();
    let t = run.result.table("region_totals").unwrap();
    assert_eq!(t.schema().names(), vec!["region", "total", "brands"]);
    assert_eq!(t.value(0, "brands").unwrap().as_int(), Some(2));
    let dash = platform.open_dashboard("retail").unwrap();
    assert!(dash.widget("totals_grid").is_some());
}

/// Conflicting same-task edits surface as conflicts with section labels.
#[test]
fn conflicting_edits_reported() {
    let ours = BASE.replace("groupby: [region]", "groupby: [region, brand]");
    let theirs = BASE.replace("groupby: [region]", "groupby: [brand]");
    let outcome = merge_texts("retail", BASE, &ours, &theirs).unwrap();
    assert_eq!(outcome.conflicts.len(), 1);
    assert_eq!(outcome.conflicts[0].section, 'T');
    assert_eq!(outcome.conflicts[0].item, "by_region");
}

/// The producer/consumer flow-file group over the REST surface, including
/// shared-object refresh after a new producer run.
#[test]
fn flow_group_refresh_over_rest() {
    let platform = Platform::new();
    platform.upload_data(
        "producer",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,10\n",
    );
    let producer_flow = format!("{BASE}  D.region_totals:\n    publish: region_totals\n");
    let server = Server::new(platform);

    let r = server
        .handle(&Request::new(Method::Put, "/dashboards/producer/flow").with_body(&producer_flow));
    assert!(r.is_ok(), "{}", r.body);
    assert!(server
        .handle(&Request::new(Method::Post, "/dashboards/producer/run"))
        .is_ok());

    // Consumer dashboard reads the shared object by name.
    let consumer_flow = r#"
W:
  grid:
    type: DataGrid
    source: D.region_totals
"#;
    let r = server
        .handle(&Request::new(Method::Put, "/dashboards/consumer/flow").with_body(consumer_flow));
    assert!(r.is_ok(), "{}", r.body);
    let dash = server.platform().open_dashboard("consumer").unwrap();
    assert_eq!(dash.data_of("grid").unwrap().num_rows(), 1);

    // Producer's data grows; a re-run refreshes the shared snapshot and the
    // consumer sees the new rows (§4.5.3 point 3: long flows run once, by
    // the producer).
    server.platform().upload_data(
        "producer",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,10\nsouth,zest,4\neast,brio,2\n",
    );
    assert!(server
        .handle(&Request::new(Method::Post, "/dashboards/producer/run"))
        .is_ok());
    let dash = server.platform().open_dashboard("consumer").unwrap();
    assert_eq!(dash.data_of("grid").unwrap().num_rows(), 3);

    // The group is tracked.
    let group = server
        .platform()
        .publish_registry()
        .group_of("region_totals");
    assert!(group.contains(&"producer".to_string()));
    assert!(group.contains(&"consumer".to_string()));
}

/// Forks inherit everything and diverge independently (§5.2.2 obs. 3).
#[test]
fn forked_dashboards_diverge() {
    let platform = Platform::new();
    platform.upload_data("template", "sales.csv", "region,brand,revenue\nn,a,1\n");
    platform.save_flow("template", BASE).unwrap();
    platform.fork_dashboard("template", "team_a", "a").unwrap();
    platform.fork_dashboard("template", "team_b", "b").unwrap();

    // team_a extends; team_b keeps the sample. Both run independently.
    let extended = format!("{BASE}W:\n  g:\n    type: DataGrid\n    source: D.region_totals\n");
    platform.save_flow("team_a", &extended).unwrap();
    assert!(platform.run_dashboard("team_a").is_ok());
    assert!(platform.run_dashboard("team_b").is_ok());
    assert!(
        platform.dashboard("team_a").unwrap().flow_bytes()
            > platform.dashboard("team_b").unwrap().flow_bytes()
    );
    // Template unchanged.
    assert_eq!(platform.dashboard("template").unwrap().text, BASE);
}
