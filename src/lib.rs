//! # ShareInsights
//!
//! A from-scratch Rust reproduction of *ShareInsights — An Unified Approach
//! to Full-stack Data Processing* (SIGMOD 2015): a platform where an entire
//! data pipeline — ingestion, transformation, visualization and widget
//! interaction — is described in a single declarative *flow file*.
//!
//! This umbrella crate re-exports every workspace crate under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`tabular`] | `shareinsights-tabular` | columnar table engine & operator kernels |
//! | [`datagen`] | `shareinsights-datagen` | seeded synthetic datasets |
//! | [`connectors`] | `shareinsights-connectors` | protocol connectors & data formats |
//! | [`flowfile`] | `shareinsights-flowfile` | the flow-file DSL |
//! | [`engine`] | `shareinsights-engine` | compilation, optimization, execution |
//! | [`widgets`] | `shareinsights-widgets` | widget model, data cube, interaction |
//! | [`layout`] | `shareinsights-layout` | 12-column responsive grid |
//! | [`server`] | `shareinsights-server` | REST surface & ad-hoc query language |
//! | [`collab`] | `shareinsights-collab` | version store, merge, publish registry |
//! | [`core`] | `shareinsights-core` | the platform facade |
//! | [`hackathon`] | `shareinsights-hackathon` | Race2Insights evaluation simulator |
//!
//! See `examples/quickstart.rs` for the fastest path from a flow file to a
//! rendered dashboard.

pub use shareinsights_collab as collab;
pub use shareinsights_connectors as connectors;
pub use shareinsights_core as core;
pub use shareinsights_datagen as datagen;
pub use shareinsights_engine as engine;
pub use shareinsights_flowfile as flowfile;
pub use shareinsights_hackathon as hackathon;
pub use shareinsights_layout as layout;
pub use shareinsights_server as server;
pub use shareinsights_tabular as tabular;
pub use shareinsights_widgets as widgets;
