//! The paper's §3.7 data-sharing use case: the IPL tweet-analysis *flow
//! file group* — a data-processing dashboard (appendix A.1) that publishes
//! shared data objects, and a consumption dashboard (appendix A.2) that
//! builds the interactive "Clash of Titans" view (figure 17) from them.
//!
//! Demonstrates:
//! * hierarchical JSON ingestion with `=>` path mapping (figure 18);
//! * parallel map composites normalising dates and extracting players,
//!   teams, locations and words (figures 20–21);
//! * joins against reference data with rename projections (appendix A.1);
//! * publish/endpoint sharing and cross-dashboard resolution (§3.4.1);
//! * slider + list-driven interaction flows filtering streamgraph, word
//!   clouds and map markers (appendix A.2).
//!
//! Run with: `cargo run --example ipl_flow_group`

use shareinsights::core::Platform;
use shareinsights::datagen::ipl;
use shareinsights::tabular::io::csv::write_csv;

/// Appendix A.1 — the data-processing dashboard (trimmed to the flows the
/// consumption dashboard needs; the structure matches the listing).
const PROCESSING: &str = r#"
D:
  ipl_tweets: [
    postedTime => created_at,
    body => text,
    displayName => user.location
  ]
  team_players: [player, team_fullName, team, player_id, noOfTweets]
  dim_teams: [team_number, team, team_fullName, sort_order, color, noOfTweets]
  lat_long: [state, point_one, point_two, point_three]

D.ipl_tweets:
  source: 'tweets.json'
  format: json
D.team_players:
  source: 'team_players.csv'
  format: csv
D.dim_teams:
  source: 'dim_teams.csv'
  format: csv
D.lat_long:
  source: 'lat_long.csv'
  format: csv

T:
  players_pipeline:
    parallel: [T.norm_ipldate, T.extract_players]
  teams_pipeline:
    parallel: [T.norm_ipldate, T.extract_teams]
  teams_pipeline_region:
    parallel: [T.norm_ipldate, T.extract_location, T.extract_teams]
  word_date_extraction:
    parallel: [T.norm_ipldate, T.extract_words]
  norm_ipldate:
    type: map
    operator: date
    transform: postedTime
    input_format: 'E MMM dd HH:mm:ss Z yyyy'
    output_format: yyyy-MM-dd
    output: date
  extract_players:
    type: map
    operator: extract
    transform: body
    dict: players.txt
    output: player
  extract_teams:
    type: map
    operator: extract
    transform: body
    dict: teams.csv
    output: team
  extract_location:
    type: map
    operator: extract_location
    transform: displayName
    match: city
    country: IND
    output: state
  extract_words:
    type: map
    operator: extract_words
    transform: body
    output: word
  players_count:
    type: groupby
    groupby: [date, player]
  teams_count:
    type: groupby
    groupby: [date, team]
  teams_regions_count:
    type: groupby
    groupby: [date, team, state]
  words_count:
    type: groupby
    groupby: [date, word]
  topwords:
    type: topn
    groupby: [date]
    orderby_column: [count DESC]
    limit: 20
  join_player_team:
    type: join
    left: players_tweets by player
    right: team_players by player
    join_condition: left outer
    project:
      players_tweets_date: date
      players_tweets_player: player
      players_tweets_count: noOfTweets
      team_players_team: team
      team_players_team_fullName: team_fullName
  join_dim_teams:
    type: join
    left: teams_tweets by team
    right: dim_teams by team_fullName
    join_condition: left outer
    project:
      teams_tweets_date: date
      teams_tweets_team: team_fullName
      teams_tweets_count: noOfTweets
      dim_teams_team: team
      dim_teams_sort_order: sort_order
      dim_teams_color: color
  join_dim_teams_two:
    type: join
    left: tm_rgn_raw_cnt by team
    right: dim_teams by team_fullName
    join_condition: left outer
    project:
      tm_rgn_raw_cnt_date: date
      tm_rgn_raw_cnt_team: team_fullName
      tm_rgn_raw_cnt_state: state
      tm_rgn_raw_cnt_count: noOfTweets
      dim_teams_team: team
      dim_teams_color: color
  join_lat_long:
    type: join
    left: tm_rgn_tm_dtls by state
    right: lat_long by state
    join_condition: left outer
    project:
      tm_rgn_tm_dtls_team_fullName: team_fullName
      tm_rgn_tm_dtls_state: state
      tm_rgn_tm_dtls_date: date
      tm_rgn_tm_dtls_noOfTweets: noOfTweets
      tm_rgn_tm_dtls_team: team
      tm_rgn_tm_dtls_color: color
      lat_long_point_one: point_one

F:
  D.players_tweets: D.ipl_tweets | T.players_pipeline | T.players_count
  D.player_tweets: (D.players_tweets, D.team_players) | T.join_player_team
  D.player_tweets:
    endpoint: true
    publish: player_tweets

  D.teams_tweets: D.ipl_tweets | T.teams_pipeline | T.teams_count
  D.team_tweets: (D.teams_tweets, D.dim_teams) | T.join_dim_teams
  D.team_tweets:
    endpoint: true
    publish: team_tweets

  D.tm_rgn_raw_cnt: D.ipl_tweets | T.teams_pipeline_region | T.teams_regions_count
  D.tm_rgn_tm_dtls: (D.tm_rgn_raw_cnt, D.dim_teams) | T.join_dim_teams_two
  D.team_region_tweets: (D.tm_rgn_tm_dtls, D.lat_long) | T.join_lat_long
  D.team_region_tweets:
    endpoint: true
    publish: team_region_tweets

  D.tagcloud_tweets_raw: D.ipl_tweets | T.word_date_extraction | T.words_count
  D.tagcloud_tweets: D.tagcloud_tweets_raw | T.topwords
  D.tagcloud_tweets:
    endpoint: true
    publish: tagcloud_tweets

  +D.dim_teams_shared: D.dim_teams | T.pass_teams
  D.dim_teams_shared:
    publish: dim_teams_shared

T:
  pass_teams:
    type: distinct
    columns: [team]
"#;

/// Appendix A.2 — the consumption dashboard ("Clash of Titans").
const CONSUMPTION: &str = r#"
L:
  description: Clash of Titans
  rows:
  - [span12: W.teams]
  - [span11: W.ipl_duration]
  - [span11: W.relative_teamtweets]
  - [span6: W.word_team_player_tweets, span5: W.region_tweets]

W:
  ipl_duration:
    type: Slider
    source: ['2013-05-02', '2013-05-27']
    static: true
    range: true
    slider_type: date

  relative_teamtweets:
    type: Streamgraph
    source: D.team_tweets | T.filter_by_date | T.filter_by_team
    x: date
    y: noOfTweets
    color: color
    serie: team

  teams:
    type: List
    source: D.dim_teams_shared
    text: team
    image_position: right

  playertweets:
    type: WordCloud
    source: D.player_tweets | T.filter_by_date | T.filter_by_team | T.aggregate_by_player
    text: player
    size: noOfTweets

  wordtweets:
    type: WordCloud
    source: D.tagcloud_tweets | T.filter_by_date | T.aggregate_by_word
    text: word
    size: count

  region_tweets:
    type: MapMarker
    source: D.team_region_tweets | T.filter_by_date | T.filter_by_team | T.aggregate_by_team_region
    country: IND
    markers:
    - marker1:
        type: circle_marker
        latlong_value: point_one
        markersize: noOfTweets
        fill_color: color

  playertweetstab:
    type: Layout
    rows:
    - [span11: W.playertweets]
  wordtweetstab:
    type: Layout
    rows:
    - [span11: W.wordtweets]

  word_team_player_tweets:
    type: TabLayout
    tabs:
    - name: 'Player'
      body: W.playertweetstab
    - name: 'Word'
      body: W.wordtweetstab

T:
  aggregate_by_player:
    type: groupby
    groupby: [player]
    aggregates:
    - operator: sum
      apply_on: noOfTweets
      out_field: noOfTweets

  aggregate_by_word:
    type: groupby
    groupby: [word]
    aggregates:
    - operator: sum
      apply_on: count
      out_field: count
    orderby_aggregates: true

  aggregate_by_team_region:
    type: groupby
    groupby: [team, point_one, state, color]
    aggregates:
    - operator: sum
      apply_on: noOfTweets
      out_field: noOfTweets

  filter_by_date:
    type: filter_by
    filter_by: [date]
    filter_source: W.ipl_duration

  filter_by_team:
    type: filter_by
    filter_by: [team]
    filter_source: W.teams
    filter_val: [text]
"#;

fn main() {
    let platform = Platform::new();

    // --- seed the Gnip-shaped corpus ---------------------------------------
    let corpus = ipl::generate(&ipl::IplConfig {
        tweets: 3_000,
        ..Default::default()
    });
    platform.upload_data(
        "ipl_processing",
        "tweets.json",
        corpus.tweets_ndjson.clone(),
    );
    platform.upload_data("ipl_processing", "players.txt", corpus.players_dict.clone());
    platform.upload_data("ipl_processing", "teams.csv", corpus.teams_dict.clone());
    platform.upload_data(
        "ipl_processing",
        "team_players.csv",
        write_csv(&corpus.team_players, ','),
    );
    platform.upload_data(
        "ipl_processing",
        "dim_teams.csv",
        write_csv(&corpus.dim_teams, ','),
    );
    platform.upload_data(
        "ipl_processing",
        "lat_long.csv",
        write_csv(&corpus.lat_long, ','),
    );

    // --- A.1: data-processing mode -----------------------------------------
    platform
        .save_flow("ipl_processing", PROCESSING)
        .expect("processing flow file is valid");
    let run = platform
        .run_dashboard("ipl_processing")
        .expect("processing pipeline runs");
    println!("processing run:");
    println!("  source rows: {}", run.result.stats.source_rows);
    for (name, rows) in &run.published {
        println!("  published '{name}' with {rows} rows");
    }
    assert!(
        platform
            .dashboard("ipl_processing")
            .unwrap()
            .is_data_processing_mode(),
        "A.1 has no widgets"
    );

    // --- A.2: consumption mode ----------------------------------------------
    platform
        .save_flow("ipl_dashboard", CONSUMPTION)
        .expect("consumption flow file is valid");
    let dash = platform
        .open_dashboard("ipl_dashboard")
        .expect("consumption dashboard resolves the shared objects");

    println!("\n--- initial dashboard (slider default range) ---");
    println!("{}", dash.render(6).unwrap());

    // Select CSK in the teams list: streamgraph, clouds and map all filter.
    dash.select("teams", "text", vec!["CSK".into()]).unwrap();
    // Narrow the date slider.
    dash.set_range("ipl_duration", "2013-05-02".into(), "2013-05-10".into())
        .unwrap();
    println!("--- after selecting CSK and narrowing the dates ---");
    println!("{}", dash.render_widget("relative_teamtweets", 6).unwrap());
    println!("{}", dash.render_widget("region_tweets", 6).unwrap());

    let (hits, misses) = dash.cube_stats();
    println!("data cube: {hits} cache hits, {misses} evaluations");

    // The flow-file group that formed (§4.5.3).
    println!(
        "flow file group around 'team_tweets': {:?}",
        platform.publish_registry().group_of("team_tweets")
    );
}
