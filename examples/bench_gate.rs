//! Gate CI on benchmark regressions against the committed baselines.
//!
//! Each `<baseline> <fresh>` pair names a committed `BENCH_*.json` and a
//! freshly generated document of the same shape. The gate walks both
//! recursively, pairs up every `*p95_us` leaf, prints a side-by-side
//! table, and exits non-zero when any fresh p95 regresses past the
//! threshold. Two escape valves keep the gate honest rather than flaky:
//!
//! * a zero baseline is skipped — some configurations legitimately record
//!   no latency (thread mode starved under an idle herd serves zero
//!   requests), and a ratio against zero is noise;
//! * an absolute slack floor (default 500µs) must also be cleared — a
//!   30µs warm-cache sample doubling to 60µs is scheduler jitter, not a
//!   regression.
//!
//! When the baseline carries a `sql_overhead` block (the ad-hoc query
//! benchmark), the fresh doc must carry one too and its SQL parse+lower
//! p50 must stay under 10% of its own indexed-evaluation p50 — a ratio
//! within the fresh run, so machine speed cancels out.
//!
//! Likewise for `selfscrape_overhead`: when the baseline carries the
//! block, the fresh doc's warm served throughput with the telemetry
//! scraper ticking must stay within 2% of its own no-scraper baseline —
//! again a ratio within the fresh run. Self-observability must be cheap
//! enough to leave on.
//!
//! The shard plane must keep paying for itself: when the baseline
//! carries a `shard_scaling` block (the shard benchmark), the fresh
//! doc's 4-shard workload throughput must beat its own single-shard
//! throughput by at least 1.6× — a within-run ratio, so machine speed
//! cancels out.
//!
//! And for the ingest benchmark: when the baseline carries an
//! `append_vs_rebuild` block, the fresh doc's incremental index merge
//! must beat its own cold rebuild by at least 3× (a within-run ratio),
//! and when it carries a `streamed_upload` block, the fresh upload's
//! peak RSS delta must stay under 12× the body — the tripwire for a
//! regression back to buffering whole request bodies.
//!
//! ```text
//! cargo run --release --example bench_gate -- \
//!     BENCH_adhoc_query.json fresh_adhoc.json \
//!     BENCH_serve_concurrency.json fresh_serve.json \
//!     BENCH_stream_latency.json fresh_stream.json \
//!     BENCH_ingest.json fresh_ingest.json \
//!     BENCH_shard_scaling.json fresh_shard.json \
//!     [--threshold 0.25] [--slack-us 500]
//! ```

use shareinsights::tabular::io::json::{parse_json, JsonValue};

/// One paired p95 leaf.
struct Row {
    metric: String,
    baseline: u64,
    fresh: Option<u64>,
}

/// Remove `name <value>` from `args`, returning the value.
fn take_value_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        panic!("{name} needs a value");
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// A readable label for an array element: benchmark config objects carry
/// their own identity (`serve_mode`/`idle_conns`), so prefer that to a
/// bare index.
fn element_label(index: usize, item: &JsonValue) -> String {
    match (
        item.get("serve_mode").and_then(|v| v.as_str()),
        item.get("idle_conns"),
    ) {
        (Some(mode), Some(JsonValue::Number(idle))) => format!("{mode}+{idle}idle"),
        _ => index.to_string(),
    }
}

/// Collect every `*p95_us` leaf under `value` into `rows`, pairing it
/// with the same path in `fresh`.
fn collect(prefix: &str, value: &JsonValue, fresh: Option<&JsonValue>, rows: &mut Vec<Row>) {
    match value {
        JsonValue::Object(map) => {
            for (key, child) in map {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                let fresh_child = fresh.and_then(|f| f.get(key));
                if key.ends_with("p95_us") {
                    if let JsonValue::Number(n) = child {
                        rows.push(Row {
                            metric: path,
                            baseline: *n as u64,
                            fresh: match fresh_child {
                                Some(JsonValue::Number(m)) => Some(*m as u64),
                                _ => None,
                            },
                        });
                        continue;
                    }
                }
                collect(&path, child, fresh_child, rows);
            }
        }
        JsonValue::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = element_label(i, item);
                let path = format!("{prefix}.{label}");
                let fresh_item = fresh.and_then(|f| f.items().get(i));
                collect(&path, item, fresh_item, rows);
            }
        }
        _ => {}
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threshold: f64 = take_value_flag(&mut args, "--threshold")
        .map(|v| v.parse().expect("--threshold takes a ratio"))
        .unwrap_or(0.25);
    let slack_us: u64 = take_value_flag(&mut args, "--slack-us")
        .map(|v| v.parse().expect("--slack-us takes microseconds"))
        .unwrap_or(500);
    assert!(
        !args.is_empty() && args.len().is_multiple_of(2),
        "usage: bench_gate <baseline.json> <fresh.json> [<baseline.json> <fresh.json> ...]"
    );

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for pair in args.chunks(2) {
        let (baseline_path, fresh_path) = (&pair[0], &pair[1]);
        let read = |path: &str| -> JsonValue {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_json(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        };
        let baseline = read(baseline_path);
        let fresh = read(fresh_path);

        let mut rows = Vec::new();
        collect("", &baseline, Some(&fresh), &mut rows);
        assert!(
            !rows.is_empty(),
            "{baseline_path}: no *p95_us leaves — wrong file?"
        );

        println!("== {baseline_path} vs {fresh_path}");
        println!(
            "   {:<44} {:>12} {:>12} {:>9}  verdict",
            "metric", "baseline µs", "fresh µs", "delta"
        );
        for row in &rows {
            let fresh_us = match row.fresh {
                Some(v) => v,
                None => {
                    // A missing leaf means the fresh doc changed shape —
                    // that is a gate failure, not a silent skip.
                    println!(
                        "   {:<44} {:>12} {:>12} {:>9}  MISSING",
                        row.metric, row.baseline, "-", "-"
                    );
                    regressions += 1;
                    continue;
                }
            };
            if row.baseline == 0 {
                println!(
                    "   {:<44} {:>12} {:>12} {:>9}  skip (zero baseline)",
                    row.metric, row.baseline, fresh_us, "-"
                );
                continue;
            }
            compared += 1;
            let delta = fresh_us as f64 / row.baseline as f64 - 1.0;
            let regressed = delta > threshold && fresh_us.saturating_sub(row.baseline) > slack_us;
            let verdict = if regressed { "REGRESSED" } else { "ok" };
            println!(
                "   {:<44} {:>12} {:>12} {:>+8.1}%  {verdict}",
                row.metric,
                row.baseline,
                fresh_us,
                delta * 100.0
            );
            if regressed {
                regressions += 1;
            }
        }

        // The SQL frontend must stay a rounding error next to evaluation:
        // whenever the baseline carries a `sql_overhead` block, the fresh
        // doc must too, and its parse+lower p50 must stay under 10% of
        // its own indexed-evaluation p50. This is a ratio within the
        // fresh run — machine speed cancels out, so no slack is needed.
        if baseline.get("sql_overhead").is_some() {
            let fresh_num = |key: &str| -> f64 {
                match fresh.get("sql_overhead").and_then(|o| o.get(key)) {
                    Some(JsonValue::Number(n)) => *n,
                    _ => panic!(
                        "{fresh_path}: sql_overhead.{key} missing \
                         (the baseline carries a sql_overhead block)"
                    ),
                }
            };
            compared += 1;
            let parse_p50 = fresh_num("parse_lower_p50_us");
            let eval_p50 = fresh_num("indexed_eval_p50_us").max(1.0);
            let ratio = parse_p50 / eval_p50;
            let regressed = ratio >= 0.10;
            let verdict = if regressed {
                "REGRESSED (>= 10%)"
            } else {
                "ok (< 10%)"
            };
            println!(
                "   sql_overhead: parse+lower p50 {parse_p50:.1}µs / \
                 indexed eval p50 {eval_p50:.0}µs = {:.2}%  {verdict}",
                ratio * 100.0
            );
            if regressed {
                regressions += 1;
            }
        }

        // Enabling the telemetry self-scraper must stay a rounding error
        // on the serving path: whenever the baseline carries a
        // `selfscrape_overhead` block, the fresh doc must too, and its
        // scraping throughput must stay within 2% of its own no-scraper
        // throughput. Again a ratio within the fresh run.
        if baseline.get("selfscrape_overhead").is_some() {
            let fresh_num = |key: &str| -> f64 {
                match fresh.get("selfscrape_overhead").and_then(|o| o.get(key)) {
                    Some(JsonValue::Number(n)) => *n,
                    _ => panic!(
                        "{fresh_path}: selfscrape_overhead.{key} missing \
                         (the baseline carries a selfscrape_overhead block)"
                    ),
                }
            };
            compared += 1;
            let baseline_rps = fresh_num("baseline_rps").max(1.0);
            let scraping_rps = fresh_num("scraping_rps");
            let overhead = (baseline_rps - scraping_rps).max(0.0) / baseline_rps;
            let regressed = overhead >= 0.02;
            let verdict = if regressed {
                "REGRESSED (>= 2%)"
            } else {
                "ok (< 2%)"
            };
            println!(
                "   selfscrape_overhead: {scraping_rps:.0} req/s scraping vs \
                 {baseline_rps:.0} req/s off = {:.2}% cost  {verdict}",
                overhead * 100.0
            );
            if regressed {
                regressions += 1;
            }
        }

        // Incremental index maintenance must keep earning its complexity:
        // whenever the baseline carries an `append_vs_rebuild` block, the
        // fresh doc must too, and its merge p50 must beat its own cold
        // rebuild p50 by at least 3×. A ratio within the fresh run, so
        // machine speed cancels out.
        if baseline.get("append_vs_rebuild").is_some() {
            let fresh_num = |key: &str| -> f64 {
                match fresh.get("append_vs_rebuild").and_then(|o| o.get(key)) {
                    Some(JsonValue::Number(n)) => *n,
                    _ => panic!(
                        "{fresh_path}: append_vs_rebuild.{key} missing \
                         (the baseline carries an append_vs_rebuild block)"
                    ),
                }
            };
            compared += 1;
            let append_p50 = fresh_num("append_p50_us").max(1.0);
            let rebuild_p50 = fresh_num("rebuild_p50_us");
            let speedup = rebuild_p50 / append_p50;
            let regressed = speedup < 3.0;
            let verdict = if regressed {
                "REGRESSED (< 3x)"
            } else {
                "ok (>= 3x)"
            };
            println!(
                "   append_vs_rebuild: merge p50 {append_p50:.0}µs vs cold \
                 rebuild p50 {rebuild_p50:.0}µs = {speedup:.2}x  {verdict}"
            );
            if regressed {
                regressions += 1;
            }
        }

        // Scatter/gather must keep beating single-shard execution:
        // whenever the baseline carries a `shard_scaling` block, the
        // fresh doc must too, and its 4-shard workload ok/s must beat
        // its own single-shard ok/s by at least 1.6×. A ratio within
        // the fresh run, so machine speed cancels out.
        if baseline.get("shard_scaling").is_some() {
            let fresh_num = |key: &str| -> f64 {
                match fresh.get("shard_scaling").and_then(|o| o.get(key)) {
                    Some(JsonValue::Number(n)) => *n,
                    _ => panic!(
                        "{fresh_path}: shard_scaling.{key} missing \
                         (the baseline carries a shard_scaling block)"
                    ),
                }
            };
            compared += 1;
            let s4_vs_s1 = fresh_num("s4_vs_s1");
            let regressed = s4_vs_s1 < 1.6;
            let verdict = if regressed {
                "REGRESSED (< 1.6x)"
            } else {
                "ok (>= 1.6x)"
            };
            println!(
                "   shard_scaling: 4-shard workload {s4_vs_s1:.2}x of \
                 single-shard (s2 {:.2}x)  {verdict}",
                fresh_num("s2_vs_s1")
            );
            if regressed {
                regressions += 1;
            }
        }

        // Streamed uploads must stay streamed: whenever the baseline
        // carries a `streamed_upload` block, the fresh upload's peak RSS
        // delta must stay under 12× the body bytes. The steady-state
        // footprint (endpoint table + warm indexes) dominates that
        // budget; buffering whole bodies again would blow through it.
        if baseline.get("streamed_upload").is_some() {
            let fresh_num = |key: &str| -> f64 {
                match fresh.get("streamed_upload").and_then(|o| o.get(key)) {
                    Some(JsonValue::Number(n)) => *n,
                    _ => panic!(
                        "{fresh_path}: streamed_upload.{key} missing \
                         (the baseline carries a streamed_upload block)"
                    ),
                }
            };
            compared += 1;
            let ratio = fresh_num("rss_ratio");
            let regressed = ratio >= 12.0;
            let verdict = if regressed {
                "REGRESSED (>= 12x)"
            } else {
                "ok (< 12x)"
            };
            println!(
                "   streamed_upload: peak RSS delta {:.2}x of body bytes  {verdict}",
                ratio
            );
            if regressed {
                regressions += 1;
            }
        }
    }

    println!(
        "bench gate: {compared} p95 comparisons, {regressions} regressions \
         (threshold {:.0}%, slack {slack_us}µs)",
        threshold * 100.0
    );
    if regressions > 0 {
        std::process::exit(1);
    }
}
