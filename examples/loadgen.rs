//! Load-generate against the TCP data-API service.
//!
//! Starts the service on an ephemeral port, fires N concurrent clients at a
//! small pool of ad-hoc query URLs, verifies that no response is lost or
//! malformed, and prints the cache hit rate reported by `/stats`.
//!
//! ```text
//! cargo run --example loadgen [clients] [requests-per-client]
//! ```

use shareinsights::server::{blocking_get, serve, ServeOptions, Server};
use shareinsights_core::Platform;
use std::time::Instant;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
"#;

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    // A platform with a modest synthetic dataset.
    let platform = Platform::new();
    let mut csv = String::from("region,brand,revenue\n");
    let regions = ["north", "south", "east", "west"];
    let brands = ["acme", "zest", "nova", "apex", "lumo"];
    for i in 0..2000 {
        csv.push_str(&format!(
            "{},{},{}\n",
            regions[i % regions.len()],
            brands[i % brands.len()],
            (i * 37) % 500
        ));
    }
    platform.upload_data("retail", "sales.csv", csv);
    platform.save_flow("retail", FLOW).expect("flow");
    platform.run_dashboard("retail").expect("run");

    let mut svc = serve(
        Server::new(platform),
        "127.0.0.1:0",
        ServeOptions::default(),
    )
    .expect("bind ephemeral port");
    let addr = svc.local_addr();
    println!("serving on http://{addr} — {clients} clients x {per_client} requests");

    let targets = [
        "/retail/ds/brand_sales".to_string(),
        "/retail/ds/brand_sales/groupby/region/count/brand".to_string(),
        "/retail/ds/brand_sales/groupby/brand/sum/revenue".to_string(),
        "/retail/ds/brand_sales/sort/revenue/desc/limit/5".to_string(),
        "/retail/ds/brand_sales/filter/region/north/limit/10".to_string(),
    ];

    let started = Instant::now();
    let ok: usize = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let targets = &targets;
                scope.spawn(move || {
                    let mut ok = 0;
                    for r in 0..per_client {
                        let target = &targets[(c + r) % targets.len()];
                        match blocking_get(addr, target) {
                            Ok((200, body)) if body.starts_with('{') => ok += 1,
                            Ok((code, body)) => {
                                panic!("malformed/failed response {code} for {target}: {body}")
                            }
                            Err(e) => panic!("lost response for {target}: {e}"),
                        }
                    }
                    ok
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    let elapsed = started.elapsed();
    let total = clients * per_client;
    assert_eq!(ok, total, "every request must get a well-formed response");

    let (code, stats) = blocking_get(addr, "/stats").expect("/stats");
    assert_eq!(code, 200);
    let doc = shareinsights_tabular::io::json::parse_json(&stats).expect("stats json");
    let hits = doc.path("cache.hits").unwrap().to_value().as_int().unwrap();
    let misses = doc
        .path("cache.misses")
        .unwrap()
        .to_value()
        .as_int()
        .unwrap();
    let rate = 100.0 * hits as f64 / (hits + misses).max(1) as f64;

    println!(
        "{total} requests in {:.2?} ({:.0} req/s), 0 lost, 0 malformed",
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    println!("cache: {hits} hits / {misses} misses — {rate:.1}% hit rate");
    println!("--- /stats ---\n{stats}");

    svc.shutdown();
}
