//! Load-generate against the TCP data-API service over persistent
//! connections.
//!
//! Starts the service on an ephemeral port, fires N concurrent clients at a
//! small pool of ad-hoc query URLs — each client holding one keep-alive
//! connection and reconnecting only when the server closes it — verifies
//! that no response is lost or malformed, and reports the connection reuse
//! rate alongside the cache hit rate from `/stats`. The CI smoke job runs
//! this binary and relies on its asserts: any lost/malformed response or a
//! reuse rate at or below 0.9 aborts with a non-zero exit.
//!
//! ```text
//! cargo run --example loadgen [clients] [requests-per-client] [--close]
//! ```
//!
//! `--close` forces one connection per request (the pre-keep-alive
//! behaviour) for before/after comparisons; reuse-rate asserts are skipped
//! in that mode.

use shareinsights::server::{blocking_get, serve, ClientConnection, ServeOptions, Server};
use shareinsights_core::Platform;
use std::time::Instant;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let close_mode = args.iter().any(|a| a == "--close");
    let mut nums = args.iter().filter(|a| *a != "--close");
    let clients: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let per_client: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    // A platform with a modest synthetic dataset.
    let platform = Platform::new();
    let mut csv = String::from("region,brand,revenue\n");
    let regions = ["north", "south", "east", "west"];
    let brands = ["acme", "zest", "nova", "apex", "lumo"];
    for i in 0..2000 {
        csv.push_str(&format!(
            "{},{},{}\n",
            regions[i % regions.len()],
            brands[i % brands.len()],
            (i * 37) % 500
        ));
    }
    platform.upload_data("retail", "sales.csv", csv);
    platform.save_flow("retail", FLOW).expect("flow");
    platform.run_dashboard("retail").expect("run");

    let mut svc = serve(
        Server::new(platform),
        "127.0.0.1:0",
        ServeOptions::default(),
    )
    .expect("bind ephemeral port");
    let addr = svc.local_addr();
    let mode = if close_mode {
        "one connection per request"
    } else {
        "keep-alive"
    };
    println!("serving on http://{addr} — {clients} clients x {per_client} requests ({mode})");

    let targets = [
        "/retail/ds/brand_sales".to_string(),
        "/retail/ds/brand_sales/groupby/region/count/brand".to_string(),
        "/retail/ds/brand_sales/groupby/brand/sum/revenue".to_string(),
        "/retail/ds/brand_sales/sort/revenue/desc/limit/5".to_string(),
        "/retail/ds/brand_sales/filter/region/north/limit/10".to_string(),
    ];

    let started = Instant::now();
    // Each client holds one persistent connection, reconnecting only when
    // the server closes it (Connection: close, idle timeout, or the
    // per-connection request bound). Returns (ok, connections used).
    let per_thread: Vec<(usize, usize)> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let targets = &targets;
                scope.spawn(move || {
                    let mut conn = ClientConnection::connect(addr).expect("connect");
                    let mut connections = 1;
                    let mut ok = 0;
                    for r in 0..per_client {
                        let target = &targets[(c + r) % targets.len()];
                        if conn.server_closed() {
                            conn = ClientConnection::connect(addr).expect("reconnect");
                            connections += 1;
                        }
                        let outcome = if close_mode {
                            conn.request_close("GET", target, "")
                        } else {
                            conn.request("GET", target, "")
                        };
                        match outcome {
                            Ok((200, body)) if body.starts_with('{') => ok += 1,
                            Ok((code, body)) => {
                                panic!("malformed/failed response {code} for {target}: {body}")
                            }
                            Err(e) => panic!("lost response for {target}: {e}"),
                        }
                    }
                    (ok, connections)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();
    let total = clients * per_client;
    let ok: usize = per_thread.iter().map(|(ok, _)| ok).sum();
    let connections: usize = per_thread.iter().map(|(_, c)| c).sum();
    assert_eq!(ok, total, "every request must get a well-formed response");

    // Reuse rate: the fraction of requests that rode an already-open
    // connection instead of paying connect/teardown.
    let reuse = (total - connections) as f64 / total as f64;
    assert!(
        close_mode || reuse > 0.9,
        "keep-alive must amortize connects: reuse {reuse:.3} over {connections} connections"
    );

    let (code, stats) = blocking_get(addr, "/stats").expect("/stats");
    assert_eq!(code, 200);
    let doc = shareinsights_tabular::io::json::parse_json(&stats).expect("stats json");
    let hits = doc.path("cache.hits").unwrap().to_value().as_int().unwrap();
    let misses = doc
        .path("cache.misses")
        .unwrap()
        .to_value()
        .as_int()
        .unwrap();
    let rate = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
    let reused = doc
        .path("connections.reused")
        .unwrap()
        .to_value()
        .as_int()
        .unwrap();
    assert!(
        close_mode || reused > 0,
        "server must observe reused connections: {stats}"
    );

    println!(
        "{total} requests in {:.2?} ({:.0} req/s), 0 lost, 0 malformed",
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "connections: {connections} opened for {total} requests — reuse rate {:.1}%",
        100.0 * reuse
    );
    println!("cache: {hits} hits / {misses} misses — {rate:.1}% hit rate");
    println!("--- /stats ---\n{stats}");

    svc.shutdown();
}
