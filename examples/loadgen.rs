//! Load-generate against the TCP data-API service over persistent
//! connections.
//!
//! Starts the service on an ephemeral port, fires N concurrent clients at a
//! small pool of ad-hoc query URLs — each client holding one keep-alive
//! connection and reconnecting only when the server closes it — verifies
//! that no response is lost or malformed, and reports client-side latency
//! percentiles plus the connection reuse rate and cache hit rate from
//! `/stats`. Every request carries an `X-Trace-Id` with a fixed
//! `10adc0de` prefix, so its server-side span tree is retrievable from
//! `/trace/recent`; after the run the tool verifies the correlation and
//! checks that `/metrics` renders parseable Prometheus exposition (every
//! `# TYPE` has samples; histogram buckets are cumulative with `+Inf` ==
//! `_count`). The CI smoke job runs this binary and relies on its asserts:
//! any lost/malformed response, a reuse rate at or below 0.9, a missing
//! trace, or a malformed exposition aborts with a non-zero exit.
//!
//! ```text
//! cargo run --example loadgen [clients] [requests-per-client] [--close] [--no-trace]
//!     [--serve-mode threads|reactor] [--idle-conns N]
//! cargo run --release --example loadgen -- --cold [rows] [iterations]
//! cargo run --release --example loadgen -- --concurrency-bench
//! cargo run --release --example loadgen -- --stream-bench [subscribers] [ticks]
//! cargo run --release --example loadgen -- --sql
//! cargo run --release --example loadgen -- --self-scrape
//! cargo run --release --example loadgen -- --ingest-bench [base-rows] [append-rows]
//! cargo run --release --example loadgen -- --shard-bench [rows] [iterations]
//! ```
//!
//! `--close` forces one connection per request (the pre-keep-alive
//! behaviour) for before/after comparisons; reuse-rate asserts are skipped
//! in that mode. `--no-trace` sets the tracer's sampling knob to 0 and
//! sends no `X-Trace-Id` — the baseline for measuring tracing overhead
//! (trace asserts are skipped).
//!
//! `--serve-mode reactor` serves through the epoll event loop instead of
//! the thread-per-connection pool. `--idle-conns N` opens N quiet
//! keep-alive connections before the load starts and holds them open for
//! the whole run — in reactor mode the load must be undisturbed (the CI
//! reactor smoke job runs exactly this and relies on the zero-5xx /
//! exposition asserts); in thread mode N idle connections pin the worker
//! pool, so expect the run to abort.
//!
//! `--concurrency-bench` measures that contrast instead of asserting it:
//! both serve modes × idle herds of 0/256/2048, each with 32 active
//! clients, reporting per-config p50/p95/p99 and 5xx counts as a JSON
//! document on stdout — the source of the committed
//! `BENCH_serve_concurrency.json` (progress goes to stderr).
//!
//! `--stream-bench` measures the live-flow path: the reactor serves a
//! streaming dashboard to a herd of idle SSE subscribers (default 500)
//! plus a handful of actively reading probes; micro-batches are pushed
//! through `POST .../stream/push/<source>` and the tick-to-push latency —
//! push initiated to frame received — is reported as p50/p95 in a JSON
//! document on stdout, the source of the committed
//! `BENCH_stream_latency.json`. The CI streaming smoke job runs this mode
//! and relies on its asserts: any 5xx, a non-monotonic generation
//! sequence on any subscriber, an evicted subscriber, or a malformed
//! `/metrics` exposition (which must include the `shareinsights_stream_*`
//! families) aborts with a non-zero exit.
//!
//! `--sql` switches to the SQL-frontend smoke: both serve modes get mixed
//! SQL (`POST /<dashboard>/ds/<dataset>/sql`) and path-segment traffic
//! over the same logical queries, asserting every SQL payload is
//! byte-identical to its path-grammar twin, that malformed SQL returns a
//! structured 400 (never a 5xx), and that the `shareinsights_sql_*`
//! counter families export on `/metrics`. The CI SQL smoke job runs this
//! mode and relies on those asserts.
//!
//! `--self-scrape` switches to the self-observability smoke: both serve
//! modes run with the telemetry scraper enabled
//! ([`ServeOptions::scrape_interval`]) while warm query traffic flows,
//! then assert that the built-in `_system/ds/telemetry` dashboard serves a
//! non-empty scraped history, that `SELECT family, max(value) FROM
//! telemetry GROUP BY family` over `POST /_system/ds/telemetry/sql` is
//! byte-identical to the path-grammar route, that writes into the
//! `_system` namespace are rejected with 409, and that the
//! `shareinsights_selfscrape_*` / `shareinsights_process_*` families
//! export on `/metrics`. The CI self-scrape smoke job runs this mode and
//! relies on those asserts.
//!
//! `--ingest-bench` measures the streaming ingestion pipeline: a bulk CSV
//! upload (default 1M rows) streams through the chunked ingest route with
//! RSS sampled throughout — the bounded-window claim shows up as a peak
//! RSS delta that stays a small multiple of the body size — then the
//! endpoint's index is warmed and a series of append batches must each
//! answer 200 with `"index": "merged"` (incremental maintenance, no cold
//! rebuild) and a strictly increasing generation. An in-process
//! append-vs-rebuild comparison times `IndexedTable::append` against a
//! cold rebuild over the concatenated table; the JSON document on stdout
//! is the source of the committed `BENCH_ingest.json`. The CI ingest
//! smoke job runs this mode on a smaller dataset and relies on its
//! asserts: any 5xx, a non-monotonic generation, a cold fallback on a
//! warm append, an ingest abort, or a malformed `/metrics` exposition
//! (which must carry the `shareinsights_ingest_*` families) aborts with a
//! non-zero exit.
//!
//! `--shard-bench` measures the shared-nothing sharded data plane: the
//! same ~1M-row synthetic dataset is queried cold (derived caches cleared
//! between iterations) through servers at 1, 2, and 4 shards over a
//! groupby + top-n workload, asserting every sharded response is
//! byte-identical to the single-shard answer and that the sharded servers
//! actually scattered. The JSON document on stdout — per-width cold
//! latencies, ok/s, and the `shard_scaling` ratios — is the source of the
//! committed `BENCH_shard_scaling.json`; at full size the run itself
//! asserts the 4-shard workload beats single-shard by >= 1.6x. A served
//! smoke phase then fires the workload at both TCP serve modes with
//! `ServeOptions::shards = 4`, asserting zero 5xx, byte-identical bodies,
//! and the `shareinsights_shard_*` families in a valid `/metrics`
//! exposition. The CI shard smoke job runs a smaller config and relies on
//! those asserts.
//!
//! `--cold` switches to the cold-query benchmark: a ~1M-row synthetic
//! dataset (configurable) is queried through the scan kernels and through
//! the indexed path ([`shareinsights::tabular::IndexedTable`]), asserting
//! the two produce byte-identical JSON for every route, then reporting
//! cold (cache-bypassed, per-evaluation) and warm (served cache hit)
//! p50/p95 per route as a JSON document on stdout — the source of the
//! committed `BENCH_adhoc_query.json`. Progress goes to stderr, so
//! `--cold > BENCH_adhoc_query.json` captures just the document. The CI
//! bench-smoke job runs this mode on a smaller dataset and relies on the
//! differential asserts.

use shareinsights::server::{
    blocking_get, blocking_request, serve, ClientConnection, Request, ServeMode, ServeOptions,
    Server,
};
use shareinsights_core::Platform;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
"#;

/// The ad-hoc query pool every serving load cycles through.
const TARGETS: [&str; 5] = [
    "/retail/ds/brand_sales",
    "/retail/ds/brand_sales/groupby/region/count/brand",
    "/retail/ds/brand_sales/groupby/brand/sum/revenue",
    "/retail/ds/brand_sales/sort/revenue/desc/limit/5",
    "/retail/ds/brand_sales/filter/region/north/limit/10",
];

/// Remove `name <value>` from `args`, returning the value.
fn take_value_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        panic!("{name} needs a value");
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// The modest synthetic retail platform the serving loads run against.
fn retail_platform() -> Platform {
    let platform = Platform::new();
    let mut csv = String::from("region,brand,revenue\n");
    let regions = ["north", "south", "east", "west"];
    let brands = ["acme", "zest", "nova", "apex", "lumo"];
    for i in 0..2000 {
        csv.push_str(&format!(
            "{},{},{}\n",
            regions[i % regions.len()],
            brands[i % brands.len()],
            (i * 37) % 500
        ));
    }
    platform.upload_data("retail", "sales.csv", csv);
    platform.save_flow("retail", FLOW).expect("flow");
    platform.run_dashboard("retail").expect("run");
    platform
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let serve_mode = match take_value_flag(&mut args, "--serve-mode").as_deref() {
        None | Some("threads") => ServeMode::ThreadPerConnection,
        Some("reactor") => ServeMode::Reactor,
        Some(other) => panic!("unknown --serve-mode '{other}' (threads|reactor)"),
    };
    let idle_conns: usize = take_value_flag(&mut args, "--idle-conns")
        .map(|v| v.parse().expect("--idle-conns takes a count"))
        .unwrap_or(0);
    let close_mode = args.iter().any(|a| a == "--close");
    let no_trace = args.iter().any(|a| a == "--no-trace");
    let cold_mode = args.iter().any(|a| a == "--cold");
    if args.iter().any(|a| a == "--concurrency-bench") {
        serve_concurrency_benchmark();
        return;
    }
    if args.iter().any(|a| a == "--sql") {
        sql_smoke();
        return;
    }
    if args.iter().any(|a| a == "--self-scrape") {
        self_scrape_smoke();
        return;
    }
    let ingest_mode = args.iter().any(|a| a == "--ingest-bench");
    let stream_mode = args.iter().any(|a| a == "--stream-bench");
    let mut nums = args.iter().filter(|a| !a.starts_with("--"));
    if ingest_mode {
        let base_rows: usize = nums
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or(1_000_000);
        let append_rows: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
        ingest_benchmark(base_rows, append_rows);
        return;
    }
    if stream_mode {
        let subscribers: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(500);
        let ticks: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(20);
        stream_benchmark(subscribers, ticks);
        return;
    }
    if args.iter().any(|a| a == "--shard-bench") {
        let rows: usize = nums
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or(1_000_000);
        let iters: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(5);
        shard_benchmark(rows, iters);
        return;
    }
    if cold_mode {
        let rows: usize = nums
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or(1_000_000);
        let iters: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(8);
        cold_query_benchmark(rows, iters);
        return;
    }
    let clients: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let per_client: usize = nums.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    let platform = retail_platform();
    if no_trace {
        // Sampling 0 disables tracing entirely (explicit ids included) —
        // the baseline for measuring the tracing subsystem's overhead.
        platform.tracer().set_sample_one_in(0);
    }

    let opts = ServeOptions {
        serve_mode,
        // The idle herd must outlive the measured load.
        idle_timeout: if idle_conns > 0 {
            Duration::from_secs(60)
        } else {
            ServeOptions::default().idle_timeout
        },
        ..ServeOptions::default()
    };
    let mut svc = serve(Server::new(platform), "127.0.0.1:0", opts).expect("bind ephemeral port");
    let addr = svc.local_addr();
    let mode = if close_mode {
        "one connection per request"
    } else {
        "keep-alive"
    };
    println!(
        "serving on http://{addr} ({serve_mode:?}) — {clients} clients x {per_client} requests ({mode})"
    );

    // The quiet herd: opened before the load, held for its whole
    // duration. In reactor mode these cost a connection-table entry each
    // and the load below must be completely undisturbed.
    let idle: Vec<TcpStream> = (0..idle_conns)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
        .collect();
    if !idle.is_empty() {
        println!("holding {} idle keep-alive connections", idle.len());
        std::thread::sleep(Duration::from_millis(200));
    }

    let targets = TARGETS;

    let started = Instant::now();
    // Each client holds one persistent connection, reconnecting only when
    // the server closes it (Connection: close, idle timeout, or the
    // per-connection request bound). Every request carries an X-Trace-Id
    // with the 10adc0de prefix for /trace/recent correlation. Returns
    // (ok, connections used, per-request latencies in µs).
    let per_thread: Vec<(usize, usize, Vec<u64>)> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let targets = &targets;
                scope.spawn(move || {
                    let mut conn = ClientConnection::connect(addr).expect("connect");
                    let mut connections = 1;
                    let mut ok = 0;
                    let mut latencies_us = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let target = targets[(c + r) % targets.len()];
                        if conn.server_closed() {
                            conn = ClientConnection::connect(addr).expect("reconnect");
                            connections += 1;
                        }
                        let trace_id = format!("10adc0de{:08x}", c * per_client + r);
                        let sent = Instant::now();
                        let outcome = if close_mode {
                            conn.request_close("GET", target, "")
                        } else if no_trace {
                            conn.request("GET", target, "")
                        } else {
                            conn.request_with_headers(
                                "GET",
                                target,
                                "",
                                &[("X-Trace-Id", &trace_id)],
                            )
                        };
                        latencies_us.push(sent.elapsed().as_micros() as u64);
                        match outcome {
                            Ok((200, body)) if body.starts_with('{') => ok += 1,
                            Ok((code, body)) => {
                                panic!("malformed/failed response {code} for {target}: {body}")
                            }
                            Err(e) => panic!("lost response for {target}: {e}"),
                        }
                    }
                    (ok, connections, latencies_us)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();
    let total = clients * per_client;
    let ok: usize = per_thread.iter().map(|(ok, _, _)| ok).sum();
    let connections: usize = per_thread.iter().map(|(_, c, _)| c).sum();
    assert_eq!(ok, total, "every request must get a well-formed response");

    // Client-observed latency percentiles over every request.
    let mut latencies: Vec<u64> = per_thread
        .iter()
        .flat_map(|(_, _, l)| l.iter().copied())
        .collect();
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        let idx = ((latencies.len() as f64 * p).ceil() as usize).max(1) - 1;
        latencies[idx.min(latencies.len() - 1)]
    };
    let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));

    // Reuse rate: the fraction of requests that rode an already-open
    // connection instead of paying connect/teardown.
    let reuse = (total - connections) as f64 / total as f64;
    assert!(
        close_mode || reuse > 0.9,
        "keep-alive must amortize connects: reuse {reuse:.3} over {connections} connections"
    );

    let (code, stats) = blocking_get(addr, "/stats").expect("/stats");
    assert_eq!(code, 200);
    let doc = shareinsights_tabular::io::json::parse_json(&stats).expect("stats json");
    let hits = doc.path("cache.hits").unwrap().to_value().as_int().unwrap();
    let misses = doc
        .path("cache.misses")
        .unwrap()
        .to_value()
        .as_int()
        .unwrap();
    let rate = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
    let reused = doc
        .path("connections.reused")
        .unwrap()
        .to_value()
        .as_int()
        .unwrap();
    assert!(
        close_mode || reused > 0,
        "server must observe reused connections: {stats}"
    );

    // The load ran with explicit X-Trace-Ids; the server's ring must hold
    // span trees correlatable by the shared prefix.
    if !close_mode && !no_trace {
        let (code, recent) = blocking_get(addr, "/trace/recent?limit=5").expect("/trace/recent");
        assert_eq!(code, 200);
        assert!(
            recent.contains("10adc0de"),
            "recent traces must carry the loadgen X-Trace-Id prefix: {recent}"
        );
        assert!(
            recent.contains("query_eval") || recent.contains("cache_lookup"),
            "span trees must show dispatch children: {recent}"
        );
    }

    let (code, metrics) = blocking_get(addr, "/metrics").expect("/metrics");
    assert_eq!(code, 200);
    validate_exposition(&metrics);

    println!(
        "{total} requests in {:.2?} ({:.0} req/s), 0 lost, 0 malformed",
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    println!("client latency: p50 {p50}µs  p95 {p95}µs  p99 {p99}µs");
    println!(
        "connections: {connections} opened for {total} requests — reuse rate {:.1}%",
        100.0 * reuse
    );
    println!("cache: {hits} hits / {misses} misses — {rate:.1}% hit rate");
    println!("/metrics exposition OK ({} lines)", metrics.lines().count());

    if serve_mode == ServeMode::Reactor {
        // The whole herd (plus at least one active connection) must have
        // been registered with the event loop, and the reactor series
        // must export under their Prometheus names.
        let peak = doc
            .path("reactor.peak_registered")
            .unwrap()
            .to_value()
            .as_int()
            .unwrap();
        assert!(
            peak as usize > idle_conns,
            "reactor must register the idle herd: peak {peak} vs {idle_conns} idle"
        );
        assert!(
            metrics.contains("shareinsights_reactor_wakeups_total"),
            "reactor series missing from /metrics"
        );
        println!("reactor: peak {peak} registered connections, zero 5xx");
    }
    println!("--- /stats ---\n{stats}");

    drop(idle);
    svc.shutdown();
}

/// The `--concurrency-bench` mode: quantify what the reactor buys. Both
/// serve modes are loaded with 32 active keep-alive clients while a herd
/// of 0, 256, or 2048 idle connections sits on the same service; per
/// configuration the client-observed p50/p95/p99, 5xx count, and lost
/// count go to stdout as a JSON document — the source of the committed
/// `BENCH_serve_concurrency.json`. Thread mode is *expected* to shed or
/// starve under an idle herd (that is the point of the comparison), so
/// unlike the default load mode nothing here asserts zero failures.
fn serve_concurrency_benchmark() {
    use shareinsights_core::trace::EventLog;
    const ACTIVE_CLIENTS: usize = 32;
    const PER_CLIENT: usize = 25;
    const IDLE_LEVELS: [usize; 3] = [0, 256, 2048];

    let pct = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() as f64 * p).ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    };

    let mut config_docs = Vec::new();
    for mode in [ServeMode::ThreadPerConnection, ServeMode::Reactor] {
        for idle_conns in IDLE_LEVELS {
            let mode_name = match mode {
                ServeMode::ThreadPerConnection => "threads",
                ServeMode::Reactor => "reactor",
            };
            eprintln!("{mode_name} with {idle_conns} idle connections…");
            let opts = ServeOptions {
                serve_mode: mode,
                // The herd must outlive the measured load, and the 5xx
                // storm thread mode produces should not spam stderr.
                idle_timeout: Duration::from_secs(120),
                event_log: EventLog::in_memory(),
                ..ServeOptions::default()
            };
            let mut svc = serve(Server::new(retail_platform()), "127.0.0.1:0", opts)
                .expect("bind ephemeral port");
            let addr = svc.local_addr();

            let idle: Vec<TcpStream> = (0..idle_conns)
                .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")))
                .collect();
            std::thread::sleep(Duration::from_millis(200));

            let started = Instant::now();
            // Each active client holds one keep-alive connection,
            // reconnecting whenever the server closes it (including after
            // every load-shedding 503). (ok, 5xx, lost, ok-latencies µs).
            let per_thread: Vec<(usize, usize, usize, Vec<u64>)> = std::thread::scope(|scope| {
                (0..ACTIVE_CLIENTS)
                    .map(|c| {
                        scope.spawn(move || {
                            let mut conn: Option<ClientConnection> = None;
                            let (mut ok, mut server_5xx, mut lost) = (0usize, 0usize, 0usize);
                            let mut latencies_us = Vec::with_capacity(PER_CLIENT);
                            for r in 0..PER_CLIENT {
                                let target = TARGETS[(c + r) % TARGETS.len()];
                                if conn.as_ref().is_none_or(|c| c.server_closed()) {
                                    match ClientConnection::connect(addr) {
                                        Ok(fresh) => conn = Some(fresh),
                                        Err(_) => {
                                            lost += 1;
                                            continue;
                                        }
                                    }
                                }
                                let sent = Instant::now();
                                match conn.as_mut().unwrap().get(target) {
                                    Ok((200, _)) => {
                                        ok += 1;
                                        latencies_us.push(sent.elapsed().as_micros() as u64);
                                    }
                                    Ok((code, _)) if code >= 500 => server_5xx += 1,
                                    Ok((code, body)) => {
                                        panic!("unexpected {code} for {target}: {body}")
                                    }
                                    Err(_) => {
                                        lost += 1;
                                        conn = None;
                                    }
                                }
                            }
                            (ok, server_5xx, lost, latencies_us)
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect()
            });
            let elapsed = started.elapsed();
            drop(idle);

            let ok: usize = per_thread.iter().map(|(ok, _, _, _)| ok).sum();
            let server_5xx: usize = per_thread.iter().map(|(_, e, _, _)| e).sum();
            let lost: usize = per_thread.iter().map(|(_, _, l, _)| l).sum();
            let mut latencies: Vec<u64> = per_thread
                .iter()
                .flat_map(|(_, _, _, l)| l.iter().copied())
                .collect();
            latencies.sort_unstable();
            let (p50, p95, p99) = (
                pct(&latencies, 0.50),
                pct(&latencies, 0.95),
                pct(&latencies, 0.99),
            );
            let ok_per_sec = ok as f64 / elapsed.as_secs_f64();
            eprintln!(
                "  {ok}/{} ok, {server_5xx} 5xx, {lost} lost — \
                 p50 {p50}µs p95 {p95}µs p99 {p99}µs",
                ACTIVE_CLIENTS * PER_CLIENT
            );
            config_docs.push(format!(
                "    {{\"serve_mode\": \"{mode_name}\", \"idle_conns\": {idle_conns}, \
                 \"requests\": {}, \"ok\": {ok}, \"server_5xx\": {server_5xx}, \
                 \"lost\": {lost}, \"p50_us\": {p50}, \"p95_us\": {p95}, \"p99_us\": {p99}, \
                 \"elapsed_ms\": {}, \"ok_per_sec\": {ok_per_sec:.0}}}",
                ACTIVE_CLIENTS * PER_CLIENT,
                elapsed.as_millis()
            ));
            svc.shutdown();
        }
    }

    println!("{{");
    println!("  \"active_clients\": {ACTIVE_CLIENTS},");
    println!("  \"requests_per_client\": {PER_CLIENT},");
    println!("  \"idle_levels\": [0, 256, 2048],");
    println!("  \"configs\": [");
    println!("{}", config_docs.join(",\n"));
    println!("  ]");
    println!("}}");
}

/// The `--stream-bench` mode: quantify live-flow delivery. A reactor
/// service carries `subscribers` idle SSE subscriptions plus a handful of
/// actively reading probes while `ticks` micro-batches are pushed; the
/// probes timestamp every generation-delta frame against the instant its
/// push was initiated, and the resulting tick-to-push p50/p95 goes to
/// stdout as a JSON document — the source of the committed
/// `BENCH_stream_latency.json`. Asserts (the CI streaming smoke job
/// relies on them): zero 5xx, strictly increasing generations on every
/// subscriber — herd included — zero evictions, and a well-formed
/// `/metrics` exposition carrying the `shareinsights_stream_*` families.
fn stream_benchmark(subscribers: usize, ticks: usize) {
    use shareinsights_core::trace::EventLog;
    const PROBES: usize = 8;

    eprintln!(
        "stream benchmark: {subscribers} idle subscribers + {PROBES} probes, {ticks} ticks (reactor)"
    );
    let opts = ServeOptions {
        serve_mode: ServeMode::Reactor,
        // The herd must outlive the measured run.
        idle_timeout: Duration::from_secs(120),
        event_log: EventLog::in_memory(),
        ..ServeOptions::default()
    };
    let mut svc =
        serve(Server::new(retail_platform()), "127.0.0.1:0", opts).expect("bind ephemeral port");
    let addr = svc.local_addr();

    let (code, body) = blocking_request(addr, "POST", "/dashboards/retail/stream/start", "")
        .expect("stream start");
    assert_eq!(code, 200, "stream start must succeed: {body}");

    // The idle herd holds live subscriptions for the whole run without
    // reading; everything it is owed sits in kernel socket buffers until
    // the post-run drain checks it.
    let mut herd = Vec::with_capacity(subscribers);
    for i in 0..subscribers {
        let conn =
            ClientConnection::connect(addr).unwrap_or_else(|e| panic!("subscriber {i}: {e}"));
        let sub = conn
            .subscribe("/retail/ds/brand_sales/subscribe")
            .unwrap_or_else(|e| panic!("subscribe {i}: {e}"));
        herd.push(sub);
    }
    eprintln!("herd of {subscribers} subscribed");

    let pct = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() as f64 * p).ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    };

    // Probes subscribe, swallow their snapshot, and rendezvous with the
    // pusher so no probe can subscribe mid-sequence and miss a tick.
    let barrier = std::sync::Barrier::new(PROBES + 1);
    let barrier = &barrier;
    let mut push_t0 = Vec::with_capacity(ticks);
    let probe_events: Vec<Vec<(u64, Instant)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PROBES)
            .map(|p| {
                scope.spawn(move || {
                    let conn = ClientConnection::connect(addr).expect("probe connect");
                    let mut sub = conn
                        .subscribe("/retail/ds/brand_sales/subscribe")
                        .expect("probe subscribe");
                    let mut snapshot = Vec::new();
                    while snapshot.is_empty() {
                        snapshot = sub
                            .next_events(Duration::from_millis(250))
                            .unwrap_or_else(|e| panic!("probe {p} snapshot: {e}"));
                    }
                    barrier.wait();
                    let mut deltas = Vec::with_capacity(ticks);
                    let deadline = Instant::now() + Duration::from_secs(30);
                    while deltas.len() < ticks && Instant::now() < deadline {
                        let batch = sub
                            .next_events(Duration::from_millis(250))
                            .unwrap_or_else(|e| panic!("probe {p}: {e}"));
                        let received = Instant::now();
                        deltas.extend(batch.into_iter().map(|ev| (ev.id, received)));
                    }
                    assert_eq!(deltas.len(), ticks, "probe {p} missed frames");
                    deltas
                })
            })
            .collect();

        barrier.wait();
        for t in 0..ticks {
            let body = format!(
                "north,streamed_{t},{}\nsouth,streamed_{t},{}\n",
                t + 1,
                t + 2
            );
            push_t0.push(Instant::now());
            let (code, resp) =
                blocking_request(addr, "POST", "/dashboards/retail/stream/push/sales", &body)
                    .expect("push");
            assert_eq!(code, 200, "push {t} must not 5xx: {resp}");
            // Pace the ticks apart so each frame's delivery is measured
            // on an otherwise quiet wire.
            std::thread::sleep(Duration::from_millis(10));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("probe thread"))
            .collect()
    });

    // Tick-to-push latency: k-th delta frame against the k-th push.
    let mut latencies_us: Vec<u64> = Vec::with_capacity(PROBES * ticks);
    for (p, deltas) in probe_events.iter().enumerate() {
        let mut last = 0u64;
        for (k, (generation, received)) in deltas.iter().enumerate() {
            assert!(
                *generation > last,
                "probe {p}: generation {generation} after {last} — not monotonic"
            );
            last = *generation;
            latencies_us.push(received.duration_since(push_t0[k]).as_micros() as u64);
        }
    }
    latencies_us.sort_unstable();
    let (p50, p95, p99) = (
        pct(&latencies_us, 0.50),
        pct(&latencies_us, 0.95),
        pct(&latencies_us, 0.99),
    );
    eprintln!("tick-to-push: p50 {p50}µs  p95 {p95}µs  p99 {p99}µs");

    // Drain the herd: every subscriber is owed its snapshot plus one
    // frame per tick, in strictly increasing generation order.
    for (i, sub) in herd.iter_mut().enumerate() {
        let want = 1 + ticks;
        let mut got = Vec::with_capacity(want);
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < want && Instant::now() < deadline {
            got.extend(
                sub.next_events(Duration::from_millis(100))
                    .unwrap_or_else(|e| panic!("herd subscriber {i}: {e}")),
            );
        }
        assert_eq!(got.len(), want, "herd subscriber {i} missed frames");
        let mut last: Option<u64> = None;
        for ev in &got {
            assert!(
                last.is_none_or(|l| ev.id > l),
                "herd subscriber {i}: generation {} after {last:?}",
                ev.id
            );
            last = Some(ev.id);
        }
    }
    eprintln!(
        "herd drained: {} frames each, generations monotonic",
        1 + ticks
    );

    let (code, stats) = blocking_get(addr, "/stats").expect("/stats");
    assert_eq!(code, 200);
    let doc = shareinsights_tabular::io::json::parse_json(&stats).expect("stats json");
    let stream_stat = |key: &str| -> i64 {
        doc.path(&format!("stream.{key}"))
            .unwrap_or_else(|| panic!("no stream.{key} in {stats}"))
            .to_value()
            .as_int()
            .unwrap()
    };
    assert_eq!(
        stream_stat("ticks"),
        ticks as i64,
        "every push must be recorded as a tick"
    );
    assert_eq!(
        stream_stat("dropped_subscribers"),
        0,
        "no subscriber may be evicted during the paced run: {stats}"
    );
    let frames_sent = stream_stat("frames_sent");
    let peak = stream_stat("peak_subscribers");
    assert!(
        peak >= (subscribers + PROBES) as i64,
        "peak subscriber gauge must cover the herd: {peak}"
    );

    let (code, metrics) = blocking_get(addr, "/metrics").expect("/metrics");
    assert_eq!(code, 200);
    validate_exposition(&metrics);
    assert!(
        metrics.contains("shareinsights_stream_frames_sent_total"),
        "stream series missing from /metrics"
    );
    eprintln!("/metrics exposition OK ({} lines)", metrics.lines().count());

    println!("{{");
    println!("  \"subscribers\": {subscribers},");
    println!("  \"probes\": {PROBES},");
    println!("  \"ticks\": {ticks},");
    println!("  \"frames_sent\": {frames_sent},");
    println!("  \"evicted_subscribers\": 0,");
    println!("  \"tick_to_push\": {{\"p50_us\": {p50}, \"p95_us\": {p95}, \"p99_us\": {p99}}}");
    println!("}}");

    drop(herd);
    svc.shutdown();
}

/// The `--sql` mode: smoke the SQL frontend over the wire. Each serve
/// mode gets its own retail platform and several rounds of mixed traffic
/// where every `POST /retail/ds/brand_sales/sql` body is asserted
/// byte-identical to its path-grammar twin from `TARGETS`, a rich
/// SQL-only query must serve 200, and malformed SQL must come back as a
/// structured 400 (never a 5xx). Afterwards `/stats` must show the
/// canonical queries sharing the path route's cache entries
/// (`sql.path_shared` == matched pairs) and exactly one parse error, and
/// `/metrics` must export the `shareinsights_sql_*` families in a
/// well-formed exposition. The CI SQL smoke job relies on these asserts.
fn sql_smoke() {
    // Path targets and their canonical SQL twins: same ops, same cache
    // entry, byte-identical payload.
    let pairs: [(&str, &str); 5] = [
        ("/retail/ds/brand_sales", "select * from brand_sales"),
        (
            "/retail/ds/brand_sales/groupby/region/count/brand",
            "select region, count(brand) from brand_sales group by region",
        ),
        (
            "/retail/ds/brand_sales/groupby/brand/sum/revenue",
            "select brand, sum(revenue) from brand_sales group by brand",
        ),
        (
            "/retail/ds/brand_sales/sort/revenue/desc/limit/5",
            "select * from brand_sales order by revenue desc limit 5",
        ),
        (
            "/retail/ds/brand_sales/filter/region/north/limit/10",
            "select * from brand_sales where region = 'north' limit 10",
        ),
    ];
    // Beyond the path grammar: boolean WHERE, multi-agg GROUP BY with
    // aliases, multi-key ORDER BY. Must serve 200 without a path twin.
    let rich = "select brand, sum(revenue) as total, count(revenue) as orders \
                from brand_sales where region = 'north' or region = 'south' \
                group by brand order by total desc, brand asc limit 3";
    let malformed = "select from brand_sales where";
    let rounds = 8;

    for serve_mode in [ServeMode::ThreadPerConnection, ServeMode::Reactor] {
        let opts = ServeOptions {
            serve_mode,
            ..ServeOptions::default()
        };
        let mut svc =
            serve(Server::new(retail_platform()), "127.0.0.1:0", opts).expect("bind ephemeral");
        let addr = svc.local_addr();
        let mut conn = ClientConnection::connect(addr).expect("connect");

        let mut matched = 0usize;
        for round in 0..rounds {
            for (path, sql) in &pairs {
                let (path_code, path_body) = conn.request("GET", path, "").expect("path request");
                let (sql_code, sql_body) = conn
                    .request("POST", "/retail/ds/brand_sales/sql", sql)
                    .expect("sql request");
                assert_eq!(path_code, 200, "path route failed for {path}: {path_body}");
                assert_eq!(sql_code, 200, "sql route failed for {sql:?}: {sql_body}");
                assert_eq!(
                    path_body, sql_body,
                    "round {round}: SQL {sql:?} must serve the exact bytes of {path}"
                );
                matched += 1;
            }
        }
        let (code, body) = conn
            .request("POST", "/retail/ds/brand_sales/sql", rich)
            .expect("rich sql");
        assert_eq!(code, 200, "rich SQL must serve: {body}");
        assert!(
            body.contains("total") && body.contains("orders"),
            "rich SQL must carry its aliases: {body}"
        );
        let (code, body) = conn
            .request("POST", "/retail/ds/brand_sales/sql", malformed)
            .expect("malformed sql");
        assert_eq!(code, 400, "malformed SQL must be a client error: {body}");
        assert!(
            body.contains("\"kind\"") && body.contains("\"line\""),
            "malformed SQL must return the structured error body: {body}"
        );

        let (code, stats) = blocking_get(addr, "/stats").expect("/stats");
        assert_eq!(code, 200);
        let doc = shareinsights_tabular::io::json::parse_json(&stats).expect("stats json");
        let stat = |path: &str| doc.path(path).unwrap().to_value().as_int().unwrap() as usize;
        assert_eq!(
            stat("sql.queries"),
            matched + 1,
            "every accepted SQL query must be counted: {stats}"
        );
        assert_eq!(
            stat("sql.path_shared"),
            matched,
            "canonical SQL must share the path route's cache entries: {stats}"
        );
        assert_eq!(
            stat("sql.parse_errors"),
            1,
            "exactly one malformed query was sent: {stats}"
        );

        let (code, metrics) = blocking_get(addr, "/metrics").expect("/metrics");
        assert_eq!(code, 200);
        validate_exposition(&metrics);
        for family in [
            "shareinsights_sql_queries_total",
            "shareinsights_sql_parse_errors_total",
            "shareinsights_sql_path_shared_total",
            "shareinsights_sql_parse_seconds_total",
        ] {
            assert!(metrics.contains(family), "{family} missing from /metrics");
        }

        println!(
            "sql smoke ({serve_mode:?}): {matched} SQL/path pairs byte-identical, \
             rich query 200, malformed 400, counters consistent"
        );
        svc.shutdown();
    }
    println!("sql smoke OK: zero 5xx, all payloads byte-equal across both serve modes");
}

/// The `--self-scrape` mode: smoke the self-observability loop over the
/// wire. Each serve mode runs with the telemetry scraper enabled while
/// warm query traffic flows, then the built-in `_system` dashboard must
/// serve a non-empty scraped history, the canonical SQL over
/// `POST /_system/ds/telemetry/sql` must be byte-identical to its
/// path-grammar twin, writes into `_system` must 409, and the
/// `shareinsights_selfscrape_*` / `shareinsights_process_*` families
/// must export in a well-formed exposition. The CI self-scrape smoke job
/// relies on these asserts.
fn self_scrape_smoke() {
    let sql = "select family, max(value) from telemetry group by family";
    let path = "/_system/ds/telemetry/groupby/family/max/value";

    for serve_mode in [ServeMode::ThreadPerConnection, ServeMode::Reactor] {
        let opts = ServeOptions {
            serve_mode,
            scrape_interval: Some(Duration::from_millis(25)),
            ..ServeOptions::default()
        };
        let mut svc =
            serve(Server::new(retail_platform()), "127.0.0.1:0", opts).expect("bind ephemeral");
        let addr = svc.local_addr();
        let mut conn = ClientConnection::connect(addr).expect("connect");

        // Warm traffic so the scraper has route/cache/operator series to
        // sample.
        for round in 0..40 {
            let (code, body) = conn
                .request("GET", TARGETS[round % TARGETS.len()], "")
                .expect("warm request");
            assert_eq!(code, 200, "warm traffic failed: {body}");
            if conn.server_closed() {
                conn = ClientConnection::connect(addr).expect("reconnect");
            }
        }

        // Wait until the background scraper has actually filled the ring:
        // the `_system` dashboard must serve non-empty history.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut rows_seen = false;
        while Instant::now() < deadline {
            let (code, body) = blocking_get(addr, "/_system/ds/telemetry").expect("history");
            assert_eq!(code, 200, "_system history must serve: {body}");
            if !body.contains("\"total_rows\": 0") {
                rows_seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            rows_seen,
            "({serve_mode:?}) _system/ds/telemetry stayed empty after a warm run"
        );

        // The dataset listing exposes exactly the telemetry ring.
        let (code, body) = blocking_get(addr, "/_system/ds").expect("listing");
        assert_eq!(code, 200);
        assert!(
            body.contains("\"telemetry\""),
            "_system must list the telemetry dataset: {body}"
        );

        // SQL and path grammar must serve the exact same bytes. A scrape
        // landing between the two requests bumps the generation and
        // legitimately changes the payload, so retry the pair a few times
        // — it must match on some attempt (requests are ~µs apart, the
        // scraper ticks every 25ms).
        let mut identical = false;
        for _ in 0..20 {
            let (path_code, path_body) = conn.request("GET", path, "").expect("path request");
            let (sql_code, sql_body) = conn
                .request("POST", "/_system/ds/telemetry/sql", sql)
                .expect("sql request");
            assert_eq!(path_code, 200, "path route failed: {path_body}");
            assert_eq!(sql_code, 200, "sql route failed: {sql_body}");
            if path_body == sql_body {
                assert!(
                    path_body.contains("\"family\""),
                    "grouped history must carry the family column: {path_body}"
                );
                identical = true;
                break;
            }
            if conn.server_closed() {
                conn = ClientConnection::connect(addr).expect("reconnect");
            }
        }
        assert!(
            identical,
            "({serve_mode:?}) SQL over _system never matched the path route byte-for-byte"
        );

        // The namespace is read-only: provisioning anything under it must
        // be rejected, never silently shadowed.
        let (code, body) =
            blocking_request(addr, "POST", "/dashboards/_system/create", "").expect("create");
        assert_eq!(code, 409, "writes into _system must 409: {body}");
        assert!(
            body.contains("reserved"),
            "409 names the reservation: {body}"
        );

        // Meta-telemetry: the scraper reports on itself and the process
        // gauges ride along.
        let (code, stats) = blocking_get(addr, "/stats").expect("/stats");
        assert_eq!(code, 200);
        let doc = shareinsights_tabular::io::json::parse_json(&stats).expect("stats json");
        let stat = |path: &str| doc.path(path).unwrap().to_value().as_int().unwrap();
        assert!(
            stat("selfscrape.scrapes") >= 1,
            "scraper ticks must be counted: {stats}"
        );
        assert!(
            stat("selfscrape.retained") >= 1,
            "scraped samples must be retained: {stats}"
        );

        let (code, metrics) = blocking_get(addr, "/metrics").expect("/metrics");
        assert_eq!(code, 200);
        validate_exposition(&metrics);
        for family in [
            "shareinsights_selfscrape_scrapes_total",
            "shareinsights_selfscrape_retained_samples",
            "shareinsights_process_rss_bytes",
            "shareinsights_process_uptime_seconds",
        ] {
            assert!(metrics.contains(family), "{family} missing from /metrics");
        }

        println!(
            "self-scrape smoke ({serve_mode:?}): history non-empty, SQL/path byte-identical, \
             writes 409, selfscrape+process families exported"
        );
        svc.shutdown();
    }
    println!("self-scrape smoke OK: _system dashboard live across both serve modes");
}

/// The `--ingest-bench` mode: measure the streaming ingestion pipeline
/// end to end. A bulk CSV body streams through the chunked ingest route
/// with RSS sampled throughout (bounded-window check), the endpoint's
/// index is warmed, and append batches must each merge the warm index
/// (`"index": "merged"`) at a strictly increasing generation with zero
/// 5xx. An in-process micro-benchmark then times `IndexedTable::append`
/// against a cold rebuild over the concatenated table. The JSON document
/// on stdout is the source of the committed `BENCH_ingest.json`; the CI
/// ingest smoke job runs a smaller config and relies on the asserts.
fn ingest_benchmark(base_rows: usize, append_rows: usize) {
    use shareinsights::tabular::{Column, DataType, Field, IndexedTable, Schema, Table};
    use shareinsights_core::telemetry::process_stats;
    use shareinsights_core::trace::EventLog;
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    const DISTINCT: usize = 1000;
    const BATCHES: usize = 5;
    const ITERS: usize = 5;

    let per_batch = (append_rows / BATCHES).max(1);
    eprintln!(
        "ingest benchmark: {base_rows}-row bulk upload, then {BATCHES} append \
         batches of {per_batch} rows (reactor)"
    );

    let platform = Platform::new();
    platform.create_dashboard("bench").expect("dashboard");
    let opts = ServeOptions {
        serve_mode: ServeMode::Reactor,
        idle_timeout: Duration::from_secs(120),
        event_log: EventLog::in_memory(),
        ..ServeOptions::default()
    };
    let mut svc = serve(Server::new(platform), "127.0.0.1:0", opts).expect("bind ephemeral port");
    let addr = svc.local_addr();

    // Deterministic CSV rows; `start` keeps every batch's rows distinct.
    let csv_rows = |start: usize, rows: usize| -> String {
        let mut body = String::with_capacity(rows * 24 + 16);
        body.push_str("key,value\n");
        for i in start..start + rows {
            body.push_str(&format!(
                "customer-{:04},{}\n",
                (i * 7919) % DISTINCT,
                (i * 37) % 1000
            ));
        }
        body
    };

    // Stream one chunked upload; returns (status, response body, elapsed).
    let stream_upload = |body: &str| -> (u32, String, Duration) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                b"POST /dashboards/bench/ds/events/ingest HTTP/1.1\r\n\
                  Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            )
            .expect("head");
        let started = Instant::now();
        for chunk in body.as_bytes().chunks(256 * 1024) {
            stream
                .write_all(format!("{:x}\r\n", chunk.len()).as_bytes())
                .expect("chunk size");
            stream.write_all(chunk).expect("chunk");
            stream.write_all(b"\r\n").expect("chunk end");
        }
        stream.write_all(b"0\r\n\r\n").expect("terminal chunk");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response");
        let elapsed = started.elapsed();
        let code: u32 = out
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = out
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body, elapsed)
    };
    let resp_int = |body: &str, key: &str| -> i64 {
        shareinsights_tabular::io::json::parse_json(body)
            .expect("response json")
            .path(key)
            .unwrap_or_else(|| panic!("no {key} in {body}"))
            .to_value()
            .as_int()
            .unwrap()
    };

    // Bulk upload with RSS sampled throughout. The body is built (and
    // the baseline taken) before the upload starts, so the delta
    // reflects the server-side pipeline, not the client's body string.
    let body = csv_rows(0, base_rows);
    let body_bytes = body.len();
    let rss_baseline = process_stats().rss_bytes;
    let rss_peak = Arc::new(AtomicU64::new(rss_baseline));
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let (rss_peak, stop) = (Arc::clone(&rss_peak), Arc::clone(&stop));
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                rss_peak.fetch_max(process_stats().rss_bytes, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let (code, resp, elapsed) = stream_upload(&body);
    stop.store(true, Ordering::SeqCst);
    sampler.join().expect("rss sampler");
    assert_eq!(code, 200, "bulk upload must succeed: {resp}");
    assert_eq!(resp_int(&resp, "rows_appended"), base_rows as i64, "{resp}");
    let mut last_generation = resp_int(&resp, "generation");
    drop(body);
    let rss_peak = rss_peak.load(Ordering::SeqCst);
    let rss_delta = rss_peak.saturating_sub(rss_baseline);
    let rss_ratio = rss_delta as f64 / body_bytes.max(1) as f64;
    let mb_per_sec = body_bytes as f64 / 1e6 / elapsed.as_secs_f64();
    let upload_rows_per_sec = base_rows as f64 / elapsed.as_secs_f64();
    eprintln!(
        "bulk     {body_bytes} bytes in {elapsed:.2?} ({mb_per_sec:.0} MB/s, \
         {upload_rows_per_sec:.0} rows/s) — peak RSS +{rss_delta} bytes \
         ({rss_ratio:.1}x body)"
    );

    // Warm the endpoint's index, then every append batch must merge it
    // incrementally — `"index": "merged"` is the warm-index assertion.
    let (code, warm_body) =
        blocking_get(addr, "/bench/ds/events/groupby/key/sum/value").expect("warm query");
    assert_eq!(code, 200, "warm query must serve: {warm_body}");

    let pct = |sorted: &[u64], p: f64| -> u64 {
        let idx = ((sorted.len() as f64 * p).ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    };
    let mut batch_us = Vec::with_capacity(BATCHES);
    let batches_started = Instant::now();
    for b in 0..BATCHES {
        let body = csv_rows(base_rows + b * per_batch, per_batch);
        let (code, resp, elapsed) = stream_upload(&body);
        assert!(code < 500, "batch {b} must not 5xx: {code} {resp}");
        assert_eq!(code, 200, "batch {b}: {resp}");
        assert!(
            resp.contains("\"index\": \"merged\""),
            "batch {b}: the warm index must merge, not fall back cold: {resp}"
        );
        assert_eq!(resp_int(&resp, "rows_appended"), per_batch as i64, "{resp}");
        let generation = resp_int(&resp, "generation");
        assert!(
            generation > last_generation,
            "batch {b}: generation must increase: {generation} after {last_generation}"
        );
        last_generation = generation;
        batch_us.push(elapsed.as_micros() as u64);
    }
    let batches_elapsed = batches_started.elapsed();
    batch_us.sort_unstable();
    let (batch_p50, batch_p95) = (pct(&batch_us, 0.50), pct(&batch_us, 0.95));
    let batch_rows_per_sec = (BATCHES * per_batch) as f64 / batches_elapsed.as_secs_f64();
    eprintln!(
        "append   {BATCHES} batches of {per_batch} rows: p50 {batch_p50}µs \
         p95 {batch_p95}µs ({batch_rows_per_sec:.0} rows/s), all merged"
    );

    // Server-side accounting must agree: every request counted, every
    // row landed, every batch merged, nothing aborted.
    let (code, stats) = blocking_get(addr, "/stats").expect("/stats");
    assert_eq!(code, 200);
    let doc = shareinsights_tabular::io::json::parse_json(&stats).expect("stats json");
    let stat = |path: &str| -> i64 {
        doc.path(path)
            .unwrap_or_else(|| panic!("no {path} in {stats}"))
            .to_value()
            .as_int()
            .unwrap()
    };
    assert_eq!(stat("ingest.requests"), 1 + BATCHES as i64, "{stats}");
    assert_eq!(
        stat("ingest.rows"),
        (base_rows + BATCHES * per_batch) as i64,
        "{stats}"
    );
    assert_eq!(stat("ingest.aborted"), 0, "{stats}");
    assert!(stat("ingest.index_merges") >= BATCHES as i64, "{stats}");
    let segments = stat("ingest.segments");

    let (code, metrics) = blocking_get(addr, "/metrics").expect("/metrics");
    assert_eq!(code, 200);
    validate_exposition(&metrics);
    for family in [
        "shareinsights_ingest_requests_total",
        "shareinsights_ingest_rows_total",
        "shareinsights_ingest_index_merges_total",
        "shareinsights_ingest_decode_seconds_total",
    ] {
        assert!(metrics.contains(family), "{family} missing from /metrics");
    }
    svc.shutdown();

    // Incremental index maintenance vs cold rebuild, in process. Both
    // sides start from the concatenated table the store's append already
    // produced (the server path hands it over via `AppendReport::merged`),
    // so the contrast is pure index work: merge-the-built-indexes against
    // rebuild-them-from-scratch.
    let make_table = |start: usize, rows: usize| -> Table {
        let keys: Vec<String> = (start..start + rows)
            .map(|i| format!("customer-{:04}", (i * 7919) % DISTINCT))
            .collect();
        let values: Vec<i64> = (start..start + rows)
            .map(|i| ((i * 37) % 1000) as i64)
            .collect();
        let schema = Schema::new(vec![
            Field::new("key", DataType::Utf8),
            Field::new("value", DataType::Int64),
        ])
        .expect("schema");
        Table::new(schema, vec![Column::utf8(keys), Column::int(values)]).expect("table")
    };
    let base = make_table(0, base_rows);
    let delta = make_table(base_rows, append_rows);
    let warm = IndexedTable::new(base.clone());
    warm.index("key");
    warm.index("value");
    let full = base.concat(&delta).expect("concat");
    let mut append_us = Vec::with_capacity(ITERS);
    let mut rebuild_us = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t = Instant::now();
        // Table clones are Arc-per-column, so the timed region is the merge.
        let merged = warm.append_merged(full.clone()).expect("append_merged");
        append_us.push(t.elapsed().as_micros() as u64);
        assert_eq!(merged.table().num_rows(), base_rows + append_rows);
        let (merges, _) = merged.merge_stats();
        assert!(merges >= 1, "append must carry the built indexes forward");
        std::hint::black_box(merged);

        let t = Instant::now();
        let cold = IndexedTable::new(full.clone());
        cold.index("key");
        cold.index("value");
        rebuild_us.push(t.elapsed().as_micros() as u64);
        std::hint::black_box(cold);
    }
    append_us.sort_unstable();
    rebuild_us.sort_unstable();
    let (append_p50, append_p95) = (pct(&append_us, 0.50), pct(&append_us, 0.95));
    let (rebuild_p50, rebuild_p95) = (pct(&rebuild_us, 0.50), pct(&rebuild_us, 0.95));
    let speedup = rebuild_p50 as f64 / append_p50.max(1) as f64;
    eprintln!(
        "index    append {append_rows} rows onto {base_rows}: merge p50 \
         {append_p50}µs vs cold rebuild p50 {rebuild_p50}µs ({speedup:.1}x)"
    );
    if base_rows >= 500_000 {
        assert!(
            speedup >= 3.0,
            "incremental maintenance must beat a cold rebuild by >= 3x at \
             full size: {speedup:.2}x"
        );
    }

    println!("{{");
    println!(
        "  \"dataset\": {{\"base_rows\": {base_rows}, \"append_rows\": {append_rows}, \
         \"distinct_keys\": {DISTINCT}}},"
    );
    println!(
        "  \"streamed_upload\": {{\"body_bytes\": {body_bytes}, \"elapsed_ms\": {}, \
         \"mb_per_sec\": {mb_per_sec:.1}, \"rows_per_sec\": {upload_rows_per_sec:.0}, \
         \"segments\": {segments}, \"rss_baseline_bytes\": {rss_baseline}, \
         \"rss_peak_bytes\": {rss_peak}, \"rss_delta_bytes\": {rss_delta}, \
         \"rss_ratio\": {rss_ratio:.2}}},",
        elapsed.as_millis()
    );
    println!(
        "  \"append_batches\": {{\"batches\": {BATCHES}, \"rows_per_batch\": {per_batch}, \
         \"p50_us\": {batch_p50}, \"p95_us\": {batch_p95}, \
         \"rows_per_sec\": {batch_rows_per_sec:.0}}},"
    );
    println!(
        "  \"append_vs_rebuild\": {{\"iterations\": {ITERS}, \
         \"append_p50_us\": {append_p50}, \"append_p95_us\": {append_p95}, \
         \"rebuild_p50_us\": {rebuild_p50}, \"rebuild_p95_us\": {rebuild_p95}, \
         \"speedup_p50\": {speedup:.2}}}"
    );
    println!("}}");
}

/// The `--cold` mode: measure the scan-vs-indexed delta on cold (cache
/// bypassed) ad-hoc queries over a synthetic dataset, differential-checking
/// that both paths — and the served HTTP body — agree byte for byte.
fn cold_query_benchmark(rows: usize, iters: usize) {
    use shareinsights::engine::sql::{lower, parse_select};
    use shareinsights::server::query::{parse_ops, run_query, run_query_indexed};
    use shareinsights::server::sql::lower_plan;
    use shareinsights::server::{table_to_json, Method};
    use shareinsights::tabular::{Column, DataType, Field, IndexedTable, Schema, Table};

    let distinct = 1000usize;
    eprintln!("cold-query benchmark: {rows} rows, {distinct} distinct keys, {iters} iterations");
    let keys: Vec<String> = (0..rows)
        .map(|i| format!("customer-{:04}", (i * 7919) % distinct))
        .collect();
    let values: Vec<i64> = (0..rows).map(|i| ((i * 37) % 1000) as i64).collect();
    let schema = Schema::new(vec![
        Field::new("key", DataType::Utf8),
        Field::new("value", DataType::Int64),
    ])
    .expect("schema");
    let table = Table::new(schema, vec![Column::utf8(keys), Column::int(values)]).expect("table");

    // Serve the same dataset over the router (as a shared published
    // object) so warm numbers measure real cache-hit serving.
    let platform = Platform::new();
    platform.create_dashboard("bench").expect("dashboard");
    platform
        .publish_registry()
        .publish(
            "bench_data",
            "bench",
            "bench_data",
            table.schema().clone(),
            Some(table.clone()),
        )
        .expect("publish");
    let server = Server::new(platform);

    let routes: [(&str, Vec<&str>); 3] = [
        ("groupby", vec!["groupby", "key", "sum", "value"]),
        ("filter", vec!["filter", "key", "customer-0042"]),
        ("sort", vec!["sort", "key", "desc", "limit", "100"]),
    ];

    let indexed = IndexedTable::new(table.clone());
    let pct = |sorted: &[u64], p: f64| -> u64 {
        let idx = ((sorted.len() as f64 * p).ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    };

    let mut route_docs = Vec::new();
    // Captured from the groupby route for the SQL-overhead comparison.
    let mut groupby_ix_p50 = 0u64;
    for (name, segs) in &routes {
        let ops = parse_ops(segs).expect("ops");
        // Warmup evaluations double as the differential check; the first
        // indexed evaluation also builds the lazy per-column indexes.
        let scan_result = run_query(&table, &ops).expect("scan");
        let (indexed_result, index_hit) = run_query_indexed(&indexed, &ops).expect("indexed");
        assert!(
            index_hit,
            "{name}: expected the indexed path to cover this query"
        );
        let scan_json = table_to_json(&scan_result);
        let indexed_json = table_to_json(&indexed_result);
        assert_eq!(
            scan_json, indexed_json,
            "{name}: indexed path disagrees with scan path"
        );
        // The served body must agree too (full-stack differential).
        let url = format!("/bench/ds/bench_data/{}", segs.join("/"));
        let cold_served = server.handle(&Request::get(&url));
        assert_eq!(cold_served.body, scan_json, "{name}: served body disagrees");

        let mut scan_us = Vec::with_capacity(iters);
        let mut indexed_us = Vec::with_capacity(iters);
        let mut warm_us = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            let r = run_query(&table, &ops).expect("scan");
            scan_us.push(t.elapsed().as_micros() as u64);
            std::hint::black_box(r);

            let t = Instant::now();
            let r = run_query_indexed(&indexed, &ops).expect("indexed");
            indexed_us.push(t.elapsed().as_micros() as u64);
            std::hint::black_box(r);

            let t = Instant::now();
            let r = server.handle(&Request::get(&url));
            warm_us.push(t.elapsed().as_micros() as u64);
            assert!(r.is_ok());
        }
        scan_us.sort_unstable();
        indexed_us.sort_unstable();
        warm_us.sort_unstable();
        let (scan_p50, scan_p95) = (pct(&scan_us, 0.50), pct(&scan_us, 0.95));
        let (ix_p50, ix_p95) = (pct(&indexed_us, 0.50), pct(&indexed_us, 0.95));
        if *name == "groupby" {
            groupby_ix_p50 = ix_p50;
        }
        let (warm_p50, warm_p95) = (pct(&warm_us, 0.50), pct(&warm_us, 0.95));
        let speedup = scan_p50 as f64 / ix_p50.max(1) as f64;
        eprintln!(
            "{name:8} cold scan p50 {scan_p50}µs  cold indexed p50 {ix_p50}µs \
             ({speedup:.1}x)  warm p50 {warm_p50}µs"
        );
        route_docs.push(format!(
            "    \"{name}\": {{\"cold_scan_p50_us\": {scan_p50}, \"cold_scan_p95_us\": {scan_p95}, \
             \"cold_indexed_p50_us\": {ix_p50}, \"cold_indexed_p95_us\": {ix_p95}, \
             \"warm_p50_us\": {warm_p50}, \"warm_p95_us\": {warm_p95}, \
             \"speedup_p50\": {speedup:.2}}}"
        ));
    }

    // SQL-frontend overhead: the same groupby expressed as SQL must
    // (a) canonicalise to the path route's segments, (b) serve the exact
    // bytes of the path route, and (c) parse+lower in a small fraction of
    // one cold indexed evaluation — the frontend can never be the
    // bottleneck. The committed BENCH doc carries the ratio and the bench
    // gate holds parse+lower p50 under 10% of the indexed eval p50.
    let sql = "select key, sum(value) from bench_data group by key";
    let mut no_joins = |name: &str| -> Result<Table, String> {
        Err(format!("unexpected join on '{name}' in the bench query"))
    };
    let stmt = parse_select(sql).expect("sql parse");
    let plan = lower(sql, &stmt).expect("sql lower");
    let lowered = lower_plan(&plan, &mut no_joins).expect("sql lower_plan");
    assert!(
        lowered.shared,
        "the bench groupby must canonicalise to path segments"
    );
    assert_eq!(lowered.cache_path, "groupby/key/sum/value");
    let sql_served = server
        .handle(&Request::new(Method::Post, "/bench/ds/bench_data/sql").with_body(sql.to_string()));
    let path_served = server.handle(&Request::get("/bench/ds/bench_data/groupby/key/sum/value"));
    assert!(sql_served.is_ok(), "sql route: {}", sql_served.body);
    assert_eq!(
        sql_served.body, path_served.body,
        "SQL route disagrees with the path route"
    );

    let reps = (iters * 32).max(256);
    let mut parse_ns = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let stmt = parse_select(sql).expect("sql parse");
        let plan = lower(sql, &stmt).expect("sql lower");
        let lowered = lower_plan(&plan, &mut no_joins).expect("sql lower_plan");
        parse_ns.push(t.elapsed().as_nanos() as u64);
        std::hint::black_box(lowered);
    }
    parse_ns.sort_unstable();
    let pl_p50_us = pct(&parse_ns, 0.50) as f64 / 1000.0;
    let pl_p95_us = pct(&parse_ns, 0.95) as f64 / 1000.0;
    let overhead_pct = 100.0 * pl_p50_us / groupby_ix_p50.max(1) as f64;
    eprintln!(
        "sql      parse+lower p50 {pl_p50_us:.1}µs vs cold indexed p50 {groupby_ix_p50}µs \
         ({overhead_pct:.2}% overhead)"
    );

    // Self-scrape overhead: warm served throughput with the telemetry
    // scraper ticking in the background vs without it, tracing disabled
    // on both sides (the `--no-trace` baseline). The scraper holds the
    // registry read locks and bumps the `_system` ring, so any cost it
    // imposes on the serving path shows up here; the bench gate holds the
    // regression under 2%.
    server.platform().tracer().set_sample_one_in(0);
    let warm_url = "/bench/ds/bench_data/groupby/key/sum/value";
    let t = Instant::now();
    for _ in 0..100 {
        std::hint::black_box(server.scrape_telemetry());
    }
    let tick_us = t.elapsed().as_micros() as u64 / 100;
    eprintln!("scraper  one tick ~{tick_us}µs (no subscribers)");
    let measure_rps = |scraping: bool| -> f64 {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // Trials must span many scrape intervals for a stable ratio —
        // warm hits are tens of µs, so 100k+ requests is still sub-second.
        let reqs = (iters * 20_000).max(100_000);
        let mut best = 0.0f64;
        for _ in 0..3 {
            let stop = Arc::new(AtomicBool::new(false));
            let scraper = scraping.then(|| {
                let server = server.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        server.scrape_telemetry();
                        std::thread::sleep(Duration::from_millis(10));
                    }
                })
            });
            let t = Instant::now();
            for _ in 0..reqs {
                let r = server.handle(&Request::get(warm_url));
                std::hint::black_box(r);
            }
            let rps = reqs as f64 / t.elapsed().as_secs_f64();
            stop.store(true, Ordering::SeqCst);
            if let Some(h) = scraper {
                h.join().expect("scraper thread");
            }
            best = best.max(rps);
        }
        best
    };
    let baseline_rps = measure_rps(false);
    let scraping_rps = measure_rps(true);
    let selfscrape_pct = 100.0 * (baseline_rps - scraping_rps).max(0.0) / baseline_rps.max(1.0);
    eprintln!(
        "scraper  warm {baseline_rps:.0} req/s off vs {scraping_rps:.0} req/s on \
         ({selfscrape_pct:.2}% overhead)"
    );

    // The server routed each cold query through the indexed path and the
    // build hook fed the metrics registry.
    let ix_stats = server.platform().api_metrics().index();
    assert!(
        ix_stats.covered >= routes.len() as u64,
        "server must route covered queries through the index: {ix_stats:?}"
    );
    assert!(ix_stats.builds >= 1, "index builds must be recorded");
    let (builds, build_us) = indexed.build_stats();

    println!("{{");
    println!("  \"dataset\": {{\"rows\": {rows}, \"distinct_keys\": {distinct}}},");
    println!("  \"iterations\": {iters},");
    println!("  \"index\": {{\"builds\": {builds}, \"build_us\": {build_us}}},");
    println!("  \"routes\": {{");
    println!("{}", route_docs.join(",\n"));
    println!("  }},");
    println!(
        "  \"sql_overhead\": {{\"parse_lower_p50_us\": {pl_p50_us:.1}, \
         \"parse_lower_p95_us\": {pl_p95_us:.1}, \
         \"indexed_eval_p50_us\": {groupby_ix_p50}, \
         \"overhead_pct\": {overhead_pct:.2}}},"
    );
    println!(
        "  \"selfscrape_overhead\": {{\"baseline_rps\": {baseline_rps:.0}, \
         \"scraping_rps\": {scraping_rps:.0}, \"scrape_interval_ms\": 10, \
         \"overhead_pct\": {selfscrape_pct:.2}}}"
    );
    println!("}}");
    eprintln!(
        "differential checks passed: indexed == scan == served for all {} routes",
        routes.len()
    );
}

/// The `--shard-bench` mode: measure scatter/gather scaling of the
/// shared-nothing shard plane at 1, 2 and 4 shards over a cold
/// groupby + top-n workload, differential-checking that every sharded
/// body is byte-identical to the single-shard answer, then smoke the
/// workload through both TCP serve modes at 4 shards with zero 5xx.
///
/// Fairness: every iteration clears the derived caches on both sides
/// (router query/result caches, router `IndexedTable`s, worker result
/// caches). Worker slices stay resident by design — that resident state
/// *is* the shard plane — so an untimed prime query rebuilds the width-1
/// router index first and the timed numbers compare evaluation, not
/// index rebuilds. The single-shard top-n pays a full stable sort of
/// every row; the shards each run a bounded `sort_limit` selection and
/// the router merges tiny partials — the headroom the >= 1.6x floor
/// banks on, even on one core.
fn shard_benchmark(rows: usize, iters: usize) {
    use shareinsights::tabular::{Column, DataType, Field, Schema, Table};

    let distinct = 1000usize;
    eprintln!("shard benchmark: {rows} rows, {distinct} distinct keys, {iters} iterations");
    let keys: Vec<String> = (0..rows)
        .map(|i| format!("customer-{:04}", (i * 7919) % distinct))
        .collect();
    let values: Vec<i64> = (0..rows).map(|i| ((i * 37) % 1000) as i64).collect();
    let schema = Schema::new(vec![
        Field::new("key", DataType::Utf8),
        Field::new("value", DataType::Int64),
    ])
    .expect("schema");
    let table = Table::new(schema, vec![Column::utf8(keys), Column::int(values)]).expect("table");

    // Each width gets its own platform: the shard set pins the
    // platform-wide partitioning, and widths must not observe each
    // other's. Cloning the table is cheap (columns are shared).
    let make_server = |shards: usize| -> Server {
        let platform = Platform::new();
        platform.create_dashboard("bench").expect("dashboard");
        platform
            .publish_registry()
            .publish(
                "bench_data",
                "bench",
                "bench_data",
                table.schema().clone(),
                Some(table.clone()),
            )
            .expect("publish");
        Server::new(platform).with_shards(shards)
    };

    // The scatter/gather workload: a mergeable group-by and a fused
    // top-n whose single-shard cost is a full stable sort of every row.
    // The prime query rebuilds the same key index the group-by needs
    // without populating the result cache for either timed query.
    let prime_url = "/bench/ds/bench_data/groupby/key/count/value";
    let queries = [
        ("groupby", "/bench/ds/bench_data/groupby/key/sum/value"),
        ("topn", "/bench/ds/bench_data/sort/value/desc/limit/100"),
    ];
    let pct = |sorted: &[u64], p: f64| -> u64 {
        let idx = ((sorted.len() as f64 * p).ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    };

    // Width-1 bodies are the byte-identity baseline for every width.
    let mut baselines: Vec<String> = Vec::new();
    let widths = [1usize, 2, 4];
    let mut width_docs = Vec::new();
    let mut ok_rates: Vec<f64> = Vec::new();
    for &width in &widths {
        let server = make_server(width);
        assert_eq!(
            server.shards().is_some(),
            width > 1,
            "width {width}: shard set attachment"
        );
        // Warmup doubles as the differential check and loads the shard
        // slices, so the timed loop measures steady-state evaluations.
        for (qi, (name, url)) in queries.iter().enumerate() {
            let r = server.handle(&Request::get(url));
            assert!(r.is_ok(), "{width} shards {name}: {}", r.body);
            if width == 1 {
                baselines.push(r.body);
            } else {
                assert_eq!(
                    r.body, baselines[qi],
                    "{width} shards {name}: body differs from single-shard"
                );
            }
        }
        let mut lat: Vec<Vec<u64>> = vec![Vec::with_capacity(iters); queries.len()];
        let mut timed_us = 0u64;
        for _ in 0..iters {
            server.clear_derived_caches();
            assert!(server.handle(&Request::get(prime_url)).is_ok());
            for (qi, (_, url)) in queries.iter().enumerate() {
                let t = Instant::now();
                let r = server.handle(&Request::get(url));
                let us = t.elapsed().as_micros() as u64;
                lat[qi].push(us);
                timed_us += us;
                assert!(r.is_ok());
                assert_eq!(r.body, baselines[qi], "{width} shards: cold body drifted");
            }
        }
        let ok_per_sec = (iters * queries.len()) as f64 / (timed_us.max(1) as f64 / 1e6);
        ok_rates.push(ok_per_sec);
        if width > 1 {
            let stats = server.platform().api_metrics().shard();
            assert!(stats.scatters > 0, "{width} shards: nothing scattered");
            assert_eq!(
                stats.fallbacks, 0,
                "{width} shards: the bench workload must shard in full"
            );
        }
        let mut parts = vec![format!("\"shards\": {width}")];
        for (qi, (name, _)) in queries.iter().enumerate() {
            lat[qi].sort_unstable();
            let (p50, p95) = (pct(&lat[qi], 0.50), pct(&lat[qi], 0.95));
            eprintln!("{width} shard(s) {name:8} cold p50 {p50}µs  p95 {p95}µs");
            parts.push(format!(
                "\"{name}_p50_us\": {p50}, \"{name}_p95_us\": {p95}"
            ));
        }
        eprintln!("{width} shard(s) workload {ok_per_sec:.1} ok/s");
        parts.push(format!("\"ok_per_sec\": {ok_per_sec:.1}"));
        width_docs.push(format!("    \"s{width}\": {{{}}}", parts.join(", ")));
    }
    let s2_vs_s1 = ok_rates[1] / ok_rates[0].max(f64::MIN_POSITIVE);
    let s4_vs_s1 = ok_rates[2] / ok_rates[0].max(f64::MIN_POSITIVE);
    eprintln!("scaling  s2/s1 {s2_vs_s1:.2}x  s4/s1 {s4_vs_s1:.2}x");
    if rows >= 500_000 {
        assert!(
            s4_vs_s1 >= 1.6,
            "4-shard workload must beat single-shard by >= 1.6x (got {s4_vs_s1:.2}x)"
        );
    }

    // Served smoke: both TCP architectures, sharding attached through
    // `ServeOptions`, the full workload plus the observability routes —
    // byte-identical bodies and not a single 5xx.
    let mut smoke_requests = 0usize;
    for mode in [ServeMode::ThreadPerConnection, ServeMode::Reactor] {
        let opts = ServeOptions {
            serve_mode: mode,
            shards: 4,
            workers: 2,
            ..ServeOptions::default()
        };
        let mut svc = serve(make_server(1), "127.0.0.1:0", opts).expect("bind");
        let addr = svc.local_addr();
        for _ in 0..3 {
            for (qi, (name, url)) in queries.iter().enumerate() {
                let (code, body) = blocking_get(addr, url).expect("request");
                smoke_requests += 1;
                assert!(code < 500, "{mode:?} {name}: {code} {body}");
                assert_eq!(code, 200, "{mode:?} {name}: {code}");
                assert_eq!(body, baselines[qi], "{mode:?} {name}: served body drifted");
            }
        }
        let (code, stats) = blocking_get(addr, "/stats").expect("stats");
        smoke_requests += 1;
        assert_eq!(code, 200);
        assert!(stats.contains("\"shard\""), "{mode:?}: /stats shard block");
        let (code, metrics) = blocking_get(addr, "/metrics").expect("metrics");
        smoke_requests += 1;
        assert_eq!(code, 200);
        assert!(
            metrics.contains("shareinsights_shard_workers 4"),
            "{mode:?}: serve options did not attach the shard set"
        );
        assert!(metrics.contains("shareinsights_shard_scatters_total"));
        validate_exposition(&metrics);
        svc.shutdown();
        eprintln!("smoke    {mode:?}: ok");
    }

    println!("{{");
    println!("  \"dataset\": {{\"rows\": {rows}, \"distinct_keys\": {distinct}}},");
    println!("  \"iterations\": {iters},");
    println!("  \"widths\": {{");
    println!("{}", width_docs.join(",\n"));
    println!("  }},");
    println!("  \"shard_scaling\": {{\"s2_vs_s1\": {s2_vs_s1:.2}, \"s4_vs_s1\": {s4_vs_s1:.2}}},");
    println!(
        "  \"smoke\": {{\"serve_modes\": 2, \"requests\": {smoke_requests}, \"server_5xx\": 0}}"
    );
    println!("}}");
    eprintln!(
        "differential checks passed: sharded == single-shard bytes at widths 2 and 4, \
         in-process and over both serve modes"
    );
}

/// Assert the Prometheus text exposition is well-formed: every `# TYPE`
/// family has at least one sample, histogram buckets are cumulative and
/// monotone per series, and the `+Inf` bucket equals `_count`.
fn validate_exposition(text: &str) {
    use std::collections::BTreeMap;
    let mut families: Vec<(String, String)> = Vec::new();
    // (family name, labels-without-le) -> bucket values in order.
    let mut buckets: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut samples: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("family name").to_string();
            let kind = it.next().expect("family kind").to_string();
            families.push((name, kind));
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        let (name, labels) = match series.split_once('{') {
            Some((n, l)) => (n.to_string(), l.trim_end_matches('}').to_string()),
            None => (series.to_string(), String::new()),
        };
        if let Some(hist) = name.strip_suffix("_bucket") {
            let non_le: Vec<&str> = labels
                .split(',')
                .filter(|p| !p.starts_with("le=") && !p.is_empty())
                .collect();
            buckets
                .entry((hist.to_string(), non_le.join(",")))
                .or_default()
                .push(value);
        } else if let Some(hist) = name.strip_suffix("_count") {
            counts.insert((hist.to_string(), labels.clone()), value);
        }
        samples.push(name);
    }
    assert!(!families.is_empty(), "no # TYPE families in exposition");
    for (name, kind) in &families {
        let has = samples
            .iter()
            .any(|s| s == name || (kind == "histogram" && s.starts_with(name)));
        assert!(has, "# TYPE {name} has no samples");
    }
    assert!(!buckets.is_empty(), "no histograms in exposition");
    for ((hist, labels), series) in &buckets {
        for w in series.windows(2) {
            assert!(
                w[0] <= w[1],
                "{hist}{{{labels}}} buckets must be cumulative: {series:?}"
            );
        }
        let count = counts
            .get(&(hist.clone(), labels.clone()))
            .unwrap_or_else(|| panic!("{hist}{{{labels}}} has buckets but no _count"));
        assert_eq!(
            *series.last().unwrap(),
            *count,
            "{hist}{{{labels}}}: +Inf bucket must equal _count"
        );
    }
}
