//! The paper's §3 use case: the Apache open-source project analysis
//! dashboard (figure 3).
//!
//! Reproduces the full story:
//! * data from bug tickets, commit history, Stack Overflow traffic and
//!   releases (synthetic, via `shareinsights-datagen`);
//! * a *custom widget* — the weight sliders that set the project activity
//!   index (§3.5: "a custom widget — written using the platform extension
//!   APIs") — implemented through the Widgets extension trait plus a custom
//!   scalar operator computing the weighted index;
//! * widget-to-widget interaction: selecting a project bubble filters the
//!   detail grid (figure 13), expressed as a flow, no event handlers;
//! * the 12-column layout solved for desktop and mobile viewports (§4.1's
//!   operating-environment constraints).
//!
//! Run with: `cargo run --example apache_dashboard`

use shareinsights::core::Platform;
use shareinsights::datagen::apache;
use shareinsights::engine::ext::FnTask;
use shareinsights::flowfile::ast::WidgetDef;
use shareinsights::layout::{solve, Viewport};
use shareinsights::tabular::io::csv::write_csv;
use shareinsights::tabular::{Column, Schema, Table, Value};
use shareinsights::widgets::{RenderNode, WidgetFactory, WidgetRegistry};
use std::sync::Arc;

/// The custom weight-slider widget from figure 3's top row.
struct WeightSliders;

impl WidgetFactory for WeightSliders {
    fn type_name(&self) -> &str {
        "WeightSliders"
    }

    fn validate(
        &self,
        def: &WidgetDef,
        _schema: Option<&Schema>,
    ) -> shareinsights::widgets::Result<()> {
        if def.params.get("weights").is_none() {
            return Err(shareinsights::widgets::WidgetError::Invalid(format!(
                "widget '{}': WeightSliders needs 'weights:'",
                def.name
            )));
        }
        Ok(())
    }

    fn render(&self, def: &WidgetDef, _table: &Table) -> RenderNode {
        let weights = def
            .params
            .get("weights")
            .map(|v| v.scalar_items().join(" | "))
            .unwrap_or_default();
        RenderNode::leaf(
            &def.name,
            "WeightSliders",
            vec![format!(
                "[checkins]==[bugs]==[contributors]==[releases]  ({weights})"
            )],
        )
    }
}

const FLOW: &str = r#"
D:
  svn_jira_summary: [project, year, noOfBugs, noOfCheckins, noOfEmailsTotal]
  releases: [project, year, releases]
  contributors: [project, contributors]
  categories: [project, technology]

D.svn_jira_summary:
  source: 'svn_jira.csv'
  format: csv
D.releases:
  source: 'releases.csv'
  format: csv
D.contributors:
  source: 'contributors.csv'
  format: csv
D.categories:
  source: 'categories.csv'
  format: csv

T:
  get_svn_jira_count:
    type: groupby
    groupby: [project]
    aggregates:
    - operator: sum
      apply_on: noOfCheckins
      out_field: total_checkins
    - operator: sum
      apply_on: noOfBugs
      out_field: total_jira
  total_releases:
    type: groupby
    groupby: [project]
    aggregates:
    - operator: sum
      apply_on: releases
      out_field: total_releases
  join_releases:
    type: join
    left: checkin_jira by project
    right: temp_release_count by project
    join_condition: left outer
    project:
      checkin_jira_project: project
      checkin_jira_total_checkins: total_checkins
      checkin_jira_total_jira: total_jira
      temp_release_count_total_releases: total_releases
  join_contributors:
    type: join
    left: project_stats by project
    right: contributors by project
    join_condition: left outer
    project:
      project_stats_project: project
      project_stats_total_checkins: total_checkins
      project_stats_total_jira: total_jira
      project_stats_total_releases: total_releases
      contributors_contributors: contributors
  join_categories:
    type: join
    left: project_enriched by project
    right: categories by project
    join_condition: left outer
    project:
      project_enriched_project: project
      project_enriched_total_checkins: total_checkins
      project_enriched_total_jira: total_jira
      project_enriched_total_releases: total_releases
      project_enriched_contributors: contributors
      categories_technology: technology
  activity_index:
    type: map
    operator: weighted_index
    transform: project
    output: total_wt

F:
  D.checkin_jira: D.svn_jira_summary | T.get_svn_jira_count
  D.temp_release_count: D.releases | T.total_releases
  D.project_stats: (D.checkin_jira, D.temp_release_count) | T.join_releases
  D.project_enriched: (D.project_stats, D.contributors) | T.join_contributors
  +D.project_data: (D.project_enriched, D.categories) | T.join_categories

W:
  apache_custom_widget:
    type: WeightSliders
    weights: [checkins=2, bugs=1, contributors=1, releases=1]

  project_category_bubble:
    type: BubbleChart
    source: D.project_data | T.compute_index
    text: project
    size: total_wt
    legend_text: technology
    default_selection: true
    default_selection_key: text
    default_selection_value: 'pig'

  project_details:
    type: DataGrid
    source: D.project_data | T.filter_projects

T:
  compute_index:
    type: activity_index_task
  filter_projects:
    type: filter_by
    filter_by: [project]
    filter_source: W.project_category_bubble
    filter_val: [text]

L:
  description: Apache Project Analysis
  rows:
  - [span12: W.apache_custom_widget]
  - [span5: W.project_category_bubble, span7: W.project_details]
"#;

fn main() {
    let platform = Platform::new();

    // --- seed data --------------------------------------------------------
    let corpus = apache::generate(&apache::ApacheConfig::default());
    platform.upload_data(
        "apache",
        "svn_jira.csv",
        write_csv(&corpus.svn_jira_summary, ','),
    );
    platform.upload_data("apache", "releases.csv", write_csv(&corpus.releases, ','));
    platform.upload_data(
        "apache",
        "contributors.csv",
        write_csv(&corpus.contributors, ','),
    );
    platform.upload_data(
        "apache",
        "categories.csv",
        write_csv(&corpus.categories, ','),
    );

    // --- extensions: the activity-index task and the custom widget --------
    // Weights from the custom widget's sliders (the §3 "tweak the weightage
    // given to each of the four parameters").
    let weights = (2.0f64, 1.0f64, 1.0f64, 1.0f64); // checkins, bugs, contributors, releases
    platform.tasks().register_task(Arc::new(FnTask::new(
        "activity_index_task",
        |s: &Schema| {
            s.with_field(shareinsights::tabular::Field::new(
                "total_wt",
                shareinsights::tabular::DataType::Float64,
            ))
            .map_err(|e| shareinsights::engine::EngineError::Internal(e.to_string()))
        },
        move |t: &Table| {
            let num = |col: &str, i: usize| -> f64 {
                t.column(col)
                    .ok()
                    .and_then(|c| c.value(i).as_float())
                    .unwrap_or(0.0)
            };
            let vals: Vec<Value> = (0..t.num_rows())
                .map(|i| {
                    let idx = weights.0 * num("total_checkins", i)
                        + weights.1 * num("total_jira", i)
                        + weights.2 * num("contributors", i)
                        + weights.3 * num("total_releases", i);
                    Value::Float((idx / 100.0).round())
                })
                .collect();
            t.with_column("total_wt", Column::from_values(&vals))
                .map_err(|e| shareinsights::engine::ext::exec_err("activity_index_task", e))
        },
    )));
    let widget_registry: &WidgetRegistry = platform.widgets();
    widget_registry.register(Arc::new(WeightSliders));

    // --- save, run, open ---------------------------------------------------
    platform.save_flow("apache", FLOW).expect("valid flow file");
    let run = platform.run_dashboard("apache").expect("pipeline runs");
    println!(
        "pipeline: {} source rows, {} flows, endpoint bytes {}",
        run.result.stats.source_rows,
        run.result.stats.rows_out.len(),
        run.result.stats.endpoint_bytes
    );

    let dash = platform.open_dashboard("apache").expect("dashboard opens");
    println!("\n--- initial render (no selection) ---");
    println!("{}", dash.render(8).unwrap());

    // --- figure 13: selecting a project updates the details ---------------
    dash.select("project_category_bubble", "text", vec!["spark".into()])
        .unwrap();
    println!("--- after selecting the 'spark' bubble ---");
    println!("{}", dash.render_widget("project_details", 5).unwrap());

    dash.select("project_category_bubble", "text", vec!["kafka".into()])
        .unwrap();
    println!("--- after selecting the 'kafka' bubble ---");
    println!("{}", dash.render_widget("project_details", 5).unwrap());

    // --- layout: desktop vs mobile (§4.1 constraints) ----------------------
    let layout = platform
        .dashboard("apache")
        .unwrap()
        .ast
        .layout
        .expect("has layout");
    println!(
        "--- wireframe ---\n{}",
        shareinsights::layout::wireframe(&layout)
    );
    let desktop = solve(&layout, &Viewport::desktop()).unwrap();
    let mobile = solve(&layout, &Viewport::mobile()).unwrap();
    println!("desktop placements:");
    for p in &desktop {
        println!(
            "  {:<28} x={:<5} y={:<5} {}x{}",
            p.widget, p.x, p.y, p.width, p.height
        );
    }
    println!(
        "mobile collapses to {} stacked full-width cells",
        mobile.len()
    );
}
