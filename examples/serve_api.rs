//! Serve the data API over TCP until interrupted.
//!
//! Connections are HTTP/1.1 keep-alive by default (see `ServeOptions` for
//! the idle-timeout and requests-per-connection knobs), so `curl` and
//! friends can reuse one socket across requests.
//!
//! The README's "Serving the data API" walkthrough runs against this:
//!
//! ```text
//! cargo run --example serve_api [addr] [--reactor] [--chunk-budget BYTES]
//!     [--scrape-interval MS] [--shards N]
//! curl http://127.0.0.1:8080/dashboards      # default addr 127.0.0.1:8080
//! ```
//!
//! `--reactor` serves through the epoll event loop instead of the
//! thread-per-connection pool; `--chunk-budget BYTES` streams responses
//! larger than BYTES as HTTP/1.1 chunked transfer (both modes);
//! `--scrape-interval MS` ticks the telemetry scraper so the read-only
//! `_system` dashboard serves queryable history
//! (`curl http://.../_system/ds/telemetry`); `--shards N` attaches the
//! shared-nothing shard set (N >= 2) and grows the demo dataset past the
//! scatter floor so queries actually fan out — watch the `shard` block
//! in `/stats` and the `shareinsights_shard_*` families in `/metrics`.

use shareinsights::server::{serve, ServeMode, ServeOptions, Server};
use shareinsights_core::Platform;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
  shape:
    type: sql
    query: "select region, brand, revenue from sales"
F:
  +D.brand_sales: D.sales | T.by_brand
  D.brand_sales:
    publish: brand_sales
  +D.sales_rows: D.sales | T.shape
"#;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let serve_mode = if let Some(i) = args.iter().position(|a| a == "--reactor") {
        args.remove(i);
        ServeMode::Reactor
    } else {
        ServeMode::ThreadPerConnection
    };
    let chunk_budget: Option<usize> = args.iter().position(|a| a == "--chunk-budget").map(|i| {
        let value = args[i + 1].parse().expect("--chunk-budget BYTES");
        args.drain(i..=i + 1);
        value
    });
    let scrape_interval = args.iter().position(|a| a == "--scrape-interval").map(|i| {
        let ms: u64 = args[i + 1].parse().expect("--scrape-interval MS");
        args.drain(i..=i + 1);
        std::time::Duration::from_millis(ms.max(1))
    });
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .map(|i| {
            let n = args[i + 1].parse().expect("--shards N");
            args.drain(i..=i + 1);
            n
        })
        .unwrap_or(0);
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:8080".to_string());

    let platform = Platform::new();
    let csv = if shards >= 2 {
        // Enough rows to clear the scatter floor, so sharded queries
        // actually fan out instead of falling back.
        let regions = ["north", "south", "east", "west"];
        let brands = ["acme", "zest", "nova"];
        let mut csv = String::from("region,brand,revenue\n");
        for i in 0..5000 {
            csv.push_str(&format!(
                "{},{},{}\n",
                regions[i % regions.len()],
                brands[i % brands.len()],
                (i * 37) % 500
            ));
        }
        csv
    } else {
        "region,brand,revenue\nnorth,acme,10\nnorth,acme,5\nsouth,zest,20\nnorth,zest,1\n"
            .to_string()
    };
    platform.upload_data("retail", "sales.csv", csv);
    platform.save_flow("retail", FLOW).expect("flow");
    platform.run_dashboard("retail").expect("run");

    let opts = ServeOptions {
        serve_mode,
        chunk_budget,
        scrape_interval,
        shards,
        ..ServeOptions::default()
    };
    let svc = serve(Server::new(platform), &addr, opts)
        .expect("bind address (try `serve_api 127.0.0.1:0`)");
    println!(
        "data API listening on http://{} ({serve_mode:?})",
        svc.local_addr()
    );
    println!(
        "try: curl http://{}/retail/ds/brand_sales/groupby/region/count/brand",
        svc.local_addr()
    );
    println!("     curl http://{}/stats", svc.local_addr());
    if shards >= 2 {
        println!(
            "     curl http://{}/retail/ds/sales_rows/groupby/brand/sum/revenue  # scatters over {shards} shards",
            svc.local_addr()
        );
    }

    // Serve until the process is interrupted.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
