//! Serve the data API over TCP until interrupted.
//!
//! Connections are HTTP/1.1 keep-alive by default (see `ServeOptions` for
//! the idle-timeout and requests-per-connection knobs), so `curl` and
//! friends can reuse one socket across requests.
//!
//! The README's "Serving the data API" walkthrough runs against this:
//!
//! ```text
//! cargo run --example serve_api [addr] [--reactor] [--chunk-budget BYTES]
//!     [--scrape-interval MS]
//! curl http://127.0.0.1:8080/dashboards      # default addr 127.0.0.1:8080
//! ```
//!
//! `--reactor` serves through the epoll event loop instead of the
//! thread-per-connection pool; `--chunk-budget BYTES` streams responses
//! larger than BYTES as HTTP/1.1 chunked transfer (both modes);
//! `--scrape-interval MS` ticks the telemetry scraper so the read-only
//! `_system` dashboard serves queryable history
//! (`curl http://.../_system/ds/telemetry`).

use shareinsights::server::{serve, ServeMode, ServeOptions, Server};
use shareinsights_core::Platform;

const FLOW: &str = r#"
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv
T:
  by_brand:
    type: groupby
    groupby: [region, brand]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: revenue
F:
  +D.brand_sales: D.sales | T.by_brand
  D.brand_sales:
    publish: brand_sales
"#;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let serve_mode = if let Some(i) = args.iter().position(|a| a == "--reactor") {
        args.remove(i);
        ServeMode::Reactor
    } else {
        ServeMode::ThreadPerConnection
    };
    let chunk_budget: Option<usize> = args.iter().position(|a| a == "--chunk-budget").map(|i| {
        let value = args[i + 1].parse().expect("--chunk-budget BYTES");
        args.drain(i..=i + 1);
        value
    });
    let scrape_interval = args.iter().position(|a| a == "--scrape-interval").map(|i| {
        let ms: u64 = args[i + 1].parse().expect("--scrape-interval MS");
        args.drain(i..=i + 1);
        std::time::Duration::from_millis(ms.max(1))
    });
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:8080".to_string());

    let platform = Platform::new();
    platform.upload_data(
        "retail",
        "sales.csv",
        "region,brand,revenue\nnorth,acme,10\nnorth,acme,5\nsouth,zest,20\nnorth,zest,1\n",
    );
    platform.save_flow("retail", FLOW).expect("flow");
    platform.run_dashboard("retail").expect("run");

    let opts = ServeOptions {
        serve_mode,
        chunk_budget,
        scrape_interval,
        ..ServeOptions::default()
    };
    let svc = serve(Server::new(platform), &addr, opts)
        .expect("bind address (try `serve_api 127.0.0.1:0`)");
    println!(
        "data API listening on http://{} ({serve_mode:?})",
        svc.local_addr()
    );
    println!(
        "try: curl http://{}/retail/ds/brand_sales/groupby/region/count/brand",
        svc.local_addr()
    );
    println!("     curl http://{}/stats", svc.local_addr());

    // Serve until the process is interrupted.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
